//! Property-based parity tests for the observability layer: enabling
//! per-query trace spans on a [`Session`] must be **bit-identical** to
//! running with tracing disabled — same pairs, same order, same exact f64
//! score bits — for every two-way algorithm and the n-way joins, at every
//! tested thread count (`DHT_TEST_THREADS`, default 1 and 4).
//!
//! This is the contract that makes tracing safe to leave reachable in
//! production: spans only *observe* the query; they may never change what
//! it answers.

use proptest::prelude::*;

use dht_nway::core::multiway::NWayAlgorithm;
use dht_nway::core::twoway::TwoWayAlgorithm;
use dht_nway::engine::{Engine, EngineConfig, EngineOutput};
use dht_nway::prelude::*;
use dht_nway::walks::Phase;

/// Strategy: a random Erdős–Rényi-style directed weighted graph given as an
/// edge list over `n` nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (6usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 4));
        (Just(n), edges)
    })
}

/// Strategy: a stream of up to 6 two-way queries, each `(algorithm index,
/// swap P/Q flag, k)` — repeats across both orientations exercise the
/// cache-hit trace events alongside the build spans.
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u32, usize)>> {
    proptest::collection::vec((0u32..5, 0u32..2, 1usize..7), 2..6)
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

fn split_sets(n: usize) -> (NodeSet, NodeSet) {
    let half = (n as u32 / 2).max(1);
    (
        NodeSet::new("P", (0..half).map(NodeId)),
        NodeSet::new("Q", (half..n as u32).map(NodeId)),
    )
}

fn engine_at(graph: &Graph, threads: usize) -> Engine {
    Engine::with_config(
        graph.clone(),
        EngineConfig::paper_default().with_threads(threads),
    )
}

/// Thread counts under test (CI matrix sets `DHT_TEST_THREADS`).
fn thread_counts() -> Vec<usize> {
    dht_nway::par::test_thread_counts(&[1, 4])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Two-way query streams: traced session ≡ untraced session, bitwise,
    /// at 1 and 4 threads — and the traced session actually records spans.
    #[test]
    fn traced_two_way_streams_are_bit_identical(
        (n, edges) in er_graph_strategy(),
        stream in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        for threads in thread_counts() {
            let engine = engine_at(&graph, threads);
            let mut plain = engine.session();
            let mut traced = engine.session();
            traced.set_trace_enabled(true);
            for &(algo, swap, k) in &stream {
                let algorithm = TwoWayAlgorithm::ALL[algo as usize];
                let (left, right) = if swap == 1 { (&q, &p) } else { (&p, &q) };
                let spec = QuerySpec::TwoWay(
                    TwoWaySpec::new(left.clone(), right.clone(), k).with_fixed(algorithm));
                let a = plain.run(&spec).expect("valid query");
                let b = traced.run(&spec).expect("valid query");
                let (EngineOutput::TwoWay(a), EngineOutput::TwoWay(b)) = (a, b) else {
                    panic!("two-way specs answer two-way outputs");
                };
                prop_assert_eq!(a.pairs.len(), b.pairs.len(),
                    "{} threads={} k={}", algorithm.name(), threads, k);
                for (x, y) in a.pairs.iter().zip(b.pairs.iter()) {
                    prop_assert_eq!((x.left, x.right), (y.left, y.right),
                        "{} threads={}", algorithm.name(), threads);
                    prop_assert!(x.score == y.score,
                        "{} threads={}: traced score {} != plain {}",
                        algorithm.name(), threads, x.score, y.score);
                }
                prop_assert_eq!(&a.stats, &b.stats, "stats diverged under tracing");
            }
            // Tracing observed the stream: the join phase ran at least once
            // per query, and the comment renders in wire shape.
            prop_assert!(traced.trace().phase_count(Phase::Join) >= stream.len() as u64);
            prop_assert!(traced.trace().render_comment(1.0).starts_with("# trace: total_ms=1.000"));
            // The untraced session recorded nothing.
            prop_assert_eq!(plain.trace().phase_count(Phase::Join), 0);
        }
    }

    /// N-way joins answer identically with tracing on, for AP, PJ and PJ-i
    /// (the joins that route through the cached two-way machinery).
    #[test]
    fn traced_n_way_joins_are_bit_identical(
        (n, edges) in er_graph_strategy(),
        m in 1usize..6,
        k in 1usize..6,
    ) {
        let graph = build_graph(n, &edges);
        let third = (n as u32 / 3).max(1);
        let sets = vec![
            NodeSet::new("A", (0..third).map(NodeId)),
            NodeSet::new("B", (third..2 * third).map(NodeId)),
            NodeSet::new("C", (2 * third..n as u32).map(NodeId)),
        ];
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let query = QueryGraph::chain(3);
        for threads in thread_counts() {
            let engine = engine_at(&graph, threads);
            let mut plain = engine.session();
            let mut traced = engine.session();
            traced.set_trace_enabled(true);
            for algorithm in [
                NWayAlgorithm::AllPairs,
                NWayAlgorithm::PartialJoin { m },
                NWayAlgorithm::IncrementalPartialJoin { m },
            ] {
                let spec = QuerySpec::NWay(
                    NWaySpec::new(query.clone(), sets.clone(), k)
                        .with_aggregate(Aggregate::Min)
                        .with_fixed(algorithm));
                let a = plain.run(&spec).expect("valid query");
                let b = traced.run(&spec).expect("valid query");
                let (EngineOutput::NWay(a), EngineOutput::NWay(b)) = (a, b) else {
                    panic!("n-way specs answer n-way outputs");
                };
                prop_assert_eq!(a.answers.len(), b.answers.len(),
                    "{} threads={}", algorithm.name(), threads);
                for (x, y) in a.answers.iter().zip(b.answers.iter()) {
                    prop_assert_eq!(&x.nodes, &y.nodes,
                        "{} threads={}", algorithm.name(), threads);
                    prop_assert!(x.score == y.score,
                        "{} threads={}: traced {} != plain {}",
                        algorithm.name(), threads, x.score, y.score);
                }
            }
            prop_assert!(traced.trace().phase_count(Phase::Join) > 0);
        }
    }

    /// Toggling tracing mid-stream neither leaks spans nor perturbs the
    /// answers that follow — the session can flip per request, which is
    /// exactly what the server's `TRACE` prefix does.
    #[test]
    fn toggling_tracing_mid_stream_is_clean(
        (n, edges) in er_graph_strategy(),
        k in 1usize..7,
    ) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let engine = engine_at(&graph, 1);
        let mut session = engine.session();
        let spec = QuerySpec::TwoWay(
            TwoWaySpec::new(p.clone(), q.clone(), k).with_fixed(TwoWayAlgorithm::BackwardIdjY));
        let run_pairs = |session: &mut Session| match session.run(&spec).expect("valid query") {
            EngineOutput::TwoWay(out) => out.pairs,
            EngineOutput::NWay(_) => unreachable!("two-way spec"),
        };
        let reference = run_pairs(&mut session);
        session.set_trace_enabled(true);
        let traced = run_pairs(&mut session);
        prop_assert!(session.trace().phase_count(Phase::Join) > 0);
        session.set_trace_enabled(false);
        prop_assert_eq!(session.trace().phase_count(Phase::Join), 0,
            "disabling tracing must clear the recorded spans");
        let after = run_pairs(&mut session);
        for (x, y) in reference.iter().zip(traced.iter()) {
            prop_assert_eq!((x.left, x.right), (y.left, y.right));
            prop_assert!(x.score == y.score);
        }
        for (x, y) in reference.iter().zip(after.iter()) {
            prop_assert_eq!((x.left, x.right), (y.left, y.right));
            prop_assert!(x.score == y.score);
        }
    }
}

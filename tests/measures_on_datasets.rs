//! Integration tests for the alternative-measure extension on the synthetic
//! dataset analogues: the generic joins must behave sensibly end-to-end
//! (community structure recovered, rankings consistent with the dedicated
//! DHT algorithms, link prediction clearly better than chance).

use dht_nway::datasets::yeast::{self, YeastConfig};
use dht_nway::datasets::{dblp, Scale};
use dht_nway::eval::linkpred;
use dht_nway::measures::{
    measure_nway_top_k, measure_two_way_top_k, DhtMeasure, PersonalizedPageRank, ProximityMeasure,
    SimRank, TruncatedHittingTime,
};
use dht_nway::prelude::*;

fn yeast_tiny() -> dht_nway::datasets::Dataset {
    yeast::generate(&YeastConfig::for_scale(Scale::Tiny))
}

#[test]
fn generic_dht_join_matches_dedicated_join_on_yeast() {
    let data = yeast_tiny();
    let sets = data.largest_sets(2);
    let (p, q) = (sets[0].clone(), sets[1].clone());
    let k = 25;
    let dedicated =
        TwoWayAlgorithm::BackwardIdjY.top_k(&data.graph, &TwoWayConfig::paper_default(), &p, &q, k);
    let generic = measure_two_way_top_k(&data.graph, &DhtMeasure::paper_default(), &p, &q, k);
    assert_eq!(dedicated.pairs.len(), generic.len());
    for (a, b) in dedicated.pairs.iter().zip(generic.iter()) {
        assert!(
            (a.score - b.score).abs() < 1e-9,
            "{} vs {}",
            a.score,
            b.score
        );
    }
}

#[test]
fn ppr_and_ht_rank_intra_community_pairs_first_on_dblp() {
    // On the DBLP analogue, the top pair of a join between two research areas
    // should involve nodes that actually interact (positive similarity), and
    // the ranking should be strictly sorted.
    let data = dblp::generate(&dblp::DblpConfig {
        areas: 3,
        authors_per_area: 120,
        avg_internal_degree: 6.0,
        avg_external_degree: 1.5,
        top_authors_per_set: 25,
        cross_area_triangles: 10,
        seed: 99,
    });
    let sets = data.largest_sets(2);
    let (p, q) = (sets[0].clone(), sets[1].clone());

    for (name, pairs) in [
        (
            "PPR",
            measure_two_way_top_k(
                &data.graph,
                &PersonalizedPageRank::default_web(),
                &p,
                &q,
                10,
            ),
        ),
        (
            "HT",
            measure_two_way_top_k(
                &data.graph,
                &TruncatedHittingTime::new(8).unwrap(),
                &p,
                &q,
                10,
            ),
        ),
    ] {
        assert_eq!(pairs.len(), 10, "{name}: wrong result size");
        assert!(
            pairs[0].score > 0.0,
            "{name}: top pair has no similarity at all"
        );
        for w in pairs.windows(2) {
            assert!(
                w[0].score >= w[1].score - 1e-15,
                "{name}: ranking not sorted"
            );
        }
    }
}

#[test]
fn simrank_dense_solver_handles_the_yeast_analogue() {
    let data = yeast_tiny();
    assert!(
        data.graph.node_count() <= 1_000,
        "tiny yeast should fit the dense solver"
    );
    let matrix = SimRank::kdd2002_default().compute(&data.graph).unwrap();
    let sets = data.largest_sets(2);
    let (p, q) = (sets[0].clone(), sets[1].clone());
    let pairs = measure_two_way_top_k(&data.graph, &matrix, &p, &q, 15);
    assert_eq!(pairs.len(), 15);
    for pair in &pairs {
        assert!(pair.score >= 0.0 && pair.score <= 1.0);
        assert!(p.contains(pair.left) && q.contains(pair.right));
        assert_ne!(pair.left, pair.right);
    }
}

#[test]
fn measure_nway_join_respects_query_and_aggregate_semantics() {
    let data = yeast_tiny();
    let sets: Vec<NodeSet> = data.largest_sets(3).into_iter().cloned().collect();
    let query = QueryGraph::chain(3);
    let ppr = PersonalizedPageRank::new(0.85, 6).unwrap();

    let min_out = measure_nway_top_k(&data.graph, &ppr, &query, &sets, Aggregate::Min, 5).unwrap();
    let sum_out = measure_nway_top_k(&data.graph, &ppr, &query, &sets, Aggregate::Sum, 5).unwrap();
    assert_eq!(min_out.answers.len(), 5);
    assert_eq!(sum_out.answers.len(), 5);

    for out in [&min_out, &sum_out] {
        for answer in &out.answers {
            assert_eq!(answer.arity(), 3);
            for (i, &node) in answer.nodes.iter().enumerate() {
                assert!(sets[i].contains(node), "answer node not drawn from its set");
            }
        }
        for w in out.answers.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-15);
        }
    }

    // Recompute each answer's aggregate from single-pair scores and check it.
    for (aggregate, out) in [(Aggregate::Min, &min_out), (Aggregate::Sum, &sum_out)] {
        for answer in &out.answers {
            let edge_scores: Vec<f64> = query
                .edges()
                .iter()
                .map(|&(i, j)| ppr.score(&data.graph, answer.nodes[i], answer.nodes[j]))
                .collect();
            let expected = aggregate.combine(&edge_scores);
            assert!(
                (answer.score - expected).abs() < 1e-9,
                "aggregate mismatch: reported {} vs recomputed {expected}",
                answer.score
            );
        }
    }
}

#[test]
fn every_measure_beats_random_guessing_at_link_prediction_on_yeast() {
    let data = yeast_tiny();
    let sets = data.largest_sets(2);
    let (p, q) = (sets[0].clone(), sets[1].clone());
    let split =
        dht_nway::datasets::split::link_prediction_split(&data.graph, &p, &q, 0.5, 2014).unwrap();
    assert!(!split.removed.is_empty());

    let dht = DhtMeasure::paper_default();
    let ppr = PersonalizedPageRank::default_web();
    let ht = TruncatedHittingTime::new(8).unwrap();

    let mut aucs = Vec::new();
    for (name, measure) in [
        ("DHT", &dht as &dyn ProximityMeasure),
        ("PPR", &ppr as &dyn ProximityMeasure),
        ("HT", &ht as &dyn ProximityMeasure),
    ] {
        let result = linkpred::evaluate_with(&data.graph, &split.test_graph, &p, &q, |g, t| {
            measure.scores_to_target(g, t)
        });
        assert!(
            result.auc() > 0.6,
            "{name} should clearly beat random guessing, got AUC {}",
            result.auc()
        );
        aucs.push((name, result.auc()));
    }
    // All three are random-walk measures on the same graph; their AUCs should
    // be in the same ballpark (no degenerate scoring).
    let max = aucs.iter().map(|&(_, a)| a).fold(f64::MIN, f64::max);
    let min = aucs.iter().map(|&(_, a)| a).fold(f64::MAX, f64::min);
    assert!(max - min < 0.35, "AUC spread suspiciously large: {aucs:?}");
}

//! Property-based parity tests for the walk engines: the sparse-frontier
//! kernel (with its push/pull switch) and the thread-parallel join paths
//! must be indistinguishable from the dense serial reference on arbitrary
//! graphs — sparse vs dense within 1e-12, threaded vs serial **identical**.

use proptest::prelude::*;

use dht_nway::core::twoway::{TwoWayAlgorithm, TwoWayConfig};
use dht_nway::prelude::*;
use dht_nway::walks::backward::BackwardWalk;
use dht_nway::walks::bounds::YBoundTable;
use dht_nway::walks::forward::hitting_probabilities_with;
use dht_nway::walks::{WalkEngine, WalkScratch};

/// Strategy: a random Erdős–Rényi-style directed weighted graph given as an
/// edge list over `n` nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 4));
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

fn split_sets(n: usize) -> (NodeSet, NodeSet) {
    let half = (n as u32 / 2).max(1);
    (
        NodeSet::new("P", (0..half).map(NodeId)),
        NodeSet::new("Q", (half..n as u32).map(NodeId)),
    )
}

/// Thread counts for the parallel-vs-serial parity tests, honouring the CI
/// matrix (`DHT_TEST_THREADS`) but never degenerating: comparing a serial
/// run against itself asserts nothing, so `1` is dropped and the all-cores
/// path (`0`) is always exercised.
fn parallel_thread_counts(default: &[usize]) -> Vec<usize> {
    let mut counts: Vec<usize> = dht_nway::par::test_thread_counts(default)
        .into_iter()
        .filter(|&threads| threads != 1)
        .collect();
    if !counts.contains(&0) {
        counts.push(0);
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The sparse-frontier engine matches the dense sweep on forward
    /// absorbing walks, for every (source, target) pair and step.
    #[test]
    fn sparse_forward_walks_match_dense((n, edges) in er_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let d = 7;
        let mut scratch = WalkScratch::new();
        for source in graph.nodes() {
            for target in graph.nodes() {
                if source == target { continue; }
                let dense = hitting_probabilities_with(
                    &graph, source, target, d, WalkEngine::Dense, &mut scratch);
                let sparse = hitting_probabilities_with(
                    &graph, source, target, d, WalkEngine::Sparse, &mut scratch);
                for i in 0..d {
                    prop_assert!((dense[i] - sparse[i]).abs() < 1e-12,
                        "({source:?} -> {target:?}) step {i}: dense {} vs sparse {}",
                        dense[i], sparse[i]);
                }
            }
        }
    }

    /// The sparse backward walk matches the dense one step by step, for
    /// every target — including the first-return probabilities on the
    /// target's own entry.
    #[test]
    fn sparse_backward_walks_match_dense((n, edges) in er_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let d = 7;
        for target in graph.nodes() {
            let mut dense = BackwardWalk::with_engine(&graph, target, WalkEngine::Dense);
            let mut sparse = BackwardWalk::with_engine(&graph, target, WalkEngine::Sparse);
            for step in 0..d {
                dense.step();
                sparse.step();
                for u in 0..n {
                    prop_assert!(
                        (dense.current()[u] - sparse.current()[u]).abs() < 1e-12,
                        "target {target:?} step {step} node {u}: {} vs {}",
                        dense.current()[u], sparse.current()[u]);
                }
            }
        }
    }

    /// The Y-bound table is engine- and thread-count-independent.
    #[test]
    fn y_bound_table_is_engine_and_thread_independent((n, edges) in er_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let params = DhtParams::paper_default();
        let d = 7;
        let p = NodeSet::new("P", graph.nodes().take(3));
        let mut scratch = WalkScratch::new();
        let dense = YBoundTable::new_with(
            &graph, &params, &p, d, WalkEngine::Dense, 1, &mut scratch);
        for (engine, threads) in [
            (WalkEngine::Sparse, 1),
            (WalkEngine::Sparse, 4),
            (WalkEngine::Auto, 2),
        ] {
            let other = YBoundTable::new_with(
                &graph, &params, &p, d, engine, threads, &mut scratch);
            for q in graph.nodes() {
                for l in 0..=d {
                    prop_assert!((dense.bound(l, q) - other.bound(l, q)).abs() < 1e-12,
                        "{engine:?}/{threads} threads at q={q:?} l={l}");
                }
            }
        }
    }

    /// Multi-threaded F-BJ emits exactly the serial output: same pairs, same
    /// order, bit-identical scores.  (The merge is ordered, so this holds
    /// exactly, not just within a tolerance.)
    #[test]
    fn threaded_fbj_is_identical_to_serial((n, edges) in er_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let serial = TwoWayConfig::paper_default();
        let k = 6;
        let reference = TwoWayAlgorithm::ForwardBasic.top_k(&graph, &serial, &p, &q, k);
        for threads in parallel_thread_counts(&[2, 4, 0]) {
            let parallel = serial.with_threads(threads);
            let out = TwoWayAlgorithm::ForwardBasic.top_k(&graph, &parallel, &p, &q, k);
            prop_assert_eq!(reference.pairs.len(), out.pairs.len());
            for (a, b) in reference.pairs.iter().zip(out.pairs.iter()) {
                prop_assert_eq!((a.left, a.right), (b.left, b.right), "threads={}", threads);
                prop_assert!(a.score == b.score,
                    "threads={}: score {} != {}", threads, a.score, b.score);
            }
            prop_assert_eq!(&reference.stats, &out.stats, "stats diverged at threads={}", threads);
        }
    }

    /// The same exactness holds for the backward joins (B-BJ and both
    /// B-IDJ variants) at every thread count.
    #[test]
    fn threaded_backward_joins_are_identical_to_serial((n, edges) in er_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let k = 5;
        for algorithm in [
            TwoWayAlgorithm::BackwardBasic,
            TwoWayAlgorithm::BackwardIdjX,
            TwoWayAlgorithm::BackwardIdjY,
        ] {
            let serial = TwoWayConfig::paper_default();
            let reference = algorithm.top_k(&graph, &serial, &p, &q, k);
            for threads in parallel_thread_counts(&[3, 0]) {
                let out = algorithm.top_k(&graph, &serial.with_threads(threads), &p, &q, k);
                prop_assert_eq!(reference.pairs.len(), out.pairs.len(),
                    "{} threads={}", algorithm.name(), threads);
                for (a, b) in reference.pairs.iter().zip(out.pairs.iter()) {
                    prop_assert_eq!((a.left, a.right), (b.left, b.right));
                    prop_assert!(a.score == b.score,
                        "{} threads={}: {} != {}", algorithm.name(), threads, a.score, b.score);
                }
            }
        }
    }

    /// All five 2-way algorithms agree across engines (the engine knob may
    /// only perturb scores at rounding level, never the ranking semantics).
    #[test]
    fn engines_agree_across_all_two_way_algorithms((n, edges) in er_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let k = 5;
        for algorithm in TwoWayAlgorithm::ALL {
            let dense = TwoWayConfig::paper_default().with_engine(WalkEngine::Dense);
            let sparse = TwoWayConfig::paper_default().with_engine(WalkEngine::Sparse);
            let a = algorithm.top_k(&graph, &dense, &p, &q, k);
            let b = algorithm.top_k(&graph, &sparse, &p, &q, k);
            prop_assert_eq!(a.pairs.len(), b.pairs.len(), "{}", algorithm.name());
            for (x, y) in a.pairs.iter().zip(b.pairs.iter()) {
                prop_assert!((x.score - y.score).abs() < 1e-12,
                    "{}: dense {} vs sparse {}", algorithm.name(), x.score, y.score);
            }
        }
    }
}

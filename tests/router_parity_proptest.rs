//! Fleet parity: answers merged by `dht-router` from a sharded fleet of
//! `dht-server` backends are **bit-identical** to a single server hosting
//! the union graph — at 1 and 4 backend workers, over 2 and 3 shards, and
//! with a backend killed mid-stream every surviving answer stays bit-exact
//! while the dead shard's lines answer a typed `ERR SHARD`.
//!
//! Every backend hosts the full union graph plus the base sets plus its
//! shard's alias sets (`{base}%{i}of{n}`, cut by the router's
//! deterministic node hash).  The router fans backward-family two-way
//! lines out across the aliases and merges the per-shard top-k streams;
//! everything else routes whole to one backend.  Scores travel as exact
//! `f64` bit patterns, so the comparison is string equality.

use proptest::prelude::*;

use dht_nway::core::queryline::{self, ParseOptions};
use dht_nway::engine::{Engine, EngineConfig};
use dht_nway::prelude::*;
use dht_nway::router::{shard_node_sets, Router, RouterConfig};
use dht_nway::server::loadgen::{self, LoadGenConfig, LoadMode};
use dht_nway::server::{wire, Server, ServerConfig};

/// Strategy: a random directed weighted graph as an edge list over `n`
/// nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (9usize..18).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 3));
        (Just(n), edges)
    })
}

/// Strategy: descriptors for a stream of query lines — `(algorithm index,
/// set-pair index, k)`.
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u32, usize)>> {
    proptest::collection::vec((0u32..5, 0u32..3, 1usize..5), 3..8)
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

/// Three overlapping node sets named A / B / C.
fn overlapping_sets(n: usize) -> Vec<NodeSet> {
    let n = n as u32;
    let third = (n / 3).max(1);
    vec![
        NodeSet::new("A", (0..2 * third).map(NodeId)),
        NodeSet::new("B", (third..n).map(NodeId)),
        NodeSet::new("C", (0..n).step_by(2).map(NodeId)),
    ]
}

/// Renders the descriptors as query-language lines.  The second element of
/// each pair is the **right (target) set name** — the set the router
/// shards — when the line is a fan-out candidate (backward-family two-way),
/// `None` for whole-routed lines (forward algorithms and n-way).
fn build_lines(descriptors: &[(u32, u32, usize)]) -> Vec<(String, Option<&'static str>)> {
    const ALGORITHMS: [&str; 5] = ["b-bj", "b-idj-x", "b-idj-y", "auto", "f-bj"];
    descriptors
        .iter()
        .enumerate()
        .map(|(i, &(algo, pair, k))| {
            let (left, right) = match pair {
                0 => ("A", "B"),
                1 => ("B", "C"),
                _ => ("C", "A"),
            };
            if i % 5 == 4 {
                (format!("nway chain {left} {right} {k} ap min"), None)
            } else {
                let algorithm = ALGORITHMS[algo as usize];
                let fans_out = algorithm != "f-bj";
                (
                    format!("{left} {right} {k} {algorithm}"),
                    fans_out.then_some(right),
                )
            }
        })
        .collect()
}

/// In-process reference over the union graph: what a single `dht-server`
/// would answer.
fn expected_responses(engine: &Engine, sets: &[NodeSet], lines: &[String]) -> Vec<String> {
    let options = ParseOptions::default();
    let mut session = engine.session();
    lines
        .iter()
        .enumerate()
        .map(|(index, line)| {
            let parsed = queryline::parse_query_line(line, sets, &options, index + 1)
                .expect("generated lines are well-formed")
                .expect("no blank lines generated");
            let output = session
                .run(&parsed.spec)
                .expect("generated queries are valid");
            format!("OK {}", wire::encode_output(&output))
        })
        .collect()
}

/// Starts `count` backends, each hosting the union graph, the base sets
/// and its shard's alias sets.
fn start_fleet(graph: &Graph, sets: &[NodeSet], count: usize, workers: usize) -> Vec<Server> {
    let aliases = shard_node_sets(sets, count);
    (0..count)
        .map(|index| {
            let mut backend_sets = sets.to_vec();
            backend_sets.extend(aliases[index].iter().cloned());
            Server::start(
                Engine::with_config(graph.clone(), EngineConfig::paper_default()),
                backend_sets,
                ParseOptions::default(),
                ServerConfig::default().with_workers(workers),
            )
            .expect("bind loopback backend")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random streams replayed through the router over 2 and 3 shards at
    /// 1 and 4 backend workers: every merged response equals the
    /// single-server union answer, byte for byte.
    #[test]
    fn routed_answers_match_single_server_union_runs_bitwise(
        (n, edges) in er_graph_strategy(),
        descriptors in stream_strategy(),
        shards in 2usize..4,
    ) {
        let graph = build_graph(n, &edges);
        let sets = overlapping_sets(n);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let lines: Vec<String> = build_lines(&descriptors)
            .into_iter()
            .map(|(line, _)| line)
            .collect();

        let reference = Engine::with_config(graph.clone(), EngineConfig::paper_default());
        let expected = expected_responses(&reference, &sets, &lines);

        for workers in [1usize, 4] {
            let fleet = start_fleet(&graph, &sets, shards, workers);
            let addrs: Vec<_> = fleet.iter().map(Server::local_addr).collect();
            let router = Router::start(&addrs, RouterConfig::default())
                .expect("router binds and probes the fleet");
            let report = loadgen::run(
                router.local_addr(),
                &lines,
                &LoadGenConfig {
                    connections: 2,
                    repeat: 2,
                    mode: LoadMode::Closed,
                    ..LoadGenConfig::default()
                },
            )
            .expect("replay through the router succeeds");
            let stats = router.shutdown();
            prop_assert_eq!(stats.shard_errors, 0, "healthy fleet, no shard errors");
            prop_assert!(stats.fanned_out > 0, "backward lines must fan out");
            for server in fleet {
                server.shutdown();
            }
            for (connection, finals) in report.responses.iter().enumerate() {
                prop_assert_eq!(finals.len(), 2 * lines.len());
                for (index, response) in finals.iter().enumerate() {
                    prop_assert_eq!(
                        response,
                        &expected[index % expected.len()],
                        "shards={} workers={} connection={} request={}",
                        shards, workers, connection, index
                    );
                }
            }
        }
    }

    /// Kill one backend mid-stream: lines whose target set has members on
    /// the dead shard answer a typed `ERR SHARD`, every other line still
    /// answers bit-identically to the single-server union run, and the
    /// router itself stays up.
    #[test]
    fn killed_backends_yield_typed_shard_errors_and_exact_survivors(
        (n, edges) in er_graph_strategy(),
        descriptors in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let sets = overlapping_sets(n);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let lines = build_lines(&descriptors);
        let bare_lines: Vec<String> = lines.iter().map(|(line, _)| line.clone()).collect();

        let reference = Engine::with_config(graph.clone(), EngineConfig::paper_default());
        let expected = expected_responses(&reference, &sets, &bare_lines);

        const SHARDS: usize = 2;
        const KILLED: usize = 1;
        let fleet = start_fleet(&graph, &sets, SHARDS, 1);
        let addrs: Vec<_> = fleet.iter().map(Server::local_addr).collect();
        let router = Router::start(&addrs, RouterConfig::default().with_retries(1))
            .expect("router binds and probes the fleet");

        // Healthy pass first — the stream is mid-flight when the kill lands.
        let healthy = loadgen::run(
            router.local_addr(),
            &bare_lines,
            &LoadGenConfig { connections: 1, ..LoadGenConfig::default() },
        )
        .expect("healthy replay succeeds");
        for (index, response) in healthy.responses[0].iter().enumerate() {
            prop_assert_eq!(response, &expected[index], "healthy request {}", index);
        }

        // Kill the second backend, then replay the same stream.
        let mut fleet = fleet;
        fleet.remove(KILLED).shutdown();
        let wounded = loadgen::run(
            router.local_addr(),
            &bare_lines,
            &LoadGenConfig { connections: 1, ..LoadGenConfig::default() },
        )
        .expect("the router stays up with a dead backend");

        // Which target sets have members on the killed shard (a non-empty
        // alias means the router must consult that backend)?
        let killed_aliases = &shard_node_sets(&sets, SHARDS)[KILLED];
        for (index, response) in wounded.responses[0].iter().enumerate() {
            let (_, fanout_target) = &lines[index];
            let touches_killed = fanout_target
                .map(|set| killed_aliases.iter().any(|a| a.name().starts_with(set)))
                .unwrap_or(false);
            if touches_killed {
                prop_assert!(
                    wire::is_shard(response),
                    "request {} targets the dead shard but answered '{}'",
                    index, response
                );
                prop_assert!(
                    response.contains("shard-1"),
                    "ERR SHARD must name the dead backend, got '{}'",
                    response
                );
            } else {
                prop_assert!(
                    response == &expected[index] || wire::is_shard(response),
                    "request {} answered '{}', expected the union answer or ERR SHARD",
                    index, response
                );
            }
        }
        let stats = router.shutdown();
        prop_assert!(stats.served > 0);
        for server in fleet {
            server.shutdown();
        }
    }
}

//! Concurrent-session stress test: N threads hammer one [`Engine`] with
//! overlapping two-way and n-way queries through the cross-session
//! `SharedColumnCache` **and** the read-mostly `SharedYTableStore`, both
//! under budgets tiny enough to keep them evicting (a ~2-column byte
//! budget; a **one-table** Y store, so concurrent B-IDJ-Y sessions race
//! get/build/insert/evict on every query), and every answer must be
//! **bitwise identical** to the one-shot free-function answer.
//!
//! This is the contract that makes the shared caches safe: no interleaving
//! of sessions — racing to compute the same column or Y-bound table,
//! evicting each other's entries, hitting state another thread inserted a
//! microsecond ago — may ever change what any query answers.

use proptest::prelude::*;

use dht_nway::core::multiway::{NWayAlgorithm, NWayConfig};
use dht_nway::core::twoway::{TwoWayAlgorithm, TwoWayConfig};
use dht_nway::engine::{Engine, EngineConfig, EngineQuery, NWayQuery, TwoWayQuery};
use dht_nway::prelude::*;

/// Strategy: a random directed weighted graph as an edge list over `n`
/// nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (9usize..21).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 4));
        (Just(n), edges)
    })
}

/// Strategy: a stream of query descriptors `(two_way_algo, set pair, k,
/// every 4th one n-way)` over three overlapping node sets — overlap is the
/// point: different sessions keep needing each other's targets.
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u32, usize)>> {
    proptest::collection::vec((0u32..5, 0u32..3, 1usize..6), 4..10)
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

/// Three deliberately overlapping node sets (every pair shares nodes, so
/// concurrent sessions request the same backward columns).
fn overlapping_sets(n: usize) -> Vec<NodeSet> {
    let n = n as u32;
    let third = (n / 3).max(1);
    vec![
        NodeSet::new("A", (0..2 * third).map(NodeId)),
        NodeSet::new("B", (third..n).map(NodeId)),
        NodeSet::new("C", (0..n).step_by(2).map(NodeId)),
    ]
}

/// Builds the mixed query stream from the random descriptors.
fn build_stream(descriptors: &[(u32, u32, usize)], sets: &[NodeSet]) -> Vec<EngineQuery> {
    descriptors
        .iter()
        .enumerate()
        .map(|(i, &(algo, pair, k))| {
            let (left, right) = match pair {
                0 => (0usize, 1usize),
                1 => (1, 2),
                _ => (2, 0),
            };
            if i % 4 == 3 {
                EngineQuery::NWay(NWayQuery {
                    algorithm: NWayAlgorithm::AllPairs,
                    query: QueryGraph::chain(3),
                    sets: sets.to_vec(),
                    aggregate: Aggregate::Min,
                    k,
                })
            } else {
                EngineQuery::TwoWay(TwoWayQuery {
                    algorithm: TwoWayAlgorithm::ALL[algo as usize],
                    p: sets[left].clone(),
                    q: sets[right].clone(),
                    k,
                })
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N sessions on N threads, one shared cache under heavy eviction
    /// pressure: every answer equals its one-shot reference, bitwise.
    #[test]
    fn hammered_shared_engine_matches_one_shot_answers(
        (n, edges) in er_graph_strategy(),
        descriptors in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let sets = overlapping_sets(n);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let stream = build_stream(&descriptors, &sets);

        // One-shot references, computed without any engine.
        let two_way_config = TwoWayConfig::paper_default();
        let n_way_config = NWayConfig::paper_default();
        let references: Vec<EngineQuery> = stream.clone();
        let specs: Vec<QuerySpec> = stream.iter().map(QuerySpec::from).collect();

        // A budget worth ~2 columns of the largest generated graph, and a
        // Y-table store holding exactly one table: every session keeps
        // evicting what the others just inserted, in both caches.
        let engine = Engine::with_config(
            graph.clone(),
            EngineConfig::paper_default()
                .with_cache_bytes(2 * dht_nway::walks::column_bytes(21))
                .with_y_table_capacity(1),
        );
        prop_assert!(engine.shared_cache().is_some());
        prop_assert!(engine.shared_y_tables().is_some());

        for sessions in dht_nway::par::test_thread_counts(&[2, 4]) {
            let sessions = sessions.max(2); // the point is concurrency
            let outputs = engine
                .batch_sessions(&specs, sessions)
                .expect("stream is valid");
            prop_assert_eq!(outputs.len(), references.len());
            for (index, (query, output)) in references.iter().zip(outputs.iter()).enumerate() {
                match (query, output) {
                    (
                        EngineQuery::TwoWay(q),
                        dht_nway::engine::EngineOutput::TwoWay(out),
                    ) => {
                        let cold =
                            q.algorithm.top_k(&graph, &two_way_config, &q.p, &q.q, q.k);
                        prop_assert_eq!(out.pairs.len(), cold.pairs.len(),
                            "query {} sessions={}", index, sessions);
                        for (a, b) in out.pairs.iter().zip(cold.pairs.iter()) {
                            prop_assert_eq!((a.left, a.right), (b.left, b.right),
                                "query {} sessions={}", index, sessions);
                            prop_assert!(a.score == b.score,
                                "query {} sessions={}: {} != {}",
                                index, sessions, a.score, b.score);
                        }
                        prop_assert_eq!(&out.stats, &cold.stats,
                            "stats diverged for query {} sessions={}", index, sessions);
                    }
                    (
                        EngineQuery::NWay(q),
                        dht_nway::engine::EngineOutput::NWay(out),
                    ) => {
                        let config = n_way_config
                            .with_aggregate(q.aggregate)
                            .with_k(q.k);
                        let cold = q
                            .algorithm
                            .run(&graph, &config, &q.query, &q.sets)
                            .expect("valid query");
                        prop_assert_eq!(out.answers.len(), cold.answers.len(),
                            "query {} sessions={}", index, sessions);
                        for (a, b) in out.answers.iter().zip(cold.answers.iter()) {
                            prop_assert_eq!(&a.nodes, &b.nodes,
                                "query {} sessions={}", index, sessions);
                            prop_assert!(a.score == b.score,
                                "query {} sessions={}: {} != {}",
                                index, sessions, a.score, b.score);
                        }
                    }
                    _ => prop_assert!(false, "output kind changed for query {}", index),
                }
            }
        }
    }
}

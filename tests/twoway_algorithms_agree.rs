//! Cross-crate integration test: the five 2-way join algorithms return the
//! same top-k score sequences on generated datasets, for both published DHT
//! variants and several walk depths.

use dht_datasets::dblp::{self, DblpConfig};
use dht_datasets::yeast::{self, YeastConfig};
use dht_datasets::Scale;
use dht_nway::prelude::*;

fn assert_same_scores(label: &str, reference: &TwoWayOutput, candidate: &TwoWayOutput) {
    assert_eq!(
        reference.pairs.len(),
        candidate.pairs.len(),
        "{label}: result sizes differ"
    );
    for (i, (a, b)) in reference
        .pairs
        .iter()
        .zip(candidate.pairs.iter())
        .enumerate()
    {
        assert!(
            (a.score - b.score).abs() < 1e-9,
            "{label}: rank {i}: {} vs {}",
            a.score,
            b.score
        );
    }
}

fn check_all_algorithms(graph: &Graph, config: &TwoWayConfig, p: &NodeSet, q: &NodeSet, k: usize) {
    let reference = TwoWayAlgorithm::ForwardBasic.top_k(graph, config, p, q, k);
    for algorithm in [
        TwoWayAlgorithm::ForwardIdj,
        TwoWayAlgorithm::BackwardBasic,
        TwoWayAlgorithm::BackwardIdjX,
        TwoWayAlgorithm::BackwardIdjY,
    ] {
        let out = algorithm.top_k(graph, config, p, q, k);
        assert_same_scores(algorithm.name(), &reference, &out);
    }
}

fn capped(set: &NodeSet, cap: usize) -> NodeSet {
    NodeSet::new(set.name(), set.iter().take(cap))
}

#[test]
fn all_algorithms_agree_on_the_yeast_analogue() {
    let dataset = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
    let sets = dataset.largest_sets(2);
    let p = capped(sets[0], 15);
    let q = capped(sets[1], 15);
    let config = TwoWayConfig::paper_default();
    check_all_algorithms(&dataset.graph, &config, &p, &q, 10);
}

#[test]
fn all_algorithms_agree_on_the_dblp_analogue_with_dht_e() {
    let dataset = dblp::generate(&DblpConfig::for_scale(Scale::Tiny));
    let p = capped(dataset.node_set("DB").unwrap(), 12);
    let q = capped(dataset.node_set("AI").unwrap(), 12);
    let params = DhtParams::dht_e();
    let d = params.depth_for_epsilon(1e-6).unwrap();
    let config = TwoWayConfig::new(params, d);
    check_all_algorithms(&dataset.graph, &config, &p, &q, 8);
}

#[test]
fn all_algorithms_agree_at_a_large_decay_factor() {
    let dataset = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
    let sets = dataset.largest_sets(2);
    let p = capped(sets[0], 10);
    let q = capped(sets[1], 10);
    let params = DhtParams::dht_lambda(0.7);
    let d = params.depth_for_epsilon(1e-4).unwrap();
    let config = TwoWayConfig::new(params, d);
    check_all_algorithms(&dataset.graph, &config, &p, &q, 12);
}

#[test]
fn swapping_the_operands_changes_the_direction_of_the_scores() {
    // DHT is asymmetric: joining (P, Q) scores h(p, q), joining (Q, P)
    // scores h(q, p).  On an undirected graph with uniform weights the two
    // usually differ because of degree normalisation.
    let dataset = dblp::generate(&DblpConfig::for_scale(Scale::Tiny));
    let p = capped(dataset.node_set("DB").unwrap(), 10);
    let q = capped(dataset.node_set("AI").unwrap(), 10);
    let config = TwoWayConfig::paper_default();
    let forward = TwoWayAlgorithm::BackwardIdjY.top_k(&dataset.graph, &config, &p, &q, 5);
    let backward = TwoWayAlgorithm::BackwardIdjY.top_k(&dataset.graph, &config, &q, &p, 5);
    // Both are valid rankings; the point is simply that the API treats the
    // ordered pair of node sets as directional.
    assert_eq!(forward.pairs.len(), backward.pairs.len());
    assert!(forward
        .pairs
        .iter()
        .all(|pr| p.contains(pr.left) && q.contains(pr.right)));
    assert!(backward
        .pairs
        .iter()
        .all(|pr| q.contains(pr.left) && p.contains(pr.right)));
}

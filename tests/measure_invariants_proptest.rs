//! Property-based tests for the alternative-measure extension (`dht-measures`):
//! the invariants that make the generic bulk evaluation and iterative-deepening
//! pruning correct must hold on arbitrary graphs, node sets and parameters.

use proptest::prelude::*;

use dht_nway::measures::{
    measure_two_way_top_k, measure_two_way_top_k_pruned, DhtMeasure, IterativeMeasure, PathSim,
    PersonalizedPageRank, ProximityMeasure, TruncatedHittingTime,
};
use dht_nway::prelude::*;

/// Strategy: a small directed weighted graph as an edge list over `n` nodes.
fn small_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (3usize..9).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..4.0), 1..(n * 3));
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

fn split_sets(graph: &Graph) -> (NodeSet, NodeSet) {
    let n = graph.node_count() as u32;
    let half = (n / 2).max(1);
    (
        NodeSet::new("P", (0..half).map(NodeId)),
        NodeSet::new("Q", (half..n).map(NodeId)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The single-pair (forward) and bulk (backward) evaluations of PPR agree
    /// on every pair — the generic analogue of forward/backward DHT equality.
    #[test]
    fn ppr_forward_and_backward_agree(
        (n, edges) in small_graph_strategy(),
        damping in 0.3f64..0.95,
    ) {
        let graph = build_graph(n, &edges);
        let measure = PersonalizedPageRank::new(damping, 6).unwrap();
        for target in graph.nodes() {
            let column = measure.scores_to_target(&graph, target);
            for source in graph.nodes() {
                let single = measure.score(&graph, source, target);
                prop_assert!((column[source.index()] - single).abs() < 1e-9,
                    "PPR mismatch at ({source:?},{target:?})");
            }
        }
    }

    /// The truncated hitting-time similarity agrees between its bulk and
    /// single-pair evaluations and stays inside [0, 1].
    #[test]
    fn hitting_time_bulk_matches_single_and_is_bounded((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let measure = TruncatedHittingTime::new(7).unwrap();
        for target in graph.nodes() {
            let column = measure.scores_to_target(&graph, target);
            for source in graph.nodes() {
                if source == target { continue; }
                let single = measure.score(&graph, source, target);
                prop_assert!((column[source.index()] - single).abs() < 1e-9);
                prop_assert!((0.0..=1.0).contains(&single));
            }
        }
    }

    /// For every iterative measure, the partial score plus the tail bound
    /// dominates the full score (the contract the generic pruning relies on).
    #[test]
    fn tail_bounds_dominate_for_all_iterative_measures((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let dht = DhtMeasure::paper_default();
        let ppr = PersonalizedPageRank::new(0.8, 8).unwrap();
        let ht = TruncatedHittingTime::new(8).unwrap();

        fn check<M: IterativeMeasure>(graph: &Graph, m: &M) -> Result<(), TestCaseError> {
            for target in graph.nodes() {
                let full = m.scores_to_target(graph, target);
                for l in 1..m.depth() {
                    let partial = m.partial_scores_to_target(graph, target, l);
                    let tail = m.tail_bound(l);
                    prop_assert!(tail >= -1e-12, "{}: negative tail bound", m.name());
                    for source in graph.nodes() {
                        if source == target { continue; }
                        let i = source.index();
                        prop_assert!(partial[i] <= full[i] + 1e-9,
                            "{}: partial exceeds full", m.name());
                        prop_assert!(full[i] <= partial[i] + tail + 1e-9,
                            "{}: tail bound violated at l={l}", m.name());
                    }
                }
            }
            Ok(())
        }
        check(&graph, &dht)?;
        check(&graph, &ppr)?;
        check(&graph, &ht)?;
    }

    /// The pruned generic 2-way join returns exactly the same score sequence
    /// as the exhaustive bulk join, for every iterative measure and several k.
    #[test]
    fn pruned_generic_join_matches_basic_join(
        (n, edges) in small_graph_strategy(),
        k in 1usize..8,
    ) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(&graph);
        prop_assume!(!p.is_empty() && !q.is_empty());

        let dht = DhtMeasure::paper_default();
        let ppr = PersonalizedPageRank::new(0.85, 7).unwrap();
        let ht = TruncatedHittingTime::new(6).unwrap();

        fn check<M: IterativeMeasure + Sync>(
            graph: &Graph, m: &M, p: &NodeSet, q: &NodeSet, k: usize,
        ) -> Result<(), TestCaseError> {
            let basic = measure_two_way_top_k(graph, m, p, q, k);
            let pruned = measure_two_way_top_k_pruned(graph, m, p, q, k);
            prop_assert_eq!(basic.len(), pruned.len(), "{}: result sizes differ", m.name());
            for (a, b) in basic.iter().zip(pruned.iter()) {
                prop_assert!((a.score - b.score).abs() < 1e-9,
                    "{}: scores diverge ({} vs {})", m.name(), a.score, b.score);
            }
            Ok(())
        }
        check(&graph, &dht, &p, &q, k)?;
        check(&graph, &ppr, &p, &q, k)?;
        check(&graph, &ht, &p, &q, k)?;
    }

    /// The generic DHT measure ranks pairs exactly like the paper's dedicated
    /// B-IDJ-Y 2-way join (same scores in the same order).
    #[test]
    fn generic_dht_join_matches_dedicated_bidj_y((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(&graph);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let k = 6;
        let dedicated = TwoWayAlgorithm::BackwardIdjY
            .top_k(&graph, &TwoWayConfig::paper_default(), &p, &q, k);
        let generic = measure_two_way_top_k(&graph, &DhtMeasure::paper_default(), &p, &q, k);
        prop_assert_eq!(dedicated.pairs.len(), generic.len());
        for (a, b) in dedicated.pairs.iter().zip(generic.iter()) {
            prop_assert!((a.score - b.score).abs() < 1e-9,
                "dedicated {} vs generic {}", a.score, b.score);
        }
    }

    /// PathSim on an undirected view of the graph is symmetric and bounded.
    #[test]
    fn pathsim_is_symmetric_on_undirected_graphs((n, edges) in small_graph_strategy()) {
        let mut builder = GraphBuilder::with_nodes(n);
        for &(u, v, w) in &edges {
            if u != v {
                builder.add_undirected_edge(NodeId(u), NodeId(v), w).expect("valid endpoints");
            }
        }
        let graph = builder.build().unwrap();
        let measure = PathSim::co_occurrence();
        for u in graph.nodes() {
            for v in graph.nodes() {
                let s = measure.score(&graph, u, v);
                let r = measure.score(&graph, v, u);
                prop_assert!((s - r).abs() < 1e-9, "asymmetric PathSim at ({u:?},{v:?})");
                prop_assert!(s >= 0.0);
                prop_assert!(s <= 1.0 + 1e-9);
            }
        }
    }
}

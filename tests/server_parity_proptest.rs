//! Loopback parity: answers served by `dht-server` over TCP are
//! **bit-identical** to in-process `Session::run` answers for the same
//! query stream — at 1 and 4 workers, with the shared and the private
//! cache, and under forced queue-full rejections with rejected queries
//! re-sent.
//!
//! Scores travel as exact `f64` bit patterns (`dht_server::wire`), so the
//! comparison is string equality between each wire response and the
//! encoding of the in-process answer.  Combined with the engine's own
//! parity pins (caching, concurrency, planning never change answers),
//! this closes the chain: CLI, in-process engine and network server all
//! answer every stream identically.

use proptest::prelude::*;

use dht_nway::core::queryline::{self, ParseOptions};
use dht_nway::engine::{Engine, EngineConfig};
use dht_nway::prelude::*;
use dht_nway::server::loadgen::{self, LoadGenConfig, LoadMode};
use dht_nway::server::{wire, Server, ServerConfig};

/// Strategy: a random directed weighted graph as an edge list over `n`
/// nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (9usize..18).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 3));
        (Just(n), edges)
    })
}

/// Strategy: descriptors for a stream of query lines — `(algorithm index,
/// set-pair index, k)`, every 5th line n-way, every 4th `auto`.
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u32, usize)>> {
    proptest::collection::vec((0u32..5, 0u32..3, 1usize..5), 3..8)
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

/// Three overlapping node sets named A / B / C.
fn overlapping_sets(n: usize) -> Vec<NodeSet> {
    let n = n as u32;
    let third = (n / 3).max(1);
    vec![
        NodeSet::new("A", (0..2 * third).map(NodeId)),
        NodeSet::new("B", (third..n).map(NodeId)),
        NodeSet::new("C", (0..n).step_by(2).map(NodeId)),
    ]
}

/// Renders the descriptors as query-language lines (what travels over the
/// wire and through the parser — the same text both ends see).
fn build_lines(descriptors: &[(u32, u32, usize)]) -> Vec<String> {
    const ALGORITHMS: [&str; 5] = ["f-bj", "f-idj", "b-bj", "b-idj-x", "b-idj-y"];
    descriptors
        .iter()
        .enumerate()
        .map(|(i, &(algo, pair, k))| {
            let (left, right) = match pair {
                0 => ("A", "B"),
                1 => ("B", "C"),
                _ => ("C", "A"),
            };
            if i % 5 == 4 {
                format!("nway chain {left} {right} {k} ap min")
            } else if i % 4 == 3 {
                format!("{left} {right} {k} auto")
            } else {
                format!("{left} {right} {k} {}", ALGORITHMS[algo as usize])
            }
        })
        .collect()
}

/// In-process reference: parse the same lines, answer them on one warm
/// session, and encode each answer exactly as the server does.
fn expected_responses(engine: &Engine, sets: &[NodeSet], lines: &[String]) -> Vec<String> {
    let options = ParseOptions::default();
    let mut session = engine.session();
    lines
        .iter()
        .enumerate()
        .map(|(index, line)| {
            let parsed = queryline::parse_query_line(line, sets, &options, index + 1)
                .expect("generated lines are well-formed")
                .expect("no blank lines generated");
            let output = session
                .run(&parsed.spec)
                .expect("generated queries are valid");
            format!("OK {}", wire::encode_output(&output))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random streams served over loopback TCP at 1 and 4 workers, shared
    /// and private cache: every response equals the in-process answer,
    /// byte for byte.
    #[test]
    fn served_answers_match_in_process_sessions_bitwise(
        (n, edges) in er_graph_strategy(),
        descriptors in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let sets = overlapping_sets(n);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let lines = build_lines(&descriptors);

        for shared in [true, false] {
            let config = EngineConfig::paper_default().with_shared_cache(shared);
            let reference = Engine::with_config(graph.clone(), config);
            let expected = expected_responses(&reference, &sets, &lines);

            for workers in [1usize, 4] {
                let server = Server::start(
                    Engine::with_config(graph.clone(), config),
                    sets.clone(),
                    ParseOptions::default(),
                    ServerConfig::default().with_workers(workers),
                )
                .expect("bind loopback");
                let report = loadgen::run(
                    server.local_addr(),
                    &lines,
                    &LoadGenConfig {
                        connections: 2,
                        repeat: 2,
                        mode: LoadMode::Closed,
                        ..LoadGenConfig::default()
                    },
                )
                .expect("loopback replay succeeds");
                let stats = server.shutdown();
                prop_assert_eq!(stats.queue_depth, 0, "drained on shutdown");
                for (connection, finals) in report.responses.iter().enumerate() {
                    prop_assert_eq!(finals.len(), 2 * lines.len());
                    for (index, response) in finals.iter().enumerate() {
                        prop_assert_eq!(
                            response,
                            &expected[index % expected.len()],
                            "workers={} shared={} connection={} request={}",
                            workers, shared, connection, index
                        );
                    }
                }
            }
        }
    }

    /// A starved server (1 worker, queue capacity 1) under an open-loop
    /// pipelined burst: rejections happen, rejected queries are re-sent,
    /// and the final answers are still bit-identical to in-process ones.
    #[test]
    fn rejected_and_resent_queries_answer_bitwise_identically(
        (n, edges) in er_graph_strategy(),
        descriptors in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let sets = overlapping_sets(n);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let lines = build_lines(&descriptors);

        let config = EngineConfig::paper_default();
        let reference = Engine::with_config(graph.clone(), config);
        let expected = expected_responses(&reference, &sets, &lines);

        let server = Server::start(
            Engine::with_config(graph.clone(), config),
            sets.clone(),
            ParseOptions::default(),
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_batch(1),
        )
        .expect("bind loopback");
        let report = loadgen::run(
            server.local_addr(),
            &lines,
            &LoadGenConfig {
                connections: 3,
                repeat: 2,
                mode: LoadMode::Open,
                ..LoadGenConfig::default()
            },
        )
        .expect("open-loop replay succeeds");
        let stats = server.shutdown();
        prop_assert_eq!(stats.rejected, report.busy_rejections,
            "server and client agree on the rejection count");
        for finals in &report.responses {
            for (index, response) in finals.iter().enumerate() {
                prop_assert_eq!(
                    response,
                    &expected[index % expected.len()],
                    "rejection/re-send schedule changed an answer at request {}",
                    index
                );
            }
        }
    }
}

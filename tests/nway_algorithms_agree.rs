//! Cross-crate integration test: all four n-way join algorithms return the
//! same top-k scores on every query-graph shape the paper uses, on graphs
//! produced by the dataset generators (not just hand-built fixtures).

use dht_datasets::dblp::{self, DblpConfig};
use dht_datasets::yeast::{self, YeastConfig};
use dht_datasets::Scale;
use dht_nway::prelude::*;

fn assert_same_scores(label: &str, reference: &NWayOutput, candidate: &NWayOutput) {
    assert_eq!(
        reference.answers.len(),
        candidate.answers.len(),
        "{label}: answer counts differ"
    );
    for (i, (a, b)) in reference
        .answers
        .iter()
        .zip(candidate.answers.iter())
        .enumerate()
    {
        assert!(
            (a.score - b.score).abs() < 1e-9,
            "{label}: rank {i} scores differ: {} vs {}",
            a.score,
            b.score
        );
    }
}

fn run_all(graph: &Graph, config: &NWayConfig, query: &QueryGraph, sets: &[NodeSet], label: &str) {
    let nl = NWayAlgorithm::NestedLoop
        .run(graph, config, query, sets)
        .unwrap();
    let ap = NWayAlgorithm::AllPairs
        .run(graph, config, query, sets)
        .unwrap();
    let pj = NWayAlgorithm::PartialJoin { m: 5 }
        .run(graph, config, query, sets)
        .unwrap();
    let pji = NWayAlgorithm::IncrementalPartialJoin { m: 5 }
        .run(graph, config, query, sets)
        .unwrap();
    assert_same_scores(&format!("{label}/AP"), &nl, &ap);
    assert_same_scores(&format!("{label}/PJ"), &nl, &pj);
    assert_same_scores(&format!("{label}/PJ-i"), &nl, &pji);
    // answers are sorted by non-increasing score
    for w in nl.answers.windows(2) {
        assert!(w[0].score >= w[1].score - 1e-12);
    }
}

fn small_sets(sets: &[NodeSet], count: usize, cap: usize) -> Vec<NodeSet> {
    sets.iter()
        .take(count)
        .map(|s| NodeSet::new(s.name(), s.iter().take(cap)))
        .collect()
}

#[test]
fn chain_queries_agree_on_the_dblp_analogue() {
    let dataset = dblp::generate(&DblpConfig::for_scale(Scale::Tiny));
    let sets = small_sets(&dataset.node_sets, 3, 8);
    let config = NWayConfig::paper_default().with_k(6);
    run_all(
        &dataset.graph,
        &config,
        &QueryGraph::chain(3),
        &sets,
        "dblp chain",
    );
}

#[test]
fn triangle_queries_agree_on_the_dblp_analogue() {
    let dataset = dblp::generate(&DblpConfig::for_scale(Scale::Tiny));
    let sets = small_sets(&dataset.node_sets, 3, 6);
    let config = NWayConfig::paper_default().with_k(4);
    run_all(
        &dataset.graph,
        &config,
        &QueryGraph::triangle(),
        &sets,
        "dblp triangle",
    );
}

#[test]
fn star_queries_agree_on_the_yeast_analogue() {
    let dataset = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
    let sets = small_sets(
        &dataset
            .largest_sets(4)
            .into_iter()
            .cloned()
            .collect::<Vec<_>>(),
        4,
        6,
    );
    let config = NWayConfig::paper_default().with_k(5);
    run_all(
        &dataset.graph,
        &config,
        &QueryGraph::star(4),
        &sets,
        "yeast star",
    );
}

#[test]
fn sum_aggregate_agrees_as_well() {
    let dataset = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
    let sets = small_sets(
        &dataset
            .largest_sets(3)
            .into_iter()
            .cloned()
            .collect::<Vec<_>>(),
        3,
        7,
    );
    let config = NWayConfig::paper_default()
        .with_k(5)
        .with_aggregate(Aggregate::Sum);
    run_all(
        &dataset.graph,
        &config,
        &QueryGraph::chain(3),
        &sets,
        "yeast sum chain",
    );
}

#[test]
fn four_way_cycle_agrees_on_a_planted_partition_graph() {
    let cg = dht_nway::graph::generators::planted_partition(&PlantedPartitionConfig {
        communities: 4,
        community_size: 8,
        avg_internal_degree: 4.0,
        avg_external_degree: 2.0,
        weighted: true,
        seed: 11,
    });
    let config = NWayConfig::paper_default().with_k(5);
    run_all(
        &cg.graph,
        &config,
        &QueryGraph::cycle(4),
        &cg.communities,
        "cycle 4",
    );
}

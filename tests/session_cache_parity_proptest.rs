//! Property-based parity tests for the query-session engine: a randomized
//! query stream answered through a warm [`Session`] (column cache on, with
//! eviction pressure from a tiny byte budget) must be **bit-identical** to
//! answering every query one-shot (cache off), at every tested thread
//! count (`DHT_TEST_THREADS`, default 1 and 4), both with the engine's
//! cross-session shared cache and with session-private caches.
//!
//! This is the contract that makes the cache safe to ship: caching may only
//! change how often walks run, never what any query answers.

use proptest::prelude::*;

use dht_nway::core::multiway::{NWayAlgorithm, NWayConfig};
use dht_nway::core::twoway::{TwoWayAlgorithm, TwoWayConfig};
use dht_nway::engine::{Engine, EngineConfig};
use dht_nway::prelude::*;

/// Strategy: a random Erdős–Rényi-style directed weighted graph given as an
/// edge list over `n` nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (6usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 4));
        (Just(n), edges)
    })
}

/// Strategy: a stream of up to 8 two-way queries, each `(algorithm index,
/// swap P/Q flag, k)` — swapping makes targets repeat across both
/// orientations, which is what the cache exists for.
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u32, usize)>> {
    proptest::collection::vec((0u32..5, 0u32..2, 1usize..7), 2..8)
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

fn split_sets(n: usize) -> (NodeSet, NodeSet) {
    let half = (n as u32 / 2).max(1);
    (
        NodeSet::new("P", (0..half).map(NodeId)),
        NodeSet::new("Q", (half..n as u32).map(NodeId)),
    )
}

/// A session whose tiny column cache (a byte budget worth ~3 columns of the
/// largest generated graph) is constantly evicting — parity must survive
/// any eviction schedule, with the cross-session cache and with private
/// ones.
fn pressured_engine(graph: &Graph, threads: usize, shared: bool) -> Engine {
    Engine::with_config(
        graph.clone(),
        EngineConfig::paper_default()
            .with_threads(threads)
            .with_cache_bytes(3 * dht_nway::walks::column_bytes(24))
            .with_shared_cache(shared),
    )
}

/// Thread counts under test (CI matrix sets `DHT_TEST_THREADS`).
fn thread_counts() -> Vec<usize> {
    dht_nway::par::test_thread_counts(&[1, 4])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Two-way query streams: warm session ≡ one-shot calls, bitwise, at
    /// 1 and 4 threads.
    #[test]
    fn session_two_way_streams_match_one_shot_calls(
        (n, edges) in er_graph_strategy(),
        stream in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        for threads in thread_counts() {
            for shared in [true, false] {
                let engine = pressured_engine(&graph, threads, shared);
                let mut session = engine.session();
                let one_shot_config = TwoWayConfig::paper_default().with_threads(threads);
                for &(algo, swap, k) in &stream {
                    let algorithm = TwoWayAlgorithm::ALL[algo as usize];
                    let (left, right) = if swap == 1 { (&q, &p) } else { (&p, &q) };
                    let warm = session.two_way(algorithm, left, right, k);
                    let cold = algorithm.top_k(&graph, &one_shot_config, left, right, k);
                    prop_assert_eq!(warm.pairs.len(), cold.pairs.len(),
                        "{} threads={} shared={} k={}", algorithm.name(), threads, shared, k);
                    for (a, b) in warm.pairs.iter().zip(cold.pairs.iter()) {
                        prop_assert_eq!((a.left, a.right), (b.left, b.right),
                            "{} threads={} shared={}", algorithm.name(), threads, shared);
                        prop_assert!(
                            a.score == b.score,
                            "{} threads={} shared={}: cached score {} != one-shot {}",
                            algorithm.name(), threads, shared, a.score, b.score
                        );
                    }
                    // The stats describe the algorithm's logical work, so
                    // they must not depend on cache temperature either.
                    prop_assert_eq!(&warm.stats, &cold.stats);
                }
            }
        }
    }

    /// N-way joins through a warm session match their one-shot equivalents
    /// (AP, PJ and PJ-i all route their inner joins through the cache).
    #[test]
    fn session_n_way_joins_match_one_shot_calls(
        (n, edges) in er_graph_strategy(),
        m in 1usize..6,
        k in 1usize..6,
    ) {
        let graph = build_graph(n, &edges);
        let third = (n as u32 / 3).max(1);
        let sets = vec![
            NodeSet::new("A", (0..third).map(NodeId)),
            NodeSet::new("B", (third..2 * third).map(NodeId)),
            NodeSet::new("C", (2 * third..n as u32).map(NodeId)),
        ];
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let query = QueryGraph::chain(3);
        for threads in thread_counts() {
            for shared in [true, false] {
                let engine = pressured_engine(&graph, threads, shared);
                let mut session = engine.session();
                let config = NWayConfig::paper_default().with_k(k).with_threads(threads);
                for algorithm in [
                    NWayAlgorithm::AllPairs,
                    NWayAlgorithm::PartialJoin { m },
                    NWayAlgorithm::IncrementalPartialJoin { m },
                ] {
                    // Run each n-way query twice on the same session: the
                    // second run rides entirely on whatever the first one
                    // cached.
                    for pass in 0..2 {
                        let warm = session
                            .n_way(algorithm, &query, &sets, Aggregate::Min, k)
                            .expect("valid query");
                        let cold = algorithm
                            .run(&graph, &config, &query, &sets)
                            .expect("valid query");
                        prop_assert_eq!(warm.answers.len(), cold.answers.len(),
                            "{} threads={} shared={} pass={}",
                            algorithm.name(), threads, shared, pass);
                        for (a, b) in warm.answers.iter().zip(cold.answers.iter()) {
                            prop_assert_eq!(&a.nodes, &b.nodes,
                                "{} threads={} shared={} pass={}",
                                algorithm.name(), threads, shared, pass);
                            prop_assert!(a.score == b.score,
                                "{} threads={} shared={} pass={}: {} != {}",
                                algorithm.name(), threads, shared, pass, a.score, b.score);
                        }
                    }
                }
            }
        }
    }
}

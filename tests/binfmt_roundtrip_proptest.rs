//! Property-based round-trip tests for the binary `.dht` graph container:
//! for *every* graph, pack → load must reproduce the original bit-for-bit
//! (CSR arrays, transition probabilities, labels) and answer queries
//! identically, and mangled containers must fail with typed errors rather
//! than loading quietly wrong.

use proptest::prelude::*;

use dht_nway::graph::binfmt;
use dht_nway::graph::GraphError;
use dht_nway::prelude::*;
use dht_nway::walks::backward::backward_dht_all_sources;

/// Strategy: a small directed weighted graph described as an edge list over
/// `n` nodes, plus a label flag per node (exercising the labels blob).
fn small_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>, Vec<u32>)> {
    (3usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..5.0), 1..(n * 3));
        let labeled = proptest::collection::vec(0u32..2, n..n + 1);
        (Just(n), edges, labeled)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)], labeled: &[u32]) -> Graph {
    let mut builder = GraphBuilder::new();
    for (i, &flag) in labeled.iter().take(n).enumerate() {
        if flag == 1 {
            builder.add_labeled_node(format!("node-{i}"));
        } else {
            builder.add_node();
        }
    }
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

/// Asserts both CSR indexes and the labels are bit-identical (plain `==`
/// on floats would accept `-0.0 == 0.0`).
fn assert_bit_identical(original: &Graph, loaded: &Graph) -> Result<(), TestCaseError> {
    prop_assert_eq!(original.node_count(), loaded.node_count());
    prop_assert_eq!(original.edge_count(), loaded.edge_count());
    for (a, b) in [
        (original.forward_csr(), loaded.forward_csr()),
        (original.reverse_csr(), loaded.reverse_csr()),
    ] {
        prop_assert_eq!(a.raw_offsets(), b.raw_offsets());
        prop_assert_eq!(a.raw_targets(), b.raw_targets());
        for (x, y) in a.raw_weights().iter().zip(b.raw_weights()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.raw_probs().iter().zip(b.raw_probs()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    prop_assert_eq!(original.labels(), loaded.labels());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack → load reproduces the graph bit-for-bit, and a two-way join
    /// plus a full backward DHT column answer identically on both copies.
    #[test]
    fn pack_load_round_trip_is_bit_identical(
        (n, edges, labeled) in small_graph_strategy()
    ) {
        let original = build_graph(n, &edges, &labeled);
        let mut bytes = Vec::new();
        binfmt::write_graph(&original, &mut bytes).expect("write succeeds");
        let loaded = binfmt::decode_graph(&bytes).expect("round trip loads");
        assert_bit_identical(&original, &loaded)?;

        // Bit-identical query answers: every backward DHT column agrees …
        let params = DhtParams::paper_default();
        for target in original.nodes() {
            let a = backward_dht_all_sources(&original, &params, target, 6);
            let b = backward_dht_all_sources(&loaded, &params, target, 6);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // … and so does a top-k two-way join through the engine.
        let half = n / 2;
        let left = NodeSet::new("L", (0..half as u32).map(NodeId));
        let right = NodeSet::new("R", (half as u32..n as u32).map(NodeId));
        let config = TwoWayConfig::paper_default();
        let ours = TwoWayAlgorithm::BackwardIdjY.top_k(&original, &config, &left, &right, 5);
        let theirs = TwoWayAlgorithm::BackwardIdjY.top_k(&loaded, &config, &left, &right, 5);
        prop_assert_eq!(ours.pairs, theirs.pairs);
    }

    /// Truncating the container anywhere yields a typed error, never a
    /// quietly wrong graph.
    #[test]
    fn truncation_anywhere_is_a_typed_error(
        (n, edges, labeled) in small_graph_strategy(),
        cut_fraction in 0.0f64..1.0
    ) {
        let original = build_graph(n, &edges, &labeled);
        let mut bytes = Vec::new();
        binfmt::write_graph(&original, &mut bytes).expect("write succeeds");
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        let err = binfmt::decode_graph(&bytes[..cut]).expect_err("truncated container");
        prop_assert!(matches!(
            err,
            GraphError::Truncated { .. } | GraphError::Corrupt { .. }
        ), "unexpected error for cut at {cut}/{}: {err}", bytes.len());
    }

    /// Flipping any single byte of the header is detected (magic, version
    /// or checksum mismatch — all typed errors).
    #[test]
    fn header_corruption_is_detected(
        (n, edges, labeled) in small_graph_strategy(),
        byte in 0usize..40,
        flip in 1u32..256
    ) {
        let original = build_graph(n, &edges, &labeled);
        let mut bytes = Vec::new();
        binfmt::write_graph(&original, &mut bytes).expect("write succeeds");
        bytes[byte] ^= flip as u8;
        let err = binfmt::decode_graph(&bytes).expect_err("corrupt header");
        prop_assert!(matches!(
            err,
            GraphError::Corrupt { .. }
                | GraphError::VersionMismatch { .. }
                | GraphError::Truncated { .. }
        ), "unexpected error for header byte {byte}: {err}");
    }
}

#[test]
fn wrong_version_is_a_version_mismatch() {
    let graph = build_graph(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)], &[1; 4]);
    let mut bytes = Vec::new();
    binfmt::write_graph(&graph, &mut bytes).expect("write succeeds");
    // Stamp version 99 and re-stamp the header checksum so the version
    // check (not the checksum) is what fires.
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    let checksum = binfmt::header_checksum(&bytes[..32]);
    bytes[32..40].copy_from_slice(&checksum.to_le_bytes());
    match binfmt::decode_graph(&bytes) {
        Err(GraphError::VersionMismatch { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, binfmt::VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

//! End-to-end smoke tests over the full stack: generate each synthetic
//! dataset, run the paper's headline queries on it, and check the
//! effectiveness pipeline produces sensible quality numbers.

use dht_datasets::split::link_prediction_split;
use dht_datasets::{dblp, yeast, youtube, Scale};
use dht_eval::linkpred;
use dht_nway::prelude::*;

fn capped(set: &NodeSet, cap: usize) -> NodeSet {
    NodeSet::new(set.name(), set.iter().take(cap))
}

#[test]
fn dblp_expert_finding_returns_ranked_cross_area_triples() {
    let dataset = dblp::generate(&dblp::DblpConfig::for_scale(Scale::Tiny));
    let sets: Vec<NodeSet> = ["DB", "AI", "SYS"]
        .iter()
        .map(|n| dataset.node_set(n).unwrap().clone())
        .collect();
    let config = NWayConfig::paper_default().with_k(5);
    let result = NWayAlgorithm::IncrementalPartialJoin { m: 50 }
        .run(&dataset.graph, &config, &QueryGraph::triangle(), &sets)
        .unwrap();
    assert!(
        !result.answers.is_empty(),
        "the triangle join should find connected triples"
    );
    for answer in &result.answers {
        assert_eq!(answer.arity(), 3);
        // each component comes from its own area
        for (node, set) in answer.nodes.iter().zip(sets.iter()) {
            assert!(set.contains(*node));
        }
        // labels carry the area prefix
        assert!(dataset
            .graph
            .label(answer.nodes[0])
            .unwrap()
            .starts_with("DB-"));
    }
    for w in result.answers.windows(2) {
        assert!(w[0].score >= w[1].score - 1e-12);
    }
}

#[test]
fn yeast_link_prediction_beats_random_guessing() {
    let dataset = yeast::generate(&yeast::YeastConfig::for_scale(Scale::Tiny));
    let sets = dataset.largest_sets(2);
    let (p, q) = (sets[0].clone(), sets[1].clone());
    let split = link_prediction_split(&dataset.graph, &p, &q, 0.5, 99).unwrap();
    let outcome = linkpred::evaluate(
        &dataset.graph,
        &split.test_graph,
        &p,
        &q,
        &DhtParams::paper_default(),
        8,
    );
    assert!(outcome.positives > 0);
    assert!(outcome.auc() > 0.6, "AUC was only {}", outcome.auc());
}

#[test]
fn youtube_star_query_runs_across_interest_groups() {
    let dataset = youtube::generate(&youtube::YoutubeConfig::for_scale(Scale::Tiny));
    let sets: Vec<NodeSet> = ["G1", "G2", "G3", "G4"]
        .iter()
        .map(|n| capped(dataset.node_set(n).unwrap(), 25))
        .collect();
    let config = NWayConfig::paper_default().with_k(4);
    let result = NWayAlgorithm::IncrementalPartialJoin { m: 25 }
        .run(&dataset.graph, &config, &QueryGraph::star(4), &sets)
        .unwrap();
    // answers may be fewer than k on a tiny graph, but each one must be a
    // valid assignment drawn from the supplied groups
    for answer in &result.answers {
        assert_eq!(answer.arity(), 4);
        for (node, set) in answer.nodes.iter().zip(sets.iter()) {
            assert!(set.contains(*node));
        }
    }
}

#[test]
fn both_dht_variants_run_the_full_pipeline() {
    let dataset = yeast::generate(&yeast::YeastConfig::for_scale(Scale::Tiny));
    let sets = dataset.largest_sets(3);
    let query_sets: Vec<NodeSet> = sets.iter().map(|s| capped(s, 10)).collect();
    for params in [DhtParams::paper_default(), DhtParams::dht_e()] {
        let d = params.depth_for_epsilon(1e-6).unwrap();
        let config = NWayConfig::new(params, d, Aggregate::Min, 5);
        let result = NWayAlgorithm::IncrementalPartialJoin { m: 10 }
            .run(&dataset.graph, &config, &QueryGraph::chain(3), &query_sets)
            .unwrap();
        for w in result.answers.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }
}

#[test]
fn graph_round_trips_through_the_edge_list_format() {
    // io substrate works end-to-end with the generators
    let dataset = yeast::generate(&yeast::YeastConfig::for_scale(Scale::Tiny));
    let text = dht_nway::graph::io::to_edge_list(&dataset.graph);
    let parsed = dht_nway::graph::io::parse_edge_list(&text).unwrap();
    assert_eq!(parsed.node_count(), dataset.graph.node_count());
    assert_eq!(parsed.edge_count(), dataset.graph.edge_count());
}

//! Property-based integration tests over randomly generated graphs: the
//! invariants that make the paper's pruning bounds and backward evaluation
//! correct must hold for *every* graph, not just the fixtures.

use proptest::prelude::*;

use dht_nway::prelude::*;
use dht_nway::walks::backward::backward_dht_all_sources;
use dht_nway::walks::bounds::{x_upper_bound, YBoundTable};
use dht_nway::walks::forward;

/// Strategy: a small directed weighted graph described as an edge list over
/// `n` nodes, plus the number of nodes.
fn small_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (3usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..5.0), 1..(n * 3));
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward (per-pair absorbing walk) and backward (per-target walk)
    /// evaluation produce identical truncated DHT scores.
    #[test]
    fn forward_and_backward_dht_agree((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let params = DhtParams::paper_default();
        let d = 6;
        for target in graph.nodes() {
            let back = backward_dht_all_sources(&graph, &params, target, d);
            for source in graph.nodes() {
                if source == target { continue; }
                let fwd = forward::forward_dht(&graph, &params, source, target, d);
                prop_assert!((fwd - back[source.index()]).abs() < 1e-9,
                    "mismatch at ({source:?},{target:?}): {fwd} vs {}", back[source.index()]);
            }
        }
    }

    /// Truncated scores are monotone in the walk depth and bounded by the
    /// parameter range [β, αλ + β].
    #[test]
    fn truncated_scores_are_monotone_and_bounded((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let params = DhtParams::dht_lambda(0.3);
        for source in graph.nodes().take(4) {
            for target in graph.nodes().take(4) {
                if source == target { continue; }
                let mut previous = params.min_score();
                for d in 1..=6 {
                    let h = forward::forward_dht(&graph, &params, source, target, d);
                    prop_assert!(h >= previous - 1e-12);
                    prop_assert!(h >= params.min_score() - 1e-12);
                    prop_assert!(h <= params.max_score() + 1e-12);
                    previous = h;
                }
            }
        }
    }

    /// Lemma 2 / Theorem 1: both upper bounds are valid and Y is never
    /// looser than X.
    #[test]
    fn pruning_bounds_are_valid((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let params = DhtParams::dht_lambda(0.4);
        let d = 6;
        let p = NodeSet::new("P", graph.nodes().take(3));
        let table = YBoundTable::new(&graph, &params, &p, d);
        for target in graph.nodes() {
            let hits_full = backward_dht_all_sources(&graph, &params, target, d);
            for l in 1..d {
                let hits_partial = backward_dht_all_sources(&graph, &params, target, l);
                let x = x_upper_bound(&params, l);
                let y = table.bound(l, target);
                prop_assert!(y <= x + 1e-12, "Lemma 5 violated");
                for source in p.iter() {
                    if source == target { continue; }
                    let hd = hits_full[source.index()];
                    let hl = hits_partial[source.index()];
                    prop_assert!(hd <= hl + x + 1e-9, "X bound violated");
                    prop_assert!(hd <= hl + y + 1e-9, "Theorem 1 violated");
                }
            }
        }
    }

    /// The best backward algorithm (B-IDJ-Y) returns exactly the same top-k
    /// score sequence as the brute-force forward join.
    #[test]
    fn bidj_y_matches_brute_force((n, edges) in small_graph_strategy()) {
        let graph = build_graph(n, &edges);
        let config = TwoWayConfig::new(DhtParams::paper_default(), 6);
        let half = (n / 2).max(1) as u32;
        let p = NodeSet::new("P", (0..half).map(NodeId));
        let q = NodeSet::new("Q", (half..n as u32).map(NodeId));
        if p.is_empty() || q.is_empty() { return Ok(()); }
        let k = 5;
        let reference = TwoWayAlgorithm::ForwardBasic.top_k(&graph, &config, &p, &q, k);
        let fast = TwoWayAlgorithm::BackwardIdjY.top_k(&graph, &config, &p, &q, k);
        prop_assert_eq!(reference.pairs.len(), fast.pairs.len());
        for (a, b) in reference.pairs.iter().zip(fast.pairs.iter()) {
            prop_assert!((a.score - b.score).abs() < 1e-9);
        }
    }
}

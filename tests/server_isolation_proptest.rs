//! Overload isolation: hostile clients cannot corrupt, delay unboundedly,
//! or starve well-behaved interactive clients.
//!
//! Each case starts a rate-limited two-level-queue server and replays a
//! random query stream on well-behaved closed-loop connections while
//! **five hostile connections** (two floods, a never-reader, a mid-flight
//! disconnector and a byte-by-byte dripper — `dht_server::loadgen`'s
//! deterministic fault-injection profiles) attack the same server.  The
//! pinned contract:
//!
//! * well-behaved answers stay **bit-identical** to in-process
//!   [`Session::run`](dht_nway::engine) answers (scores travel as exact
//!   `f64` bit patterns, so string equality is bitwise parity);
//! * well-behaved connections see **zero** `ERR QUOTA` and zero
//!   `ERR DEADLINE` — quotas are per-connection and deadlines are opt-in,
//!   so someone else's flood can never spend *your* budget;
//! * every well-behaved request has a measured, bounded latency;
//! * the floods themselves **are** throttled (`ERR QUOTA` with retry-after
//!   hints) — the server refuses hostile volume rather than absorbing it;
//! * the server survives: clean shutdown, queues fully drained.

use proptest::prelude::*;

use dht_nway::core::queryline::{self, ParseOptions};
use dht_nway::engine::{Engine, EngineConfig};
use dht_nway::prelude::*;
use dht_nway::server::loadgen::{self, LoadGenConfig, LoadMode};
use dht_nway::server::{wire, Server, ServerConfig};

/// Strategy: a random directed weighted graph as an edge list over `n`
/// nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (9usize..18).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 3));
        (Just(n), edges)
    })
}

/// Strategy: descriptors for a stream of query lines — `(algorithm index,
/// set-pair index, k)`, every 5th line n-way, every 4th `auto`.
fn stream_strategy() -> impl Strategy<Value = Vec<(u32, u32, usize)>> {
    proptest::collection::vec((0u32..5, 0u32..3, 1usize..5), 3..8)
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

/// Three overlapping node sets named A / B / C.
fn overlapping_sets(n: usize) -> Vec<NodeSet> {
    let n = n as u32;
    let third = (n / 3).max(1);
    vec![
        NodeSet::new("A", (0..2 * third).map(NodeId)),
        NodeSet::new("B", (third..n).map(NodeId)),
        NodeSet::new("C", (0..n).step_by(2).map(NodeId)),
    ]
}

/// Renders the descriptors as query-language lines.
fn build_lines(descriptors: &[(u32, u32, usize)]) -> Vec<String> {
    const ALGORITHMS: [&str; 5] = ["f-bj", "f-idj", "b-bj", "b-idj-x", "b-idj-y"];
    descriptors
        .iter()
        .enumerate()
        .map(|(i, &(algo, pair, k))| {
            let (left, right) = match pair {
                0 => ("A", "B"),
                1 => ("B", "C"),
                _ => ("C", "A"),
            };
            if i % 5 == 4 {
                format!("nway chain {left} {right} {k} ap min")
            } else if i % 4 == 3 {
                format!("{left} {right} {k} auto")
            } else {
                format!("{left} {right} {k} {}", ALGORITHMS[algo as usize])
            }
        })
        .collect()
}

/// In-process reference: the same lines answered on one warm session,
/// encoded exactly as the server encodes them.
fn expected_responses(engine: &Engine, sets: &[NodeSet], lines: &[String]) -> Vec<String> {
    let options = ParseOptions::default();
    let mut session = engine.session();
    lines
        .iter()
        .enumerate()
        .map(|(index, line)| {
            let parsed = queryline::parse_query_line(line, sets, &options, index + 1)
                .expect("generated lines are well-formed")
                .expect("no blank lines generated");
            let output = session
                .run(&parsed.spec)
                .expect("generated queries are valid");
            format!("OK {}", wire::encode_output(&output))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Five hostile clients (two of them floods) against a rate-limited
    /// two-level-queue server: well-behaved clients keep bit-exact
    /// answers, zero quota/deadline errors, and bounded latencies, while
    /// the floods are measurably throttled and the server drains cleanly.
    #[test]
    fn hostile_clients_cannot_perturb_well_behaved_answers(
        (n, edges) in er_graph_strategy(),
        descriptors in stream_strategy(),
    ) {
        let graph = build_graph(n, &edges);
        let sets = overlapping_sets(n);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let lines = build_lines(&descriptors);

        let config = EngineConfig::paper_default();
        let reference = Engine::with_config(graph.clone(), config);
        let expected = expected_responses(&reference, &sets, &lines);

        // Rate 100/s with burst 32 per connection: well-behaved
        // closed-loop connections (at most 7 lines × 2 repeats = 14
        // requests each) never exhaust their own bucket, while a flood's
        // 64-line pipelined chunks deterministically do.  The batch queue
        // is kept small so hostile volume also trips `ERR BUSY` without
        // ever consuming interactive admission capacity.
        let server = Server::start(
            Engine::with_config(graph.clone(), config),
            sets.clone(),
            ParseOptions::default(),
            ServerConfig::default()
                .with_workers(2)
                .with_rate(100)
                .with_burst(32)
                .with_batch_queue_capacity(16),
        )
        .expect("bind loopback");
        let report = loadgen::run(
            server.local_addr(),
            &lines,
            &LoadGenConfig {
                connections: 2,
                repeat: 2,
                mode: LoadMode::Closed,
                hostile: 5, // flood, never-read, disconnect, drip, flood
                ..LoadGenConfig::default()
            },
        )
        .expect("well-behaved replay survives the hostile mix");
        let stats = server.shutdown();

        // Isolation: nobody else's traffic spent the well-behaved
        // connections' quota or deadline budget.
        prop_assert_eq!(report.quota_rejections, 0,
            "well-behaved connections must never see ERR QUOTA");
        prop_assert_eq!(report.deadline_misses, 0,
            "well-behaved connections must never see ERR DEADLINE");

        // Parity: bit-identical answers despite the ongoing attack.
        prop_assert_eq!(report.responses.len(), 2);
        for (connection, finals) in report.responses.iter().enumerate() {
            prop_assert_eq!(finals.len(), 2 * lines.len());
            for (index, response) in finals.iter().enumerate() {
                prop_assert_eq!(
                    response,
                    &expected[index % expected.len()],
                    "hostile traffic perturbed connection {} request {}",
                    connection, index
                );
            }
        }

        // Bounded latency: every well-behaved request was measured and
        // none stalled anywhere near the run's own wall-clock guards.
        prop_assert_eq!(report.latencies_ms.len(), report.answered);
        let mut sorted = report.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let p99 = sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)];
        prop_assert!(p99.is_finite() && p99 < 30_000.0,
            "well-behaved p99 unbounded under hostile load: {} ms", p99);

        // Throttling: the floods (≥ 2 connections × ≥ 4 chunks of 64
        // lines against burst 32) were refused with typed quota lines.
        prop_assert_eq!(report.hostile.connections, 5);
        prop_assert!(report.hostile.quota_rejections > 0,
            "floods must trip the per-connection rate limit: {:?}",
            report.hostile);
        prop_assert!(stats.quota_rejected >= report.hostile.quota_rejections,
            "server-side quota count covers every hostile rejection");

        // Survival: clean shutdown with both queue classes drained.
        prop_assert_eq!(stats.queue_depth, 0, "drained on shutdown");
    }
}

//! Property-based parity tests for the cost-based planner: on random
//! graphs and specs, an `Auto` query must answer **bit-identically** to
//! the fixed algorithm its plan names *and* to every other algorithm of
//! the backward family `Auto` selects from — at every tested thread count
//! (`DHT_TEST_THREADS`, default 1 and 4), on cold and warm sessions —
//! and its scores must agree with the forward algorithms to 1e-9 (forward
//! and backward walks sum the same series in different floating-point
//! orders, so cross-family equality is float-tolerance, matching the
//! algorithms-agree integration tests).
//!
//! The backward-family bitwise agreement (B-BJ ≡ B-IDJ-X ≡ B-IDJ-Y) is
//! load-bearing: `Auto` restricts its selection to that family precisely
//! so that warmth-dependent plan flips — cache state varies with session
//! count and scheduling — can never change any answer's bits.  This is
//! the contract that makes `Auto` safe to ship: planning may only move
//! latency, never what any query answers.  The tests also pin that
//! planning is deterministic (same session state → same plan) and that
//! explain-then-run agrees with `run_with_plan`.

use proptest::prelude::*;

use dht_nway::core::spec::{AlgorithmChoice, NWaySpec, QuerySpec, TwoWaySpec};
use dht_nway::core::twoway::TwoWayConfig;
use dht_nway::engine::{Engine, EngineConfig, EngineOutput};
use dht_nway::prelude::*;

/// Strategy: a random Erdős–Rényi-style directed weighted graph given as an
/// edge list over `n` nodes.
fn er_graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (8usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 1..(n * 4));
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut builder = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        if u != v {
            builder
                .add_edge(NodeId(u), NodeId(v), w)
                .expect("valid endpoints");
        }
    }
    builder.build().expect("generated graph is valid")
}

fn split_sets(n: usize) -> (NodeSet, NodeSet) {
    let half = (n as u32 / 2).max(1);
    (
        NodeSet::new("P", (0..half).map(NodeId)),
        NodeSet::new("Q", (half..n as u32).map(NodeId)),
    )
}

/// Thread counts under test (CI matrix sets `DHT_TEST_THREADS`).
fn thread_counts() -> Vec<usize> {
    dht_nway::par::test_thread_counts(&[1, 4])
}

/// The documented Yeast scenario (README "Choosing an algorithm"): on the
/// Yeast analogue's two largest partitions, a cold session plans the
/// top-10 join as B-IDJ-Y (pruning skips most per-target walks), and the
/// **same spec** plans as B-BJ once the target columns are resident —
/// with bit-identical answers either way.
#[test]
fn documented_yeast_scenario_flips_from_bidjy_to_bbj_with_warmth() {
    use dht_nway::datasets::yeast::{self, YeastConfig};
    use dht_nway::datasets::Scale;

    let dataset = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
    let largest = dataset.largest_sets(2);
    let cap = |set: &NodeSet| NodeSet::new(set.name(), set.iter().take(20));
    let (p, q) = (cap(largest[0]), cap(largest[1]));
    let engine = Engine::new(dataset.graph.clone());
    let mut session = engine.session();
    let spec = QuerySpec::two_way(p.clone(), q.clone(), 10);

    let cold = session.explain(&spec).expect("valid spec");
    assert_eq!(
        cold.chosen.two_way(),
        Some(TwoWayAlgorithm::BackwardIdjY),
        "cold Yeast plan: {cold}"
    );
    assert_eq!(cold.resident_columns, 0);

    let EngineOutput::TwoWay(auto_cold) = session.run(&spec).expect("valid spec") else {
        unreachable!("two-way spec");
    };

    // Warm every target column at full depth, then re-explain.
    session.two_way(TwoWayAlgorithm::BackwardBasic, &p, &q, 10);
    let warm = session.explain(&spec).expect("valid spec");
    assert_eq!(warm.resident_columns, q.len(), "warm Yeast plan: {warm}");
    assert_eq!(
        warm.chosen.two_way(),
        Some(TwoWayAlgorithm::BackwardBasic),
        "warm Yeast plan: {warm}"
    );
    assert!(warm.estimated_cost() < cold.estimated_cost());

    let EngineOutput::TwoWay(auto_warm) = session.run(&spec).expect("valid spec") else {
        unreachable!("two-way spec");
    };
    assert_eq!(
        auto_cold.pairs, auto_warm.pairs,
        "the flip must not change answers"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-way `Auto` specs: bit-identical to the plan's chosen algorithm,
    /// score-identical (1e-9) to every fixed algorithm, on cold and warm
    /// sessions.
    #[test]
    fn auto_two_way_specs_match_every_fixed_algorithm(
        (n, edges) in er_graph_strategy(),
        k in 1usize..8,
    ) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let spec = QuerySpec::two_way(p.clone(), q.clone(), k);
        for threads in thread_counts() {
            let engine = Engine::with_config(
                graph.clone(),
                EngineConfig::paper_default().with_threads(threads),
            );
            let one_shot_config = TwoWayConfig::paper_default().with_threads(threads);
            let mut session = engine.session();
            // Two passes: the first plans cold, the second plans against
            // whatever the first warmed (possibly a different algorithm).
            for pass in 0..2 {
                // Planning is deterministic: explain twice, same choice.
                let plan_a = session.explain(&spec).expect("valid spec");
                let plan_b = session.explain(&spec).expect("valid spec");
                prop_assert_eq!(&plan_a.chosen, &plan_b.chosen,
                    "pass={} threads={}", pass, threads);
                prop_assert!(plan_a.auto);

                let (plan, output) = session.run_with_plan(&spec).expect("valid spec");
                prop_assert_eq!(&plan.chosen, &plan_a.chosen,
                    "run_with_plan must follow explain: pass={} threads={}", pass, threads);
                let EngineOutput::TwoWay(auto_out) = output else {
                    prop_assert!(false, "two-way spec produced an n-way output");
                    unreachable!();
                };
                let chosen = plan.chosen.two_way().expect("two-way plan");

                // Bitwise vs the chosen algorithm's one-shot run.
                let reference = chosen.top_k(&graph, &one_shot_config, &p, &q, k);
                prop_assert_eq!(auto_out.pairs.len(), reference.pairs.len(),
                    "{} pass={} threads={}", chosen.name(), pass, threads);
                for (a, b) in auto_out.pairs.iter().zip(reference.pairs.iter()) {
                    prop_assert_eq!((a.left, a.right), (b.left, b.right),
                        "{} pass={} threads={}", chosen.name(), pass, threads);
                    prop_assert!(a.score == b.score,
                        "{} pass={} threads={}: auto {} != fixed {}",
                        chosen.name(), pass, threads, a.score, b.score);
                }

                // Bitwise vs the whole backward family (what Auto selects
                // from — this is what makes warmth-dependent plan flips
                // answer-invariant), 1e-9 vs the forward algorithms.
                for algorithm in TwoWayAlgorithm::ALL {
                    let backward = !matches!(
                        algorithm,
                        TwoWayAlgorithm::ForwardBasic | TwoWayAlgorithm::ForwardIdj
                    );
                    let fixed = algorithm.top_k(&graph, &one_shot_config, &p, &q, k);
                    prop_assert_eq!(auto_out.pairs.len(), fixed.pairs.len(),
                        "{} pass={} threads={}", algorithm.name(), pass, threads);
                    for (rank, (a, b)) in
                        auto_out.pairs.iter().zip(fixed.pairs.iter()).enumerate()
                    {
                        if backward {
                            prop_assert_eq!((a.left, a.right), (b.left, b.right),
                                "{} pass={} threads={} rank={}",
                                algorithm.name(), pass, threads, rank);
                            prop_assert!(a.score == b.score,
                                "{} pass={} threads={} rank={}: auto {} != fixed {}",
                                algorithm.name(), pass, threads, rank, a.score, b.score);
                        } else {
                            prop_assert!((a.score - b.score).abs() < 1e-9,
                                "{} pass={} threads={} rank={}: {} vs {}",
                                algorithm.name(), pass, threads, rank, a.score, b.score);
                        }
                    }
                }
            }
        }
    }

    /// N-way `Auto` specs: bit-identical to the plan's chosen algorithm,
    /// score-identical (1e-9) to every fixed n-way algorithm.
    #[test]
    fn auto_n_way_specs_match_every_fixed_algorithm(
        (n, edges) in er_graph_strategy(),
        k in 1usize..5,
        m in 1usize..6,
        star in 0u32..2,
    ) {
        let star = star == 1;
        let graph = build_graph(n, &edges);
        let third = (n as u32 / 3).max(1);
        let sets = vec![
            NodeSet::new("A", (0..third).map(NodeId)),
            NodeSet::new("B", (third..2 * third).map(NodeId)),
            NodeSet::new("C", (2 * third..n as u32).map(NodeId)),
        ];
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let query = if star { QueryGraph::star(3) } else { QueryGraph::chain(3) };
        let spec = QuerySpec::NWay(NWaySpec::new(query.clone(), sets.clone(), k));
        for threads in thread_counts() {
            let engine = Engine::with_config(
                graph.clone(),
                EngineConfig::paper_default().with_threads(threads),
            );
            let config = NWayConfig::paper_default().with_k(k).with_threads(threads);
            let mut session = engine.session();
            for pass in 0..2 {
                let (plan, output) = session.run_with_plan(&spec).expect("valid spec");
                prop_assert!(plan.auto);
                let chosen = plan.chosen.n_way().expect("n-way plan");
                let EngineOutput::NWay(auto_out) = output else {
                    prop_assert!(false, "n-way spec produced a two-way output");
                    unreachable!();
                };

                // Bitwise vs the chosen algorithm's one-shot run.
                let reference = chosen
                    .run(&graph, &config, &query, &sets)
                    .expect("valid query");
                prop_assert_eq!(auto_out.answers.len(), reference.answers.len(),
                    "{} pass={} threads={}", chosen.name(), pass, threads);
                for (a, b) in auto_out.answers.iter().zip(reference.answers.iter()) {
                    prop_assert_eq!(&a.nodes, &b.nodes,
                        "{} pass={} threads={}", chosen.name(), pass, threads);
                    prop_assert!(a.score == b.score,
                        "{} pass={} threads={}: auto {} != fixed {}",
                        chosen.name(), pass, threads, a.score, b.score);
                }

                // Exact score parity vs the partial-join (backward) family
                // Auto selects from; 1e-9 vs the forward-joining NL / AP.
                for algorithm in [
                    NWayAlgorithm::NestedLoop,
                    NWayAlgorithm::AllPairs,
                    NWayAlgorithm::PartialJoin { m },
                    NWayAlgorithm::IncrementalPartialJoin { m },
                ] {
                    let backward = matches!(
                        algorithm,
                        NWayAlgorithm::PartialJoin { .. }
                            | NWayAlgorithm::IncrementalPartialJoin { .. }
                    );
                    let fixed = algorithm
                        .run(&graph, &config, &query, &sets)
                        .expect("valid query");
                    prop_assert_eq!(auto_out.answers.len(), fixed.answers.len(),
                        "{} pass={} threads={}", algorithm.name(), pass, threads);
                    for (rank, (a, b)) in
                        auto_out.answers.iter().zip(fixed.answers.iter()).enumerate()
                    {
                        if backward {
                            prop_assert!(a.score == b.score,
                                "{} pass={} threads={} rank={}: auto {} != fixed {}",
                                algorithm.name(), pass, threads, rank, a.score, b.score);
                        } else {
                            prop_assert!((a.score - b.score).abs() < 1e-9,
                                "{} pass={} threads={} rank={}: {} vs {}",
                                algorithm.name(), pass, threads, rank, a.score, b.score);
                        }
                    }
                }
            }
        }
    }

    /// Fixed specs dispatch to exactly the pinned algorithm: bitwise equal
    /// to the one-shot call, with a non-auto plan.
    #[test]
    fn fixed_specs_run_the_pinned_algorithm_bitwise(
        (n, edges) in er_graph_strategy(),
        algo in 0u32..5,
        k in 1usize..6,
    ) {
        let graph = build_graph(n, &edges);
        let (p, q) = split_sets(n);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let algorithm = TwoWayAlgorithm::ALL[algo as usize];
        let spec = QuerySpec::TwoWay(
            TwoWaySpec::new(p.clone(), q.clone(), k)
                .with_algorithm(AlgorithmChoice::Fixed(algorithm)),
        );
        for threads in thread_counts() {
            let engine = Engine::with_config(
                graph.clone(),
                EngineConfig::paper_default().with_threads(threads),
            );
            let mut session = engine.session();
            let (plan, output) = session.run_with_plan(&spec).expect("valid spec");
            prop_assert!(!plan.auto);
            prop_assert_eq!(plan.chosen.two_way(), Some(algorithm));
            let EngineOutput::TwoWay(out) = output else {
                prop_assert!(false, "two-way spec produced an n-way output");
                unreachable!();
            };
            let config = TwoWayConfig::paper_default().with_threads(threads);
            let reference = algorithm.top_k(&graph, &config, &p, &q, k);
            prop_assert_eq!(out.pairs.len(), reference.pairs.len());
            for (a, b) in out.pairs.iter().zip(reference.pairs.iter()) {
                prop_assert_eq!((a.left, a.right), (b.left, b.right));
                prop_assert!(a.score == b.score, "{} != {}", a.score, b.score);
            }
        }
    }
}

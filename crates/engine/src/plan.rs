//! Cost-based query planning: choose a join algorithm for a
//! [`QuerySpec`](dht_core::spec::QuerySpec) from graph statistics and live cache
//! state, and reify the decision as an inspectable [`QueryPlan`].
//!
//! Every algorithm in the paper's family is **exact** — they all return the
//! same answers — so planning is purely a performance decision and can
//! never change results (`tests/planner_parity_proptest.rs` pins this).
//! The model is deliberately coarse: unit costs are "edge traversals", a
//! cold walk is priced from the calibrated average out-degree (frontier
//! growth capped by the dense sweep), and a **resident** backward column —
//! probed through the session's [`QueryCtx`] without
//! disturbing LRU order — costs nothing but its scan.  That last term is
//! what makes plans *session-dependent*: on a cold session the
//! iterative-deepening joins win (they prune most of the per-target walk
//! work), while on a session whose target columns are already cached the
//! plain B-BJ scan wins because the bound machinery of B-IDJ would be pure
//! overhead.
//!
//! Two-way candidates are the paper's five join algorithms; n-way
//! candidates are NL / AP / PJ / PJ-i, with PJ-i's initial list size `m`
//! chosen as `max(k, 4)` for `Auto` plans.
//!
//! **`Auto` selects within the backward family only** (B-BJ / B-IDJ-X /
//! B-IDJ-Y two-way; PJ / PJ-i n-way).  All backward algorithms read the
//! same deterministic backward columns, so they answer bit-identically to
//! each other — which makes warmth-dependent plan flips invisible in the
//! results at any session count.  Forward algorithms (F-BJ, F-IDJ, and
//! the forward-joining AP / NL) agree only to ~1e-9 (different
//! floating-point summation order), so auto-selecting them would let
//! cache warmth — which varies with scheduling — leak into the last bits
//! of answers.  Their cost estimates are still computed and reported, so
//! `explain` shows the whole tradeoff; pinning them with
//! `AlgorithmChoice::Fixed` remains available and deterministic.

use std::fmt;

use dht_core::multiway::NWayAlgorithm;
use dht_core::spec::{NWaySpec, TwoWaySpec};
use dht_core::twoway::TwoWayAlgorithm;
use dht_graph::{Graph, NodeSet};
use dht_walks::frontier::calibrated_switch_factor;
use dht_walks::{DhtParams, QueryCtx, WalkEngine};

/// Graph-level statistics the cost model prices walks from; computed once
/// per [`Engine`](crate::Engine) at construction.
#[derive(Debug, Clone, Copy)]
pub struct GraphStats {
    /// `|V_G|`.
    pub nodes: usize,
    /// `|E_G|` (directed edges).
    pub edges: usize,
    /// Calibrated average out-degree `ḡ` (sampled, deterministic — the
    /// same estimate `WalkEngine::Auto` switches its kernel on).
    pub avg_out_degree: f64,
}

impl GraphStats {
    /// Samples the statistics of `graph` (cheap: `O(1)`-ish, deterministic).
    pub fn measure(graph: &Graph) -> Self {
        GraphStats {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            avg_out_degree: calibrated_switch_factor(graph) as f64,
        }
    }

    /// Estimated edge traversals of one cold truncated walk of depth `d`:
    /// a frontier growing by `ḡ` per step, each step capped by the dense
    /// sweep cost `2·|E_G|`, the frontier capped by `|V_G|`.
    pub fn cold_walk_cost(&self, d: usize) -> f64 {
        let g = self.avg_out_degree.max(1.0);
        let dense_step = 2.0 * (self.edges.max(1) as f64);
        let mut frontier = 1.0f64;
        let mut cost = 0.0f64;
        for _ in 0..d.max(1) {
            cost += (frontier * g).min(dense_step);
            frontier = (frontier * g).min(self.nodes.max(1) as f64);
        }
        cost.max(1.0)
    }
}

/// Atomic tallies of the planner's `Auto` decisions on one engine: one
/// chosen-count slot per candidate algorithm, plus the number of plans
/// made and candidates costed.  Updated lock-free from every session of
/// the engine; read by `STATS` / `METRICS` exposition.
#[derive(Debug, Default)]
pub struct PlanCounters {
    chosen: [std::sync::atomic::AtomicU64; PlanCounters::SLOTS.len()],
    plans: std::sync::atomic::AtomicU64,
    candidates: std::sync::atomic::AtomicU64,
}

impl PlanCounters {
    /// Stable algorithm slots, in exposition order (PJ / PJ-i tally here
    /// regardless of their concrete `m`).
    pub const SLOTS: [&'static str; 9] = [
        "f-bj", "f-idj", "b-bj", "b-idj-x", "b-idj-y", "nl", "ap", "pj", "pj-i",
    ];

    fn slot(algorithm: &PlannedAlgorithm) -> usize {
        match algorithm {
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::ForwardBasic) => 0,
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::ForwardIdj) => 1,
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardBasic) => 2,
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjX) => 3,
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjY) => 4,
            PlannedAlgorithm::NWay(NWayAlgorithm::NestedLoop) => 5,
            PlannedAlgorithm::NWay(NWayAlgorithm::AllPairs) => 6,
            PlannedAlgorithm::NWay(NWayAlgorithm::PartialJoin { .. }) => 7,
            PlannedAlgorithm::NWay(NWayAlgorithm::IncrementalPartialJoin { .. }) => 8,
        }
    }

    /// Tallies one `Auto` plan: its chosen algorithm and how many
    /// candidates were costed to pick it.
    pub fn record(&self, plan: &QueryPlan) {
        use std::sync::atomic::Ordering;
        self.chosen[Self::slot(&plan.chosen)].fetch_add(1, Ordering::Relaxed);
        self.plans.fetch_add(1, Ordering::Relaxed);
        self.candidates
            .fetch_add(plan.candidates.len() as u64, Ordering::Relaxed);
    }

    /// `(label, chosen count)` for every algorithm slot.
    pub fn chosen_counts(&self) -> Vec<(&'static str, u64)> {
        use std::sync::atomic::Ordering;
        Self::SLOTS
            .iter()
            .zip(&self.chosen)
            .map(|(label, count)| (*label, count.load(Ordering::Relaxed)))
            .collect()
    }

    /// `(plans made, candidates costed)` so far.
    pub fn totals(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.plans.load(Ordering::Relaxed),
            self.candidates.load(Ordering::Relaxed),
        )
    }
}

/// The algorithm a plan resolved to (with concrete parameters, e.g. PJ-i's
/// initial list size `m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannedAlgorithm {
    /// A two-way join algorithm.
    TwoWay(TwoWayAlgorithm),
    /// An n-way join algorithm.
    NWay(NWayAlgorithm),
}

impl PlannedAlgorithm {
    /// Human-readable name (PJ / PJ-i include their `m`).
    pub fn label(&self) -> String {
        match self {
            PlannedAlgorithm::TwoWay(a) => a.name().to_string(),
            PlannedAlgorithm::NWay(NWayAlgorithm::PartialJoin { m }) => format!("PJ(m={m})"),
            PlannedAlgorithm::NWay(NWayAlgorithm::IncrementalPartialJoin { m }) => {
                format!("PJ-i(m={m})")
            }
            PlannedAlgorithm::NWay(a) => a.name().to_string(),
        }
    }

    /// The two-way algorithm, when this is a two-way plan.
    pub fn two_way(&self) -> Option<TwoWayAlgorithm> {
        match self {
            PlannedAlgorithm::TwoWay(a) => Some(*a),
            PlannedAlgorithm::NWay(_) => None,
        }
    }

    /// The n-way algorithm, when this is an n-way plan.
    pub fn n_way(&self) -> Option<NWayAlgorithm> {
        match self {
            PlannedAlgorithm::NWay(a) => Some(*a),
            PlannedAlgorithm::TwoWay(_) => None,
        }
    }
}

impl fmt::Display for PlannedAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One candidate's cost estimate (unit: estimated edge traversals).
#[derive(Debug, Clone)]
pub struct CostEstimate {
    /// The candidate algorithm.
    pub algorithm: PlannedAlgorithm,
    /// Estimated cost in edge traversals.
    pub cost: f64,
}

/// A reified planning decision: what will run, why, and what the cache
/// looked like when the decision was made.
///
/// Returned by `Session::explain` and `Session::run_with_plan`; rendered
/// by `dht querystream --explain 1` as one line per query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The algorithm the query will run with.
    pub chosen: PlannedAlgorithm,
    /// `true` when the planner chose (spec said `Auto`); `false` when the
    /// spec pinned the algorithm.
    pub auto: bool,
    /// Every candidate with its cost estimate, in preference order
    /// (ties resolve to the earlier entry).
    pub candidates: Vec<CostEstimate>,
    /// Backward target columns (at full depth `d`) already resident in the
    /// session's column cache when the plan was made.
    pub resident_columns: usize,
    /// Target columns probed (`|Q|` for two-way; `Σ |R_j|` over query
    /// edges for n-way).
    pub probed_columns: usize,
    /// Whether the `Y_l⁺` bound table(s) the backward IDJ candidates need
    /// were already cached.
    pub y_tables_resident: bool,
}

impl QueryPlan {
    /// The chosen candidate's cost estimate.
    pub fn estimated_cost(&self) -> f64 {
        self.candidates
            .iter()
            .find(|c| c.algorithm == self.chosen)
            .map_or(0.0, |c| c.cost)
    }

    /// Expected column-cache hits of the chosen plan (the resident target
    /// columns a backward algorithm will clone instead of walking; `0` for
    /// forward-walking algorithms — F-BJ, F-IDJ, NL, and AP (whose
    /// complete per-edge joins run F-BJ) — which never read the cache).
    pub fn expected_cache_hits(&self) -> usize {
        let backward = match self.chosen {
            PlannedAlgorithm::TwoWay(a) => !matches!(
                a,
                TwoWayAlgorithm::ForwardBasic | TwoWayAlgorithm::ForwardIdj
            ),
            PlannedAlgorithm::NWay(a) => {
                !matches!(a, NWayAlgorithm::NestedLoop | NWayAlgorithm::AllPairs)
            }
        };
        if backward {
            self.resident_columns
        } else {
            0
        }
    }
}

/// Compact cost rendering for plan lines (`1234`, `5.67e8`).
fn format_cost(cost: f64) -> String {
    if cost >= 1e6 {
        format!("{cost:.2e}")
    } else {
        format!("{cost:.0}")
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "choose {} ({}; est {}, warm {}/{} target columns, Y-table {})",
            self.chosen.label(),
            if self.auto { "auto" } else { "fixed" },
            format_cost(self.estimated_cost()),
            self.resident_columns,
            self.probed_columns,
            if self.y_tables_resident {
                "warm"
            } else {
                "cold"
            },
        )?;
        let runners_up: Vec<String> = self
            .candidates
            .iter()
            .filter(|c| c.algorithm != self.chosen)
            .map(|c| format!("{} {}", c.algorithm.label(), format_cost(c.cost)))
            .collect();
        if !runners_up.is_empty() {
            write!(f, "; rejected: {}", runners_up.join(", "))?;
        }
        Ok(())
    }
}

/// Everything the planner needs from the engine configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanInputs<'a> {
    pub graph: &'a Graph,
    pub stats: &'a GraphStats,
    pub params: &'a DhtParams,
    pub d: usize,
    pub engine: WalkEngine,
}

/// Counts how many of `targets`' backward columns (full depth) are
/// resident in `ctx`, probing without disturbing the cache.
fn resident_targets(inputs: &PlanInputs<'_>, ctx: &QueryCtx, targets: &NodeSet) -> usize {
    targets
        .iter()
        .filter(|&t| {
            ctx.backward_column_resident(inputs.graph, inputs.params, t, inputs.d, inputs.engine)
        })
        .count()
}

/// IDJ pruning discounts: the fraction of per-target walk work an
/// iterative-deepening join is expected to pay, interpolating between
/// aggressive pruning at `k ≪ |P|·|Q|` and no pruning at `k = |P|·|Q|`.
fn idj_discounts(k: usize, pairs: f64) -> (f64, f64) {
    let frac = (k as f64 / pairs.max(1.0)).min(1.0);
    let x = 0.55 + 0.45 * frac; // X_l⁺: parameter-only bound, prunes less
    let y = 0.30 + 0.70 * frac; // Y_l⁺: reachability-aware, prunes more
    (x, y)
}

/// Shallow-deepening overhead factor of the IDJ joins: the `l = 1, 2, 4…`
/// rounds walk every still-alive target regardless of whether its *full
/// depth* column is cached (shallow columns rarely are).
const IDJ_DEEPENING_FACTOR: f64 = 0.2;

/// Per-pair constant of rank-join candidate management (AP / PJ / PJ-i).
const RANK_JOIN_PAIR_COST: f64 = 8.0;

/// F-IDJ's pruning discount relative to F-BJ.
const FIDJ_DISCOUNT: f64 = 0.6;

/// PJ's restart penalty relative to PJ-i (`getNextNodePair` re-runs a
/// deeper join from scratch whenever a list is exhausted).
const PJ_RESTART_FACTOR: f64 = 1.5;

/// Cost of one two-way backward-IDJ-Y edge evaluation; shared by the
/// two-way planner and the per-edge terms of PJ / PJ-i.
#[allow(clippy::too_many_arguments)]
fn bidj_y_cost(
    inputs: &PlanInputs<'_>,
    walk: f64,
    p_len: usize,
    q_len: usize,
    k: usize,
    warm: usize,
    y_resident: bool,
) -> f64 {
    let p = p_len as f64;
    let q = q_len as f64;
    let cold = q_len.saturating_sub(warm) as f64;
    let (_, dy) = idj_discounts(k, p * q);
    let y_cost = if y_resident {
        0.0
    } else {
        // One d-step forward sweep seeded with all of P builds the table.
        walk + (inputs.d as f64) * (inputs.stats.nodes as f64)
    };
    IDJ_DEEPENING_FACTOR * q * walk + dy * cold * walk + p * q + y_cost
}

/// Plans a two-way spec against the session's cache state.
pub(crate) fn plan_two_way(
    inputs: &PlanInputs<'_>,
    ctx: &QueryCtx,
    spec: &TwoWaySpec,
) -> QueryPlan {
    let walk = inputs.stats.cold_walk_cost(inputs.d);
    let p = spec.p.len() as f64;
    let q = spec.q.len() as f64;
    let warm = resident_targets(inputs, ctx, &spec.q);
    let cold = spec.q.len().saturating_sub(warm) as f64;
    let y_resident = ctx.y_table_resident(
        inputs.graph,
        inputs.params,
        &spec.p,
        inputs.d,
        inputs.engine,
    );
    let (dx, _) = idj_discounts(spec.k, p * q);
    let scan = p * q;
    let deepen = IDJ_DEEPENING_FACTOR * q * walk;

    // Preference order doubles as the tie-break: the simplest algorithm
    // that reaches the minimum wins.  Only the first AUTO_SELECTABLE
    // entries — the backward family — are eligible for `Auto`; the forward
    // estimates are reported for transparency only (see `finish_plan`).
    let candidates = vec![
        CostEstimate {
            algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardBasic),
            cost: cold * walk + scan,
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjY),
            cost: bidj_y_cost(
                inputs,
                walk,
                spec.p.len(),
                spec.q.len(),
                spec.k,
                warm,
                y_resident,
            ),
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjX),
            cost: deepen + dx * cold * walk + scan,
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::ForwardIdj),
            cost: FIDJ_DISCOUNT * p * q * walk + scan,
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::ForwardBasic),
            cost: p * q * walk + scan,
        },
    ];

    finish_plan(
        candidates,
        TWO_WAY_AUTO_SELECTABLE,
        spec.algorithm.fixed().map(|&a| PlannedAlgorithm::TwoWay(a)),
        warm,
        spec.q.len(),
        y_resident,
    )
}

/// How many leading two-way candidates `Auto` may select: the backward
/// family (B-BJ, B-IDJ-Y, B-IDJ-X).  See [`finish_plan`].
const TWO_WAY_AUTO_SELECTABLE: usize = 3;

/// How many leading n-way candidates `Auto` may select: the partial-join
/// family (PJ-i, PJ), whose per-edge scores come from the same backward
/// columns.  See [`finish_plan`].
const N_WAY_AUTO_SELECTABLE: usize = 2;

/// Plans an n-way spec against the session's cache state.
pub(crate) fn plan_n_way(inputs: &PlanInputs<'_>, ctx: &QueryCtx, spec: &NWaySpec) -> QueryPlan {
    let walk = inputs.stats.cold_walk_cost(inputs.d);
    // PJ / PJ-i initial list size: the caller's when pinned, else a small
    // multiple of k (deep enough to usually avoid refinement, shallow
    // enough to keep the initial joins cheap).
    let m = match spec.algorithm.fixed() {
        Some(NWayAlgorithm::PartialJoin { m } | NWayAlgorithm::IncrementalPartialJoin { m }) => *m,
        _ => spec.k.max(4),
    };

    let mut warm_total = 0usize;
    let mut probed_total = 0usize;
    let mut all_y_resident = true;
    let mut ap_cost = 0.0f64;
    let mut pji_cost = 0.0f64;
    let mut product = 1.0f64;
    for set in &spec.sets {
        product = (product * set.len() as f64).min(1e15);
    }
    for &(i, j) in spec.query.edges() {
        let from = &spec.sets[i];
        let to = &spec.sets[j];
        let warm = resident_targets(inputs, ctx, to);
        let y_resident =
            ctx.y_table_resident(inputs.graph, inputs.params, from, inputs.d, inputs.engine);
        all_y_resident &= y_resident;
        warm_total += warm;
        probed_total += to.len();
        let pairs = from.len() as f64 * to.len() as f64;
        // AP's complete per-edge join is forward (F-BJ) and never cached.
        ap_cost += pairs * walk + pairs * RANK_JOIN_PAIR_COST;
        pji_cost += bidj_y_cost(inputs, walk, from.len(), to.len(), m, warm, y_resident)
            + pairs.min(m as f64 * to.len() as f64) * RANK_JOIN_PAIR_COST;
    }
    let edge_count = spec.query.edge_count() as f64;
    let nl_cost = product * edge_count * walk;

    // As in `plan_two_way`: only the leading partial-join family is
    // `Auto`-selectable; AP and NL are estimated for transparency only.
    let candidates = vec![
        CostEstimate {
            algorithm: PlannedAlgorithm::NWay(NWayAlgorithm::IncrementalPartialJoin { m }),
            cost: pji_cost,
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::NWay(NWayAlgorithm::PartialJoin { m }),
            cost: pji_cost * PJ_RESTART_FACTOR,
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::NWay(NWayAlgorithm::AllPairs),
            cost: ap_cost,
        },
        CostEstimate {
            algorithm: PlannedAlgorithm::NWay(NWayAlgorithm::NestedLoop),
            cost: nl_cost,
        },
    ];

    finish_plan(
        candidates,
        N_WAY_AUTO_SELECTABLE,
        spec.algorithm.fixed().map(|&a| PlannedAlgorithm::NWay(a)),
        warm_total,
        probed_total,
        all_y_resident,
    )
}

/// Resolves the chosen candidate (cheapest among the first `selectable`
/// candidates for `Auto`, the pinned one otherwise) and assembles the
/// [`QueryPlan`].
///
/// `Auto` only ever selects within the **backward family** (the first
/// `selectable` entries): forward and backward walks accumulate the same
/// series in different floating-point orders, so cross-family answers
/// agree to ~1e-9 but not bitwise — and an `Auto` choice depends on cache
/// warmth, which varies with session count and scheduling.  Selecting
/// within one bitwise-identical family keeps the engine's contract exact:
/// planning (like caching) moves latency, never answers, at any session
/// count.  The forward/NL/AP estimates are still computed and reported so
/// `explain` shows the whole tradeoff.
fn finish_plan(
    candidates: Vec<CostEstimate>,
    selectable: usize,
    fixed: Option<PlannedAlgorithm>,
    resident_columns: usize,
    probed_columns: usize,
    y_tables_resident: bool,
) -> QueryPlan {
    let chosen = match fixed {
        Some(algorithm) => algorithm,
        None => {
            let eligible = &candidates[..selectable.min(candidates.len())];
            let mut best = &eligible[0];
            for candidate in &eligible[1..] {
                if candidate.cost < best.cost {
                    best = candidate;
                }
            }
            best.algorithm
        }
    };
    QueryPlan {
        chosen,
        auto: fixed.is_none(),
        candidates,
        resident_columns,
        probed_columns,
        y_tables_resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> GraphStats {
        GraphStats {
            nodes: 2_000,
            edges: 12_000,
            avg_out_degree: 6.0,
        }
    }

    #[test]
    fn cold_walk_cost_grows_with_depth_and_caps_at_the_dense_sweep() {
        let s = stats();
        let shallow = s.cold_walk_cost(2);
        let deep = s.cold_walk_cost(8);
        assert!(deep > shallow);
        // Every step is capped by the dense sweep, so the total is too.
        assert!(deep <= 8.0 * 2.0 * s.edges as f64);
        // A degenerate graph still prices a positive walk.
        let empty = GraphStats {
            nodes: 0,
            edges: 0,
            avg_out_degree: 0.0,
        };
        assert!(empty.cold_walk_cost(4) >= 1.0);
    }

    #[test]
    fn idj_discounts_tighten_with_small_k_and_y_is_never_looser() {
        let (x_small, y_small) = idj_discounts(1, 10_000.0);
        let (x_full, y_full) = idj_discounts(10_000, 10_000.0);
        assert!(x_small < x_full);
        assert!(y_small < y_full);
        assert!(y_small < x_small, "Y prunes more than X");
        assert!((x_full - 1.0).abs() < 1e-12);
        assert!((y_full - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_display_lists_chosen_and_rejected_candidates() {
        let plan = QueryPlan {
            chosen: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardBasic),
            auto: true,
            candidates: vec![
                CostEstimate {
                    algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardBasic),
                    cost: 400.0,
                },
                CostEstimate {
                    algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjY),
                    cost: 40_400.0,
                },
            ],
            resident_columns: 20,
            probed_columns: 20,
            y_tables_resident: true,
        };
        let line = plan.to_string();
        assert!(line.contains("choose B-BJ (auto"), "{line}");
        assert!(line.contains("warm 20/20"), "{line}");
        assert!(line.contains("rejected: B-IDJ-Y"), "{line}");
        assert_eq!(plan.estimated_cost(), 400.0);
        assert_eq!(plan.expected_cache_hits(), 20);
    }

    #[test]
    fn forward_plans_expect_no_cache_hits() {
        let plan = QueryPlan {
            chosen: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::ForwardBasic),
            auto: false,
            candidates: vec![CostEstimate {
                algorithm: PlannedAlgorithm::TwoWay(TwoWayAlgorithm::ForwardBasic),
                cost: 1e7,
            }],
            resident_columns: 5,
            probed_columns: 9,
            y_tables_resident: false,
        };
        assert_eq!(plan.expected_cache_hits(), 0);
        assert!(plan.to_string().contains("fixed"));
        assert!(plan.to_string().contains("1.00e7"));
    }

    #[test]
    fn all_pairs_plans_expect_no_cache_hits_either() {
        // AP's complete per-edge joins run F-BJ (forward), so resident
        // backward columns never help it — unlike PJ / PJ-i.
        let base = QueryPlan {
            chosen: PlannedAlgorithm::NWay(NWayAlgorithm::AllPairs),
            auto: true,
            candidates: vec![CostEstimate {
                algorithm: PlannedAlgorithm::NWay(NWayAlgorithm::AllPairs),
                cost: 1.0,
            }],
            resident_columns: 7,
            probed_columns: 9,
            y_tables_resident: false,
        };
        assert_eq!(base.expected_cache_hits(), 0);
        let pji = QueryPlan {
            chosen: PlannedAlgorithm::NWay(NWayAlgorithm::IncrementalPartialJoin { m: 4 }),
            ..base
        };
        assert_eq!(pji.expected_cache_hits(), 7);
    }

    #[test]
    fn planned_algorithm_labels_include_m() {
        assert_eq!(
            PlannedAlgorithm::NWay(NWayAlgorithm::IncrementalPartialJoin { m: 12 }).label(),
            "PJ-i(m=12)"
        );
        assert_eq!(
            PlannedAlgorithm::NWay(NWayAlgorithm::PartialJoin { m: 3 }).label(),
            "PJ(m=3)"
        );
        assert_eq!(
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjY).label(),
            "B-IDJ-Y"
        );
        assert_eq!(
            PlannedAlgorithm::NWay(NWayAlgorithm::NestedLoop).label(),
            "NL"
        );
    }
}

//! # dht-engine
//!
//! The query-session engine: an [`Engine`] is built **once per graph** and
//! hands out [`Session`]s that answer streams of two-way and n-way join
//! queries while keeping all graph-lifetime walk state warm.
//!
//! The paper's algorithms are stateless — every call to a `dht-core` free
//! function rebuilds its backward columns, `Y_l⁺` tables and scratch
//! buffers from scratch.  That is the right shape for a one-shot
//! experiment, but a service answering many users against one graph keeps
//! paying for state it could reuse.  A [`Session`] owns a
//! [`dht_walks::QueryCtx`]: a scratch pool, a byte-budgeted cache of
//! backward DHT columns keyed by `(params, depth, engine, target)`, and
//! lazily built Y-bound tables keyed by `(params, depth, engine, P)` — so a
//! cache hit turns a B-BJ / B-IDJ target from an `O(d·|E_G|)` walk into a
//! shared pointer clone, and repeated-target query streams get answered at
//! memcpy speed.
//!
//! ## Concurrency model
//!
//! By default the engine owns one [`dht_walks::SharedColumnCache`] — a
//! lock-striped, byte-budgeted column cache — and every session it hands
//! out reads and writes through it.  Concurrent sessions (one per client
//! thread) therefore **warm each other**: the first session to need a
//! column pays for the walk, every later one — in any thread — clones a
//! pointer.  The engine itself is immutable and `Sync`, so `&Engine` can be
//! shared across any number of scoped threads, each opening its own
//! session; [`Engine::batch_sessions`] packages exactly that pattern for
//! query streams.  Setting [`EngineConfig::shared_cache`] to `false` falls
//! back to fully session-private caches (same byte budget each).
//!
//! Answers are **bit-identical** to the one-shot free functions at every
//! cache state, thread count and session interleaving (the repository's
//! cache-parity and concurrent-session proptests pin this): caching never
//! changes results, only how often walks actually run.
//!
//! ## Declarative queries and the planner
//!
//! Callers can hand-pick algorithms ([`Session::two_way`] /
//! [`Session::n_way`]), but the primary surface is declarative: a
//! [`QuerySpec`] says *what* to answer (node sets, query shape, aggregate,
//! `k`) and an [`AlgorithmChoice`] says whether the algorithm is `Fixed`
//! or `Auto`.  [`Session::run`] validates the spec eagerly, and for `Auto`
//! asks the cost-based planner ([`plan`]) to pick the cheapest algorithm
//! from the engine's [`GraphStats`] and the session's **live cache
//! state** — a warm backward target column is a pointer clone, so the same
//! query can plan as B-IDJ-Y on a cold session and B-BJ on a warm one.
//! [`Session::explain`] returns the reified [`QueryPlan`] (chosen
//! algorithm, per-candidate cost estimates, cache residency) without
//! running anything.  `Auto` selects within the bitwise-identical
//! backward family only (see [`plan`]), so planning — like caching —
//! never changes answers at any session count
//! (`tests/planner_parity_proptest.rs`).
//!
//! ```
//! use dht_engine::{Engine, TwoWayQuery};
//! use dht_core::twoway::TwoWayAlgorithm;
//! use dht_graph::{GraphBuilder, NodeId, NodeSet};
//!
//! let mut b = GraphBuilder::with_nodes(6);
//! for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)] {
//!     b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
//! }
//! let engine = Engine::new(b.build().unwrap());
//!
//! let p = NodeSet::new("P", [NodeId(0), NodeId(1), NodeId(2)]);
//! let q = NodeSet::new("Q", [NodeId(3), NodeId(4), NodeId(5)]);
//! let mut session = engine.session();
//! let first = session.two_way(TwoWayAlgorithm::BackwardIdjY, &p, &q, 3);
//! // A *different* session hits the engine's shared cache immediately.
//! let mut other = engine.session();
//! let again = other.two_way(TwoWayAlgorithm::BackwardIdjY, &p, &q, 3);
//! assert_eq!(first.pairs, again.pairs);
//! assert!(other.cache_stats().hits > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod plan;

use std::sync::Arc;

use dht_core::multiway::{NWayAlgorithm, NWayConfig, NWayOutput};
use dht_core::twoway::{TwoWayAlgorithm, TwoWayConfig, TwoWayOutput};
use dht_core::{Aggregate, CoreError, QueryGraph};
use dht_graph::{Graph, NodeSet};
use dht_walks::{
    CacheStats, DhtParams, Phase, QueryCtx, SharedColumnCache, SharedYTableStore, WalkEngine,
};

// The declarative query surface, re-exported so engine callers need not
// depend on `dht-core` directly.
pub use dht_core::spec::{AlgorithmChoice, NWaySpec, QuerySpec, TwoWaySpec};
pub use dht_walks::Trace;
pub use plan::{CostEstimate, GraphStats, PlanCounters, PlannedAlgorithm, QueryPlan};

/// Construction-time knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// DHT parameters (α, β, λ).
    pub params: DhtParams,
    /// Truncation depth `d` (usually chosen with Lemma 1).
    pub d: usize,
    /// Walk propagation engine; the default `Auto` self-calibrates to the
    /// graph (see `dht_walks::frontier::calibrated_switch_factor`).
    pub engine: WalkEngine,
    /// Worker threads per query: `1` serial (default), `0` all cores.
    pub threads: usize,
    /// Byte budget of the backward-column cache
    /// (`dht_walks::column_bytes` per entry).  `0` disables caching
    /// entirely.
    pub cache_bytes: usize,
    /// `true` (the default): the engine owns one cross-session
    /// [`SharedColumnCache`] of `cache_bytes` **and** one cross-session
    /// [`SharedYTableStore`], and every session reads and writes through
    /// them, so concurrent clients warm each other.  `false`: each session
    /// gets its own private caches of the same budgets.
    pub shared_cache: bool,
    /// Capacity (in tables) of the cross-session Y-bound-table store when
    /// `shared_cache` is on.  Tables are few and heavy (`O(d·|V_G|)`
    /// floats each), so the default of 16 matches the private per-session
    /// bound.
    pub y_table_capacity: usize,
}

/// Default column-cache byte budget: 64 MiB — thousands of columns on the
/// paper's graphs, a bounded sliver of memory on big ones.
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Default capacity (in tables) of the cross-session Y-bound-table store.
pub const DEFAULT_Y_TABLE_CAPACITY: usize = 16;

impl EngineConfig {
    /// The paper's experimental defaults (`DHT_λ`, `λ = 0.2`, `ε = 10⁻⁶` →
    /// `d = 8`) with a shared 64 MiB column cache.
    pub fn paper_default() -> Self {
        let params = DhtParams::paper_default();
        let d = params.depth_for_epsilon(1e-6).expect("1e-6 is valid");
        EngineConfig {
            params,
            d,
            engine: WalkEngine::default(),
            threads: 1,
            cache_bytes: DEFAULT_CACHE_BYTES,
            shared_cache: true,
            y_table_capacity: DEFAULT_Y_TABLE_CAPACITY,
        }
    }

    /// Returns a copy with different DHT parameters and depth.
    pub fn with_params(mut self, params: DhtParams, d: usize) -> Self {
        self.params = params;
        self.d = d.max(1);
        self
    }

    /// Returns a copy with a different propagation engine.
    pub fn with_engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different column-cache byte budget (`0`
    /// disables caching).
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Returns a copy selecting the cross-session shared cache (`true`) or
    /// fully session-private caches (`false`).
    pub fn with_shared_cache(mut self, shared: bool) -> Self {
        self.shared_cache = shared;
        self
    }

    /// Returns a copy with a different cross-session Y-bound-table store
    /// capacity (minimum 1; only meaningful with `shared_cache: true`).
    pub fn with_y_table_capacity(mut self, capacity: usize) -> Self {
        self.y_table_capacity = capacity.max(1);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::paper_default()
    }
}

/// One two-way query of a batch: the `k` best pairs of `p ⋈ q` under
/// `algorithm`.
///
/// Legacy fixed-algorithm struct, kept as a thin conversion into
/// [`QuerySpec`] — new code should build a [`TwoWaySpec`] (which can also
/// say [`AlgorithmChoice::Auto`]) and go through [`Session::run`].
#[derive(Debug, Clone)]
pub struct TwoWayQuery {
    /// Join algorithm to answer the query with.
    pub algorithm: TwoWayAlgorithm,
    /// Left node set `P`.
    pub p: NodeSet,
    /// Right node set `Q`.
    pub q: NodeSet,
    /// Number of pairs to return.
    pub k: usize,
}

/// One n-way query of a batch.
///
/// Legacy fixed-algorithm struct, kept as a thin conversion into
/// [`QuerySpec`] — new code should build an [`NWaySpec`].
#[derive(Debug, Clone)]
pub struct NWayQuery {
    /// Join algorithm to answer the query with.
    pub algorithm: NWayAlgorithm,
    /// Query graph over the node sets.
    pub query: QueryGraph,
    /// One node set per query-graph vertex.
    pub sets: Vec<NodeSet>,
    /// Monotone aggregate over per-edge scores.
    pub aggregate: Aggregate,
    /// Number of answers to return.
    pub k: usize,
}

/// One query of a mixed stream: two-way or n-way.
///
/// Legacy wrapper, kept as a thin conversion into [`QuerySpec`] — the
/// batch APIs ([`Engine::batch`], [`Engine::batch_sessions`]) now consume
/// specs directly; convert with `QuerySpec::from(&engine_query)`.
#[derive(Debug, Clone)]
pub enum EngineQuery {
    /// A two-way join query.
    TwoWay(TwoWayQuery),
    /// An n-way join query.
    NWay(NWayQuery),
}

impl From<&TwoWayQuery> for TwoWaySpec {
    fn from(query: &TwoWayQuery) -> Self {
        TwoWaySpec::new(query.p.clone(), query.q.clone(), query.k).with_fixed(query.algorithm)
    }
}

impl From<&NWayQuery> for NWaySpec {
    fn from(query: &NWayQuery) -> Self {
        NWaySpec::new(query.query.clone(), query.sets.clone(), query.k)
            .with_aggregate(query.aggregate)
            .with_fixed(query.algorithm)
    }
}

impl From<&EngineQuery> for QuerySpec {
    fn from(query: &EngineQuery) -> Self {
        match query {
            EngineQuery::TwoWay(q) => QuerySpec::TwoWay(TwoWaySpec::from(q)),
            EngineQuery::NWay(q) => QuerySpec::NWay(NWaySpec::from(q)),
        }
    }
}

impl From<TwoWayQuery> for QuerySpec {
    fn from(query: TwoWayQuery) -> Self {
        QuerySpec::TwoWay(TwoWaySpec::from(&query))
    }
}

impl From<NWayQuery> for QuerySpec {
    fn from(query: NWayQuery) -> Self {
        QuerySpec::NWay(NWaySpec::from(&query))
    }
}

impl From<EngineQuery> for QuerySpec {
    fn from(query: EngineQuery) -> Self {
        QuerySpec::from(&query)
    }
}

/// The answer to one [`EngineQuery`].
#[derive(Debug, Clone)]
pub enum EngineOutput {
    /// Answer to a two-way query.
    TwoWay(TwoWayOutput),
    /// Answer to an n-way query.
    NWay(NWayOutput),
}

impl EngineOutput {
    /// Number of result rows (pairs or tuples) in the answer.
    pub fn answer_count(&self) -> usize {
        match self {
            EngineOutput::TwoWay(out) => out.pairs.len(),
            EngineOutput::NWay(out) => out.answers.len(),
        }
    }
}

/// A per-graph query engine: owns the graph, the configuration every
/// session answers queries with, and (by default) the cross-session
/// [`SharedColumnCache`] those sessions warm together.
///
/// The engine is immutable and `Sync` — share `&Engine` across threads
/// freely; all per-client mutable walk state lives in the [`Session`]s it
/// hands out.
#[derive(Debug)]
pub struct Engine {
    graph: Graph,
    config: EngineConfig,
    shared: Option<Arc<SharedColumnCache>>,
    shared_y: Option<Arc<SharedYTableStore>>,
    stats: GraphStats,
    plan_counters: plan::PlanCounters,
}

impl Engine {
    /// Builds an engine over `graph` with [`EngineConfig::paper_default`].
    pub fn new(graph: Graph) -> Self {
        Engine::with_config(graph, EngineConfig::paper_default())
    }

    /// Builds an engine with an explicit configuration.
    pub fn with_config(graph: Graph, config: EngineConfig) -> Self {
        // Stripe the shared cache for this graph's column size, so even a
        // budget worth only a handful of |V_G| columns stays usable
        // instead of being slivered into shards too small to hold one.
        let shared = (config.shared_cache && config.cache_bytes > 0).then(|| {
            Arc::new(SharedColumnCache::for_columns(
                config.cache_bytes,
                graph.node_count(),
            ))
        });
        // Y-bound tables ride along with the column cache: shared-cache
        // engines share both, private-cache engines share neither.
        let shared_y = shared
            .is_some()
            .then(|| Arc::new(SharedYTableStore::with_capacity(config.y_table_capacity)));
        let stats = GraphStats::measure(&graph);
        Engine {
            graph,
            config,
            shared,
            shared_y,
            stats,
            plan_counters: plan::PlanCounters::default(),
        }
    }

    /// The graph this engine answers queries over.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The sampled graph statistics the planner prices walks from.
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Tallies of the planner's `Auto` decisions on this engine (all
    /// sessions combined) — what `STATS` / `METRICS` expose per graph.
    pub fn plan_counters(&self) -> &plan::PlanCounters {
        &self.plan_counters
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cross-session column cache, when the engine runs with one.
    pub fn shared_cache(&self) -> Option<&Arc<SharedColumnCache>> {
        self.shared.as_ref()
    }

    /// Cumulative counters of the cross-session cache (all sessions
    /// combined), when the engine runs with one.
    pub fn shared_cache_stats(&self) -> Option<CacheStats> {
        self.shared.as_ref().map(|cache| cache.stats())
    }

    /// The cross-session Y-bound-table store, when the engine runs with
    /// one (shared-cache engines only).
    pub fn shared_y_tables(&self) -> Option<&Arc<SharedYTableStore>> {
        self.shared_y.as_ref()
    }

    /// Cumulative `(hits, misses)` of the cross-session Y-table store (all
    /// sessions combined), when the engine runs with one.
    pub fn shared_y_table_stats(&self) -> Option<(u64, u64)> {
        self.shared_y.as_ref().map(|store| store.stats())
    }

    /// The two-way join configuration sessions run with.
    pub fn two_way_config(&self) -> TwoWayConfig {
        TwoWayConfig::new(self.config.params, self.config.d)
            .with_engine(self.config.engine)
            .with_threads(self.config.threads)
    }

    /// The n-way join configuration for `aggregate` and `k`.
    pub fn n_way_config(&self, aggregate: Aggregate, k: usize) -> NWayConfig {
        NWayConfig::new(self.config.params, self.config.d, aggregate, k)
            .with_engine(self.config.engine)
            .with_threads(self.config.threads)
    }

    /// Opens a fresh session: its context reads and writes the engine's
    /// shared cache (when enabled), so it starts as warm as the engine is;
    /// with `shared_cache: false` it starts cold with a private cache.
    pub fn session(&self) -> Session<'_> {
        let mut ctx = match &self.shared {
            Some(cache) => QueryCtx::shared(cache.clone()),
            None => QueryCtx::with_byte_budget(self.config.cache_bytes),
        };
        if let Some(store) = &self.shared_y {
            ctx = ctx.with_shared_y_tables(store.clone());
        }
        Session { engine: self, ctx }
    }

    /// Answers a whole stream of two-way queries on one internal session, so
    /// later queries reuse the columns earlier ones computed.  Results are
    /// in query order and bit-identical to answering each query one-shot.
    ///
    /// # Errors
    /// Fails when a query is malformed (empty node set, `k = 0`); the
    /// error carries the offending query's index
    /// ([`CoreError::AtQuery`]).
    pub fn two_way_batch(&self, queries: &[TwoWayQuery]) -> dht_core::Result<Vec<TwoWayOutput>> {
        self.session().two_way_batch(queries)
    }

    /// Answers a stream of n-way queries on one internal session.
    ///
    /// # Errors
    /// Fails when a query's graph and node sets are inconsistent; the
    /// error carries the offending query's index
    /// ([`CoreError::AtQuery`]).
    pub fn n_way_batch(&self, queries: &[NWayQuery]) -> dht_core::Result<Vec<NWayOutput>> {
        self.session().n_way_batch(queries)
    }

    /// Answers a mixed two-way / n-way spec stream on one internal
    /// session, in query order.  Specs left on `Auto` are planned per
    /// query as the session warms.
    ///
    /// # Errors
    /// Fails with the smallest-indexed malformed spec's validation error
    /// (wrapped in [`CoreError::AtQuery`]); the whole batch is validated
    /// before anything runs.
    pub fn batch(&self, specs: &[QuerySpec]) -> dht_core::Result<Vec<EngineOutput>> {
        validate_specs(specs)?;
        let mut session = self.session();
        specs
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                session
                    .run_validated(spec)
                    .map_err(|error| CoreError::at_query(index, error))
            })
            .collect()
    }

    /// Answers a mixed spec stream on `sessions` concurrent sessions —
    /// the service shape: query `i` goes to session `i % sessions`, every
    /// session runs on its own scoped thread, and all of them share the
    /// engine's cross-session cache (when enabled), warming each other.
    ///
    /// Results come back in query order and are **bit-identical** to
    /// [`Engine::batch`] at any session count: each query is answered
    /// independently and neither caching nor planning changes answers
    /// (every candidate algorithm is exact).
    ///
    /// # Errors
    /// Fails with the smallest-indexed malformed spec's validation error
    /// (deterministic regardless of scheduling: the whole batch is
    /// validated before any session starts).
    pub fn batch_sessions(
        &self,
        specs: &[QuerySpec],
        sessions: usize,
    ) -> dht_core::Result<Vec<EngineOutput>> {
        validate_specs(specs)?;
        let sessions = sessions.clamp(1, specs.len().max(1));
        if sessions == 1 {
            return self.batch(specs);
        }
        let slots: Vec<Option<dht_core::Result<EngineOutput>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sessions)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut session = self.session();
                        specs
                            .iter()
                            .enumerate()
                            .filter(|(index, _)| index % sessions == worker)
                            .map(|(index, spec)| {
                                let output = session
                                    .run_validated(spec)
                                    .map_err(|error| CoreError::at_query(index, error));
                                (index, output)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut slots: Vec<Option<dht_core::Result<EngineOutput>>> =
                (0..specs.len()).map(|_| None).collect();
            for handle in handles {
                for (index, output) in handle.join().expect("engine session worker panicked") {
                    slots[index] = Some(output);
                }
            }
            slots
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every query answered exactly once"))
            .collect()
    }
}

/// Validates every spec of a batch up front, attributing the first failure
/// to its query index.
fn validate_specs(specs: &[QuerySpec]) -> dht_core::Result<()> {
    for (index, spec) in specs.iter().enumerate() {
        spec.validate()
            .map_err(|error| CoreError::at_query(index, error))?;
    }
    Ok(())
}

/// A named fleet of [`Engine`]s behind one front end: the **graph
/// registry**.
///
/// A multi-graph `dht-server` hosts N named graphs behind one port; the
/// registry owns one engine per graph and arbitrates one **global** cache
/// byte budget across them: [`GraphRegistry::with_shared_budget`] splits
/// the configured budget into per-engine quotas proportional to graph
/// size (node count), so a small side graph cannot evict a production
/// graph's working set, and every byte of the global budget is accounted
/// for (the quotas sum exactly to it).  Each quota then behaves exactly
/// like a single-graph engine's `--cache` budget — shared across that
/// graph's sessions, striped for its column size.
///
/// Graph names are registration-ordered and looked up by exact match;
/// index `0` is the front end's default graph (the one unprefixed
/// sessions query).
#[derive(Debug)]
pub struct GraphRegistry {
    entries: Vec<(String, Engine)>,
}

impl GraphRegistry {
    /// Builds a registry over `graphs`, splitting `config.cache_bytes` as
    /// a **global** budget: engine `i` gets
    /// `cache_bytes · nodes_i / Σ nodes` (floor), with the remainder bytes
    /// going to the largest graph (first among ties), so the per-engine
    /// quotas sum exactly to the configured budget.  All other
    /// configuration knobs are shared by every engine verbatim.  A share
    /// that rounds to `0` disables that engine's shared cache — caching
    /// never changes answers, only speed.
    pub fn with_shared_budget(graphs: Vec<(String, Graph)>, config: EngineConfig) -> Self {
        let weights: Vec<u128> = graphs
            .iter()
            .map(|(_, graph)| graph.node_count().max(1) as u128)
            .collect();
        let total_weight: u128 = weights.iter().sum::<u128>().max(1);
        let mut shares: Vec<usize> = weights
            .iter()
            .map(|weight| ((config.cache_bytes as u128 * weight) / total_weight) as usize)
            .collect();
        let remainder = config.cache_bytes - shares.iter().sum::<usize>();
        if let Some(largest) = weights
            .iter()
            .enumerate()
            .max_by(|(ai, aw), (bi, bw)| aw.cmp(bw).then(bi.cmp(ai)))
            .map(|(index, _)| index)
        {
            shares[largest] += remainder;
        }
        let entries = graphs
            .into_iter()
            .zip(shares)
            .map(|((name, graph), share)| {
                let engine = Engine::with_config(graph, config.with_cache_bytes(share));
                (name, engine)
            })
            .collect();
        GraphRegistry { entries }
    }

    /// Builds a registry from already-constructed engines (no budget
    /// arbitration — each engine keeps the budget it was built with).
    pub fn from_engines(entries: Vec<(String, Engine)>) -> Self {
        GraphRegistry { entries }
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registration index of the graph named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// The name of the graph at registration index `index`.
    pub fn name(&self, index: usize) -> &str {
        &self.entries[index].0
    }

    /// The engine of the graph at registration index `index`.
    pub fn engine(&self, index: usize) -> &Engine {
        &self.entries[index].1
    }

    /// Iterates `(name, engine)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Engine)> {
        self.entries
            .iter()
            .map(|(name, engine)| (name.as_str(), engine))
    }
}

/// A query session against one [`Engine`]: owns the per-client walk state
/// (scratch pool, Y-bound tables and either a handle to the engine's
/// shared column cache or a private one) and answers queries through it.
///
/// Sessions are cheap to create and single-threaded by design — one per
/// concurrent client; queries *within* a session still fan out over
/// `EngineConfig::threads` workers, and sessions of a shared-cache engine
/// warm each other across threads.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    ctx: QueryCtx,
}

impl Session<'_> {
    /// The engine this session belongs to.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Answers one two-way query: the `k` best pairs of `p ⋈ q`.
    pub fn two_way(
        &mut self,
        algorithm: TwoWayAlgorithm,
        p: &NodeSet,
        q: &NodeSet,
        k: usize,
    ) -> TwoWayOutput {
        let config = self.engine.two_way_config();
        algorithm.top_k_with_ctx(&self.engine.graph, &config, p, q, k, &mut self.ctx)
    }

    /// Answers one n-way query.
    ///
    /// # Errors
    /// Fails when the query graph and node sets are inconsistent.
    pub fn n_way(
        &mut self,
        algorithm: NWayAlgorithm,
        query: &QueryGraph,
        sets: &[NodeSet],
        aggregate: Aggregate,
        k: usize,
    ) -> dht_core::Result<NWayOutput> {
        let config = self.engine.n_way_config(aggregate, k);
        algorithm.run_with_ctx(&self.engine.graph, &config, query, sets, &mut self.ctx)
    }

    /// The planner's view of this engine and session.
    fn plan_inputs(&self) -> plan::PlanInputs<'_> {
        plan::PlanInputs {
            graph: &self.engine.graph,
            stats: &self.engine.stats,
            params: &self.engine.config.params,
            d: self.engine.config.d,
            engine: self.engine.config.engine,
        }
    }

    /// Plans `spec` against this session's **current** cache state and
    /// returns the reified [`QueryPlan`] without running anything: the
    /// chosen algorithm, every candidate's cost estimate, and the cache
    /// residency the decision was based on.
    ///
    /// Plans are session-dependent on purpose — the same spec explains
    /// differently on a cold session and on one whose target columns are
    /// already cached (a warm backward target is a pointer clone, which
    /// flips the backward-IDJ-vs-basic tradeoff).
    ///
    /// # Errors
    /// Fails when the spec is malformed (see
    /// [`QuerySpec::validate`]).
    ///
    /// ```
    /// use dht_core::QuerySpec;
    /// use dht_engine::Engine;
    /// use dht_graph::{GraphBuilder, NodeId, NodeSet};
    ///
    /// let mut b = GraphBuilder::with_nodes(4);
    /// b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    /// b.add_undirected_edge(NodeId(1), NodeId(2), 1.0).unwrap();
    /// b.add_undirected_edge(NodeId(2), NodeId(3), 1.0).unwrap();
    /// let engine = Engine::new(b.build().unwrap());
    /// let session = engine.session();
    /// let spec = QuerySpec::two_way(
    ///     NodeSet::new("P", [NodeId(0), NodeId(1)]),
    ///     NodeSet::new("Q", [NodeId(2), NodeId(3)]),
    ///     2,
    /// );
    /// let plan = session.explain(&spec).unwrap();
    /// assert!(plan.auto);
    /// assert_eq!(plan.resident_columns, 0, "cold session");
    /// println!("{plan}"); // "choose …, warm 0/2 target columns, …"
    /// ```
    pub fn explain(&self, spec: &QuerySpec) -> dht_core::Result<QueryPlan> {
        spec.validate()?;
        let inputs = self.plan_inputs();
        Ok(match spec {
            QuerySpec::TwoWay(s) => plan::plan_two_way(&inputs, &self.ctx, s),
            QuerySpec::NWay(s) => plan::plan_n_way(&inputs, &self.ctx, s),
        })
    }

    /// Validates and answers one declarative query: `Fixed` specs run the
    /// pinned algorithm, `Auto` specs run whatever [`Session::explain`]
    /// would currently choose.  Every candidate algorithm is exact, so the
    /// choice never affects the answer — only the latency.
    ///
    /// # Errors
    /// Fails when the spec is malformed (see [`QuerySpec::validate`]).
    ///
    /// ```
    /// use dht_core::QuerySpec;
    /// use dht_engine::{Engine, EngineOutput};
    /// use dht_graph::{GraphBuilder, NodeId, NodeSet};
    ///
    /// let mut b = GraphBuilder::with_nodes(4);
    /// b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    /// b.add_undirected_edge(NodeId(1), NodeId(2), 1.0).unwrap();
    /// b.add_undirected_edge(NodeId(2), NodeId(3), 1.0).unwrap();
    /// let engine = Engine::new(b.build().unwrap());
    /// let mut session = engine.session();
    /// let spec = QuerySpec::two_way(
    ///     NodeSet::new("P", [NodeId(0), NodeId(1)]),
    ///     NodeSet::new("Q", [NodeId(2), NodeId(3)]),
    ///     2,
    /// );
    /// let EngineOutput::TwoWay(out) = session.run(&spec).unwrap() else {
    ///     unreachable!("two-way spec");
    /// };
    /// assert_eq!(out.pairs.len(), 2);
    /// ```
    pub fn run(&mut self, spec: &QuerySpec) -> dht_core::Result<EngineOutput> {
        spec.validate()?;
        self.run_validated(spec)
    }

    /// Executes an already-validated spec; the single dispatch point the
    /// batch APIs reuse after their up-front `validate_specs` pass, so
    /// nothing is validated twice.  Fixed specs dispatch directly — no
    /// residency probes, no candidate costing; that keeps pinned-algorithm
    /// batch streams exactly as cheap as the pre-spec `answer` path.  Only
    /// `Auto` pays planning.
    fn run_validated(&mut self, spec: &QuerySpec) -> dht_core::Result<EngineOutput> {
        match spec {
            QuerySpec::TwoWay(s) => {
                let algorithm = match s.algorithm {
                    AlgorithmChoice::Fixed(algorithm) => algorithm,
                    AlgorithmChoice::Auto => {
                        let started = self.ctx.trace().begin();
                        let inputs = self.plan_inputs();
                        let plan = plan::plan_two_way(&inputs, &self.ctx, s);
                        self.ctx.trace().finish(started, Phase::Plan);
                        self.engine.plan_counters.record(&plan);
                        plan.chosen
                            .two_way()
                            .expect("two-way plans choose two-way algorithms")
                    }
                };
                let started = self.ctx.trace().begin();
                let output = self.two_way(algorithm, &s.p, &s.q, s.k);
                self.ctx.trace().finish(started, Phase::Join);
                Ok(EngineOutput::TwoWay(output))
            }
            QuerySpec::NWay(s) => {
                let algorithm = match s.algorithm {
                    AlgorithmChoice::Fixed(algorithm) => algorithm,
                    AlgorithmChoice::Auto => {
                        let started = self.ctx.trace().begin();
                        let inputs = self.plan_inputs();
                        let plan = plan::plan_n_way(&inputs, &self.ctx, s);
                        self.ctx.trace().finish(started, Phase::Plan);
                        self.engine.plan_counters.record(&plan);
                        plan.chosen
                            .n_way()
                            .expect("n-way plans choose n-way algorithms")
                    }
                };
                let started = self.ctx.trace().begin();
                let output = self.n_way(algorithm, &s.query, &s.sets, s.aggregate, s.k)?;
                self.ctx.trace().finish(started, Phase::Join);
                Ok(EngineOutput::NWay(output))
            }
        }
    }

    /// Like [`Session::run`], but also returns the full [`QueryPlan`] the
    /// execution followed — including, for `Fixed` specs, the cost
    /// estimates and cache residency of every candidate (with
    /// `auto: false`).  This is what `dht querystream --explain 1` prints.
    /// Unlike [`Session::run`], pinned specs pay the planning cost too, so
    /// prefer `run` on hot paths that don't need the report.
    ///
    /// # Errors
    /// Fails when the spec is malformed.
    pub fn run_with_plan(
        &mut self,
        spec: &QuerySpec,
    ) -> dht_core::Result<(QueryPlan, EngineOutput)> {
        let started = self.ctx.trace().begin();
        let plan = self.explain(spec)?;
        self.ctx.trace().finish(started, Phase::Plan);
        if plan.auto {
            self.engine.plan_counters.record(&plan);
        }
        let started = self.ctx.trace().begin();
        let output = match (spec, &plan.chosen) {
            (QuerySpec::TwoWay(s), PlannedAlgorithm::TwoWay(algorithm)) => {
                EngineOutput::TwoWay(self.two_way(*algorithm, &s.p, &s.q, s.k))
            }
            (QuerySpec::NWay(s), PlannedAlgorithm::NWay(algorithm)) => {
                EngineOutput::NWay(self.n_way(*algorithm, &s.query, &s.sets, s.aggregate, s.k)?)
            }
            _ => unreachable!("the planner never changes a query's arity"),
        };
        self.ctx.trace().finish(started, Phase::Join);
        Ok((plan, output))
    }

    /// Answers one query of a mixed stream.
    ///
    /// Legacy entry point for [`EngineQuery`]; prefer [`Session::run`]
    /// with a [`QuerySpec`].
    ///
    /// # Errors
    /// Fails when an n-way query's graph and node sets are inconsistent.
    pub fn answer(&mut self, query: &EngineQuery) -> dht_core::Result<EngineOutput> {
        match query {
            EngineQuery::TwoWay(q) => Ok(EngineOutput::TwoWay(self.two_way(
                q.algorithm,
                &q.p,
                &q.q,
                q.k,
            ))),
            EngineQuery::NWay(q) => Ok(EngineOutput::NWay(self.n_way(
                q.algorithm,
                &q.query,
                &q.sets,
                q.aggregate,
                q.k,
            )?)),
        }
    }

    /// Answers a stream of two-way queries in order on this session's warm
    /// state.
    ///
    /// # Errors
    /// Fails when a query is malformed (empty node set, `k = 0`); the
    /// error names the offending query's index ([`CoreError::AtQuery`]),
    /// and the whole batch is validated before anything runs.
    pub fn two_way_batch(
        &mut self,
        queries: &[TwoWayQuery],
    ) -> dht_core::Result<Vec<TwoWayOutput>> {
        for (index, query) in queries.iter().enumerate() {
            dht_core::spec::validate_two_way_inputs(&query.p, &query.q, query.k)
                .map_err(|error| CoreError::at_query(index, error))?;
        }
        Ok(queries
            .iter()
            .map(|query| self.two_way(query.algorithm, &query.p, &query.q, query.k))
            .collect())
    }

    /// Answers a stream of n-way queries in order on this session's warm
    /// state.
    ///
    /// # Errors
    /// Fails when a query's graph and node sets are inconsistent; the
    /// error names the offending query's index ([`CoreError::AtQuery`]),
    /// and the whole batch is validated before anything runs.
    pub fn n_way_batch(&mut self, queries: &[NWayQuery]) -> dht_core::Result<Vec<NWayOutput>> {
        for (index, query) in queries.iter().enumerate() {
            dht_core::spec::validate_n_way_inputs(
                &query.query,
                &query.sets,
                query.k,
                &AlgorithmChoice::Fixed(query.algorithm),
            )
            .map_err(|error| CoreError::at_query(index, error))?;
        }
        queries
            .iter()
            .enumerate()
            .map(|(index, query)| {
                self.n_way(
                    query.algorithm,
                    &query.query,
                    &query.sets,
                    query.aggregate,
                    query.k,
                )
                .map_err(|error| CoreError::at_query(index, error))
            })
            .collect()
    }

    /// Cumulative backward-column cache counters **as seen by this
    /// session**: on a shared-cache engine these count this session's
    /// lookups (evictions are engine-global — see
    /// [`Engine::shared_cache_stats`]); on a private-cache engine they are
    /// the private cache's own counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.column_stats()
    }

    /// `(hits, misses)` of this session's Y-bound-table cache.
    pub fn y_table_stats(&self) -> (u64, u64) {
        self.ctx.y_table_stats()
    }

    /// Drops the cached columns and tables this session can reach
    /// (allocations and counters are kept).  On a shared-cache engine this
    /// clears the **engine-wide** cache: every session sees the drop.
    pub fn clear_cache(&mut self) {
        self.ctx.clear();
    }

    /// Direct access to the underlying context, for callers composing with
    /// the `*_with_ctx` entry points of `dht-core` / `dht-measures`.
    pub fn ctx_mut(&mut self) -> &mut QueryCtx {
        &mut self.ctx
    }

    /// Enables or disables per-query trace spans on this session,
    /// clearing any recorded timings.  Tracing only reads clocks and bumps
    /// counters — answers are bit-identical either way.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.ctx.trace_mut().set_enabled(enabled);
    }

    /// The phase timings recorded since tracing was enabled (or last
    /// [`Session::reset_trace`]).  Disabled traces report all zeros.
    pub fn trace(&self) -> &Trace {
        self.ctx.trace()
    }

    /// Zeroes the recorded phase timings, keeping tracing enabled —
    /// called between queries so each `# trace:` line covers one query.
    pub fn reset_trace(&mut self) {
        self.ctx.trace_mut().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::generators::{planted_partition, PlantedPartitionConfig};
    use dht_graph::NodeId;

    fn fixture() -> (Graph, Vec<NodeSet>) {
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 3,
            community_size: 16,
            avg_internal_degree: 5.0,
            avg_external_degree: 1.5,
            weighted: true,
            seed: 2014,
        });
        (cg.graph, cg.communities)
    }

    #[test]
    fn engine_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Engine>();
        assert_sync_send::<GraphRegistry>();
    }

    #[test]
    fn registry_splits_the_global_cache_budget_proportionally() {
        let (big, _) = fixture(); // 48 nodes
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 2,
            community_size: 8,
            avg_internal_degree: 3.0,
            avg_external_degree: 1.0,
            weighted: true,
            seed: 7,
        });
        let small = cg.graph; // 16 nodes
        let budget = 1 << 20;
        let config = EngineConfig::paper_default().with_cache_bytes(budget);
        let registry = GraphRegistry::with_shared_budget(
            vec![("big".into(), big), ("small".into(), small)],
            config,
        );
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
        assert_eq!(registry.index_of("big"), Some(0));
        assert_eq!(registry.index_of("small"), Some(1));
        assert_eq!(registry.index_of("absent"), None);
        assert_eq!(registry.name(1), "small");
        let shares: Vec<usize> = registry
            .iter()
            .map(|(_, engine)| engine.config().cache_bytes)
            .collect();
        assert_eq!(
            shares.iter().sum::<usize>(),
            budget,
            "quotas account for every byte of the global budget"
        );
        assert!(
            shares[0] > shares[1],
            "the larger graph gets the larger quota: {shares:?}"
        );
        // 48:16 nodes → a 3:1 split, up to the remainder byte.
        assert_eq!(shares[1], budget / 4);
        // Every engine still runs a shared cache of its own quota.
        assert!(registry.engine(0).shared_cache().is_some());
        assert!(registry.engine(1).shared_cache().is_some());
        // Non-budget knobs are shared verbatim.
        assert_eq!(registry.engine(1).config().d, config.d);
    }

    #[test]
    fn registry_from_engines_keeps_budgets_and_answers_by_name() {
        let (graph, sets) = fixture();
        let single = Engine::new(graph);
        let expected =
            single
                .session()
                .two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 5);
        let registry = GraphRegistry::from_engines(vec![("default".into(), single)]);
        assert_eq!(
            registry.engine(0).config().cache_bytes,
            DEFAULT_CACHE_BYTES,
            "from_engines does not re-arbitrate budgets"
        );
        let index = registry.index_of("default").unwrap();
        let again = registry.engine(index).session().two_way(
            TwoWayAlgorithm::BackwardIdjY,
            &sets[0],
            &sets[1],
            5,
        );
        assert_eq!(expected.pairs, again.pairs);
    }

    #[test]
    fn session_answers_match_one_shot_calls_for_every_algorithm() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let config = engine.two_way_config();
        for algorithm in TwoWayAlgorithm::ALL {
            for _ in 0..2 {
                let warm = session.two_way(algorithm, &sets[0], &sets[1], 7);
                let cold = algorithm.top_k(engine.graph(), &config, &sets[0], &sets[1], 7);
                assert_eq!(warm.pairs, cold.pairs, "{}", algorithm.name());
            }
        }
        assert!(session.cache_stats().hits > 0, "repeats must hit the cache");
    }

    #[test]
    fn n_way_sessions_match_one_shot_calls() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let query = QueryGraph::chain(3);
        for algorithm in [
            NWayAlgorithm::AllPairs,
            NWayAlgorithm::PartialJoin { m: 5 },
            NWayAlgorithm::IncrementalPartialJoin { m: 5 },
        ] {
            let warm = session
                .n_way(algorithm, &query, &sets, Aggregate::Min, 5)
                .unwrap();
            let config = engine.n_way_config(Aggregate::Min, 5);
            let cold = algorithm
                .run(engine.graph(), &config, &query, &sets)
                .unwrap();
            assert_eq!(warm.answers, cold.answers, "{}", algorithm.name());
        }
    }

    #[test]
    fn concurrent_sessions_warm_each_other_through_the_shared_cache() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        // Warm the engine from one session...
        let first = engine
            .session()
            .two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[2], 5);
        // ...then answer the same query from four concurrent sessions: all
        // of them must hit the shared cache and agree bitwise.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = &engine;
                let first = &first;
                let sets = &sets;
                scope.spawn(move || {
                    let mut session = engine.session();
                    let again =
                        session.two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[2], 5);
                    assert_eq!(&again.pairs, &first.pairs);
                    assert_eq!(
                        session.cache_stats().misses,
                        0,
                        "every column must come from the shared cache"
                    );
                });
            }
        });
        let stats = engine.shared_cache_stats().expect("shared cache on");
        assert_eq!(stats.misses, sets[2].len() as u64);
        assert_eq!(stats.hits, 4 * sets[2].len() as u64);
    }

    #[test]
    fn batches_reuse_the_warm_cache_across_queries() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let queries: Vec<TwoWayQuery> = (0..6)
            .map(|i| TwoWayQuery {
                algorithm: TwoWayAlgorithm::BackwardBasic,
                p: sets[i % 2].clone(),
                q: sets[2].clone(), // every query shares the same targets
                k: 5,
            })
            .collect();
        let mut session = engine.session();
        let outputs = session.two_way_batch(&queries).unwrap();
        assert_eq!(outputs.len(), queries.len());
        let stats = session.cache_stats();
        // |Q| misses on the first query, hits from then on.
        assert_eq!(stats.misses, sets[2].len() as u64);
        assert_eq!(stats.hits, 5 * sets[2].len() as u64);
        // engine-level batch produces the same outputs (served from the
        // now-warm shared cache)
        let again = engine.two_way_batch(&queries).unwrap();
        for (a, b) in outputs.iter().zip(again.iter()) {
            assert_eq!(a.pairs, b.pairs);
        }
    }

    #[test]
    fn batch_validation_errors_carry_the_query_index() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let queries = vec![
            TwoWayQuery {
                algorithm: TwoWayAlgorithm::BackwardBasic,
                p: sets[0].clone(),
                q: sets[1].clone(),
                k: 3,
            },
            TwoWayQuery {
                algorithm: TwoWayAlgorithm::BackwardBasic,
                p: NodeSet::empty("P"),
                q: sets[1].clone(),
                k: 3,
            },
        ];
        let error = engine.two_way_batch(&queries).unwrap_err();
        assert!(
            matches!(error, CoreError::AtQuery { index: 1, .. }),
            "{error}"
        );
        assert!(error.to_string().contains("query #1"), "{error}");

        let n_way = vec![NWayQuery {
            algorithm: NWayAlgorithm::AllPairs,
            query: QueryGraph::chain(4),
            sets: sets.clone(),
            aggregate: Aggregate::Min,
            k: 3,
        }];
        let error = engine.n_way_batch(&n_way).unwrap_err();
        assert!(
            matches!(error, CoreError::AtQuery { index: 0, .. }),
            "{error}"
        );
    }

    #[test]
    fn batch_sessions_matches_single_session_batches() {
        let (graph, sets) = fixture();
        let query_graph = QueryGraph::chain(3);
        let mut queries: Vec<EngineQuery> = Vec::new();
        for round in 0..3 {
            for (i, j) in [(0usize, 2usize), (1, 2), (0, 1)] {
                queries.push(EngineQuery::TwoWay(TwoWayQuery {
                    algorithm: if round % 2 == 0 {
                        TwoWayAlgorithm::BackwardBasic
                    } else {
                        TwoWayAlgorithm::BackwardIdjY
                    },
                    p: sets[i].clone(),
                    q: sets[j].clone(),
                    k: 5,
                }));
            }
            queries.push(EngineQuery::NWay(NWayQuery {
                algorithm: NWayAlgorithm::AllPairs,
                query: query_graph.clone(),
                sets: sets.clone(),
                aggregate: Aggregate::Min,
                k: 4,
            }));
        }
        // Mix in an Auto spec so the planner runs under concurrency too.
        let mut queries: Vec<QuerySpec> = queries.iter().map(QuerySpec::from).collect();
        queries.push(QuerySpec::two_way(sets[0].clone(), sets[2].clone(), 5));
        for shared in [true, false] {
            let engine = Engine::with_config(
                graph.clone(),
                EngineConfig::paper_default().with_shared_cache(shared),
            );
            let reference = engine.batch(&queries).unwrap();
            for sessions in [2usize, 4] {
                let concurrent = engine.batch_sessions(&queries, sessions).unwrap();
                assert_eq!(reference.len(), concurrent.len());
                for (index, (a, b)) in reference.iter().zip(concurrent.iter()).enumerate() {
                    match (a, b) {
                        (EngineOutput::TwoWay(x), EngineOutput::TwoWay(y)) => {
                            assert_eq!(x.pairs, y.pairs, "query {index} sessions={sessions}");
                        }
                        (EngineOutput::NWay(x), EngineOutput::NWay(y)) => {
                            assert_eq!(x.answers, y.answers, "query {index} sessions={sessions}");
                        }
                        _ => panic!("output kind changed for query {index}"),
                    }
                }
            }
        }
    }

    #[test]
    fn batch_sessions_reports_the_first_error_deterministically() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        // Query 1 is malformed (three sets on a 4-vertex query graph).
        let queries = vec![
            QuerySpec::from(EngineQuery::TwoWay(TwoWayQuery {
                algorithm: TwoWayAlgorithm::BackwardBasic,
                p: sets[0].clone(),
                q: sets[1].clone(),
                k: 3,
            })),
            QuerySpec::from(EngineQuery::NWay(NWayQuery {
                algorithm: NWayAlgorithm::AllPairs,
                query: QueryGraph::chain(4),
                sets: sets.clone(),
                aggregate: Aggregate::Min,
                k: 3,
            })),
        ];
        for sessions in [1usize, 2] {
            let error = engine.batch_sessions(&queries, sessions).unwrap_err();
            assert!(
                matches!(error, CoreError::AtQuery { index: 1, .. }),
                "sessions={sessions}: {error}"
            );
        }
    }

    #[test]
    fn explain_flips_from_idj_to_basic_as_target_columns_warm() {
        // The documented warmth scenario: on a cold session the planner
        // picks B-IDJ-Y (pruning saves most of the per-target walk work);
        // once the targets' backward columns are resident, the bound
        // machinery is pure overhead and the same spec plans as B-BJ.
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let spec = QuerySpec::two_way(sets[0].clone(), sets[1].clone(), 5);

        let cold = session.explain(&spec).unwrap();
        assert!(cold.auto);
        assert_eq!(cold.resident_columns, 0);
        assert_eq!(cold.probed_columns, sets[1].len());
        assert_eq!(
            cold.chosen,
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardIdjY),
            "cold plan: {cold}"
        );

        // Warm every target column at full depth, then re-explain.
        session.two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[1], 5);
        let warm = session.explain(&spec).unwrap();
        assert_eq!(warm.resident_columns, sets[1].len(), "warm plan: {warm}");
        assert_eq!(
            warm.chosen,
            PlannedAlgorithm::TwoWay(TwoWayAlgorithm::BackwardBasic),
            "warm plan: {warm}"
        );
        assert!(warm.expected_cache_hits() > 0);
        assert!(warm.estimated_cost() < cold.estimated_cost());

        // And the answers are identical either way (the planner only moves
        // latency, never results).
        let auto_out = session.run(&spec).unwrap();
        let fixed_out = session.run(&QuerySpec::TwoWay(
            TwoWaySpec::new(sets[0].clone(), sets[1].clone(), 5)
                .with_fixed(TwoWayAlgorithm::BackwardIdjY),
        ));
        match (auto_out, fixed_out.unwrap()) {
            (EngineOutput::TwoWay(a), EngineOutput::TwoWay(b)) => {
                assert_eq!(a.pairs, b.pairs);
            }
            _ => unreachable!("two-way specs"),
        }
    }

    #[test]
    fn auto_n_way_specs_plan_and_run() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let spec = QuerySpec::n_way(QueryGraph::chain(3), sets.clone(), 4);
        let (plan, output) = session.run_with_plan(&spec).unwrap();
        assert!(plan.auto);
        let chosen = plan.chosen.n_way().expect("n-way plan");
        // The planner must prefer an incremental partial join over the NL
        // baseline on a non-trivial product.
        assert!(
            matches!(chosen, NWayAlgorithm::IncrementalPartialJoin { .. }),
            "{plan}"
        );
        // Bit-identical to the pinned run of the same algorithm.
        let fixed = session
            .n_way(chosen, &QueryGraph::chain(3), &sets, Aggregate::Min, 4)
            .unwrap();
        match output {
            EngineOutput::NWay(out) => assert_eq!(out.answers, fixed.answers),
            EngineOutput::TwoWay(_) => unreachable!("n-way spec"),
        }
    }

    #[test]
    fn run_rejects_malformed_specs_before_touching_the_graph() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let empty = QuerySpec::two_way(NodeSet::empty("P"), sets[0].clone(), 3);
        assert!(matches!(
            session.run(&empty).unwrap_err(),
            CoreError::EmptyNodeSet(_)
        ));
        assert!(matches!(
            session.explain(&empty).unwrap_err(),
            CoreError::EmptyNodeSet(_)
        ));
        let zero_k = QuerySpec::two_way(sets[0].clone(), sets[1].clone(), 0);
        assert!(matches!(
            session.run(&zero_k).unwrap_err(),
            CoreError::ZeroResultSize
        ));
    }

    #[test]
    fn y_tables_are_shared_across_repeated_bidj_y_queries() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        for _ in 0..3 {
            session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 4);
        }
        let (hits, misses) = session.y_table_stats();
        assert_eq!(misses, 1, "one build for three identical queries");
        assert_eq!(hits, 2);
    }

    #[test]
    fn y_tables_are_shared_across_sessions_on_a_shared_cache_engine() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph.clone());
        // The first session pays for the table...
        let first = engine
            .session()
            .two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 4);
        assert_eq!(engine.shared_y_table_stats(), Some((0, 1)));
        // ...and concurrent later sessions hit it, answering identically.
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let engine = &engine;
                let sets = &sets;
                let first = &first;
                scope.spawn(move || {
                    let mut session = engine.session();
                    let again =
                        session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 4);
                    assert_eq!(again.pairs, first.pairs);
                    assert_eq!(session.y_table_stats(), (1, 0), "table came from the store");
                });
            }
        });
        assert_eq!(engine.shared_y_table_stats(), Some((3, 1)));

        // A private-cache engine keeps Y tables session-private: the second
        // session rebuilds (answers still identical).
        let private = Engine::with_config(
            graph,
            EngineConfig::paper_default().with_shared_cache(false),
        );
        assert!(private.shared_y_tables().is_none());
        private
            .session()
            .two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 4);
        let mut second = private.session();
        let again = second.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 4);
        assert_eq!(again.pairs, first.pairs);
        assert_eq!(second.y_table_stats(), (0, 1), "private sessions rebuild");
    }

    #[test]
    fn disabled_cache_still_answers_correctly() {
        let (graph, sets) = fixture();
        let config = EngineConfig::paper_default().with_cache_bytes(0);
        let engine = Engine::with_config(graph, config);
        assert!(engine.shared_cache().is_none());
        let mut session = engine.session();
        let a = session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 5);
        let b = session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 5);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(session.cache_stats().hits, 0);
    }

    #[test]
    fn clear_cache_forces_recomputation() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        session.two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[1], 5);
        let misses_before = session.cache_stats().misses;
        session.clear_cache();
        session.two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[1], 5);
        assert_eq!(session.cache_stats().misses, 2 * misses_before);
    }

    #[test]
    fn config_builders_compose() {
        let config = EngineConfig::paper_default()
            .with_params(DhtParams::dht_e(), 6)
            .with_engine(WalkEngine::Dense)
            .with_threads(4)
            .with_cache_bytes(1 << 16)
            .with_shared_cache(false)
            .with_y_table_capacity(0);
        assert_eq!(config.d, 6);
        assert_eq!(config.engine, WalkEngine::Dense);
        assert_eq!(config.threads, 4);
        assert_eq!(config.cache_bytes, 1 << 16);
        assert!(!config.shared_cache);
        assert_eq!(config.y_table_capacity, 1, "clamped to at least one");
        let mut b = dht_graph::GraphBuilder::with_nodes(2);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        let engine = Engine::with_config(b.build().unwrap(), config);
        assert!(engine.shared_cache().is_none(), "private caches requested");
        assert_eq!(engine.two_way_config().d, 6);
        assert_eq!(engine.n_way_config(Aggregate::Sum, 3).k, 3);
    }
}

//! # dht-engine
//!
//! The query-session engine: an [`Engine`] is built **once per graph** and
//! hands out [`Session`]s that answer streams of two-way and n-way join
//! queries while keeping all graph-lifetime walk state warm.
//!
//! The paper's algorithms are stateless — every call to a `dht-core` free
//! function rebuilds its backward columns, `Y_l⁺` tables and scratch
//! buffers from scratch.  That is the right shape for a one-shot
//! experiment, but a service answering many users against one graph keeps
//! paying for state it could reuse.  A [`Session`] owns a
//! [`dht_walks::QueryCtx`]: a scratch pool, an LRU cache of backward DHT
//! columns keyed by `(params, depth, engine, target)`, and lazily built
//! Y-bound tables keyed by `(params, depth, engine, P)` — so a cache hit
//! turns a B-BJ / B-IDJ target from an `O(d·|E_G|)` walk into a shared
//! pointer clone, and repeated-target query streams get answered at
//! memcpy speed.
//!
//! Answers are **bit-identical** to the one-shot free functions at every
//! cache state (the repository's cache-parity proptest pins this): caching
//! never changes results, only how often walks actually run.
//!
//! ```
//! use dht_engine::{Engine, TwoWayQuery};
//! use dht_core::twoway::TwoWayAlgorithm;
//! use dht_graph::{GraphBuilder, NodeId, NodeSet};
//!
//! let mut b = GraphBuilder::with_nodes(6);
//! for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)] {
//!     b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
//! }
//! let engine = Engine::new(b.build().unwrap());
//!
//! let p = NodeSet::new("P", [NodeId(0), NodeId(1), NodeId(2)]);
//! let q = NodeSet::new("Q", [NodeId(3), NodeId(4), NodeId(5)]);
//! let mut session = engine.session();
//! let first = session.two_way(TwoWayAlgorithm::BackwardIdjY, &p, &q, 3);
//! let again = session.two_way(TwoWayAlgorithm::BackwardIdjY, &p, &q, 3);
//! assert_eq!(first.pairs, again.pairs); // second answer came from the warm cache
//! assert!(session.cache_stats().hits > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use dht_core::multiway::{NWayAlgorithm, NWayConfig, NWayOutput};
use dht_core::twoway::{TwoWayAlgorithm, TwoWayConfig, TwoWayOutput};
use dht_core::{Aggregate, QueryGraph};
use dht_graph::{Graph, NodeSet};
use dht_walks::{CacheStats, DhtParams, QueryCtx, WalkEngine};

/// Construction-time knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// DHT parameters (α, β, λ).
    pub params: DhtParams,
    /// Truncation depth `d` (usually chosen with Lemma 1).
    pub d: usize,
    /// Walk propagation engine; the default `Auto` self-calibrates to the
    /// graph (see `dht_walks::frontier::calibrated_switch_factor`).
    pub engine: WalkEngine,
    /// Worker threads per query: `1` serial (default), `0` all cores.
    pub threads: usize,
    /// Capacity of each session's backward-column LRU cache, in columns
    /// (each `|V_G|` doubles).  `0` disables caching entirely.
    pub column_cache_capacity: usize,
}

impl EngineConfig {
    /// The paper's experimental defaults (`DHT_λ`, `λ = 0.2`, `ε = 10⁻⁶` →
    /// `d = 8`) with a 512-column session cache.
    pub fn paper_default() -> Self {
        let params = DhtParams::paper_default();
        let d = params.depth_for_epsilon(1e-6).expect("1e-6 is valid");
        EngineConfig {
            params,
            d,
            engine: WalkEngine::default(),
            threads: 1,
            column_cache_capacity: 512,
        }
    }

    /// Returns a copy with different DHT parameters and depth.
    pub fn with_params(mut self, params: DhtParams, d: usize) -> Self {
        self.params = params;
        self.d = d.max(1);
        self
    }

    /// Returns a copy with a different propagation engine.
    pub fn with_engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different column-cache capacity (`0` disables
    /// caching).
    pub fn with_column_cache_capacity(mut self, capacity: usize) -> Self {
        self.column_cache_capacity = capacity;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::paper_default()
    }
}

/// One two-way query of a batch: the `k` best pairs of `p ⋈ q` under
/// `algorithm`.
#[derive(Debug, Clone)]
pub struct TwoWayQuery {
    /// Join algorithm to answer the query with.
    pub algorithm: TwoWayAlgorithm,
    /// Left node set `P`.
    pub p: NodeSet,
    /// Right node set `Q`.
    pub q: NodeSet,
    /// Number of pairs to return.
    pub k: usize,
}

/// One n-way query of a batch.
#[derive(Debug, Clone)]
pub struct NWayQuery {
    /// Join algorithm to answer the query with.
    pub algorithm: NWayAlgorithm,
    /// Query graph over the node sets.
    pub query: QueryGraph,
    /// One node set per query-graph vertex.
    pub sets: Vec<NodeSet>,
    /// Monotone aggregate over per-edge scores.
    pub aggregate: Aggregate,
    /// Number of answers to return.
    pub k: usize,
}

/// A per-graph query engine: owns the graph and the configuration every
/// session answers queries with.
///
/// The engine itself is immutable (and therefore freely shareable by
/// reference across threads); all mutable walk state lives in the
/// [`Session`]s it hands out.
#[derive(Debug)]
pub struct Engine {
    graph: Graph,
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine over `graph` with [`EngineConfig::paper_default`].
    pub fn new(graph: Graph) -> Self {
        Engine::with_config(graph, EngineConfig::paper_default())
    }

    /// Builds an engine with an explicit configuration.
    pub fn with_config(graph: Graph, config: EngineConfig) -> Self {
        Engine { graph, config }
    }

    /// The graph this engine answers queries over.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The two-way join configuration sessions run with.
    pub fn two_way_config(&self) -> TwoWayConfig {
        TwoWayConfig::new(self.config.params, self.config.d)
            .with_engine(self.config.engine)
            .with_threads(self.config.threads)
    }

    /// The n-way join configuration for `aggregate` and `k`.
    pub fn n_way_config(&self, aggregate: Aggregate, k: usize) -> NWayConfig {
        NWayConfig::new(self.config.params, self.config.d, aggregate, k)
            .with_engine(self.config.engine)
            .with_threads(self.config.threads)
    }

    /// Opens a fresh session (cold caches, empty scratch pool).
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            ctx: QueryCtx::with_capacity(self.config.column_cache_capacity),
        }
    }

    /// Answers a whole stream of two-way queries on one internal session, so
    /// later queries reuse the columns earlier ones computed.  Results are
    /// in query order and bit-identical to answering each query one-shot.
    pub fn two_way_batch(&self, queries: &[TwoWayQuery]) -> Vec<TwoWayOutput> {
        self.session().two_way_batch(queries)
    }

    /// Answers a stream of n-way queries on one internal session.
    ///
    /// # Errors
    /// Fails on the first query whose query graph and node sets are
    /// inconsistent (see [`NWayAlgorithm::run`]).
    pub fn n_way_batch(&self, queries: &[NWayQuery]) -> dht_core::Result<Vec<NWayOutput>> {
        self.session().n_way_batch(queries)
    }
}

/// A query session against one [`Engine`]: owns the warm walk state
/// (scratch pool, backward-column LRU, Y-bound tables) and answers queries
/// through it.
///
/// Sessions are cheap to create and single-threaded by design — one per
/// concurrent client; queries *within* a session still fan out over
/// `EngineConfig::threads` workers.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    ctx: QueryCtx,
}

impl Session<'_> {
    /// The engine this session belongs to.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Answers one two-way query: the `k` best pairs of `p ⋈ q`.
    pub fn two_way(
        &mut self,
        algorithm: TwoWayAlgorithm,
        p: &NodeSet,
        q: &NodeSet,
        k: usize,
    ) -> TwoWayOutput {
        let config = self.engine.two_way_config();
        algorithm.top_k_with_ctx(&self.engine.graph, &config, p, q, k, &mut self.ctx)
    }

    /// Answers one n-way query.
    ///
    /// # Errors
    /// Fails when the query graph and node sets are inconsistent.
    pub fn n_way(
        &mut self,
        algorithm: NWayAlgorithm,
        query: &QueryGraph,
        sets: &[NodeSet],
        aggregate: Aggregate,
        k: usize,
    ) -> dht_core::Result<NWayOutput> {
        let config = self.engine.n_way_config(aggregate, k);
        algorithm.run_with_ctx(&self.engine.graph, &config, query, sets, &mut self.ctx)
    }

    /// Answers a stream of two-way queries in order on this session's warm
    /// state.
    pub fn two_way_batch(&mut self, queries: &[TwoWayQuery]) -> Vec<TwoWayOutput> {
        queries
            .iter()
            .map(|query| self.two_way(query.algorithm, &query.p, &query.q, query.k))
            .collect()
    }

    /// Answers a stream of n-way queries in order on this session's warm
    /// state.
    ///
    /// # Errors
    /// Fails on the first inconsistent query.
    pub fn n_way_batch(&mut self, queries: &[NWayQuery]) -> dht_core::Result<Vec<NWayOutput>> {
        queries
            .iter()
            .map(|query| {
                self.n_way(
                    query.algorithm,
                    &query.query,
                    &query.sets,
                    query.aggregate,
                    query.k,
                )
            })
            .collect()
    }

    /// Cumulative backward-column cache counters of this session.
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.column_stats()
    }

    /// `(hits, misses)` of this session's Y-bound-table cache.
    pub fn y_table_stats(&self) -> (u64, u64) {
        self.ctx.y_table_stats()
    }

    /// Drops the session's cached columns and tables (allocations and
    /// counters are kept).
    pub fn clear_cache(&mut self) {
        self.ctx.clear();
    }

    /// Direct access to the underlying context, for callers composing with
    /// the `*_with_ctx` entry points of `dht-core` / `dht-measures`.
    pub fn ctx_mut(&mut self) -> &mut QueryCtx {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::generators::{planted_partition, PlantedPartitionConfig};
    use dht_graph::NodeId;

    fn fixture() -> (Graph, Vec<NodeSet>) {
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 3,
            community_size: 16,
            avg_internal_degree: 5.0,
            avg_external_degree: 1.5,
            weighted: true,
            seed: 2014,
        });
        (cg.graph, cg.communities)
    }

    #[test]
    fn session_answers_match_one_shot_calls_for_every_algorithm() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let config = engine.two_way_config();
        for algorithm in TwoWayAlgorithm::ALL {
            for _ in 0..2 {
                let warm = session.two_way(algorithm, &sets[0], &sets[1], 7);
                let cold = algorithm.top_k(engine.graph(), &config, &sets[0], &sets[1], 7);
                assert_eq!(warm.pairs, cold.pairs, "{}", algorithm.name());
            }
        }
        assert!(session.cache_stats().hits > 0, "repeats must hit the cache");
    }

    #[test]
    fn n_way_sessions_match_one_shot_calls() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        let query = QueryGraph::chain(3);
        for algorithm in [
            NWayAlgorithm::AllPairs,
            NWayAlgorithm::PartialJoin { m: 5 },
            NWayAlgorithm::IncrementalPartialJoin { m: 5 },
        ] {
            let warm = session
                .n_way(algorithm, &query, &sets, Aggregate::Min, 5)
                .unwrap();
            let config = engine.n_way_config(Aggregate::Min, 5);
            let cold = algorithm
                .run(engine.graph(), &config, &query, &sets)
                .unwrap();
            assert_eq!(warm.answers, cold.answers, "{}", algorithm.name());
        }
    }

    #[test]
    fn batches_reuse_the_warm_cache_across_queries() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let queries: Vec<TwoWayQuery> = (0..6)
            .map(|i| TwoWayQuery {
                algorithm: TwoWayAlgorithm::BackwardBasic,
                p: sets[i % 2].clone(),
                q: sets[2].clone(), // every query shares the same targets
                k: 5,
            })
            .collect();
        let mut session = engine.session();
        let outputs = session.two_way_batch(&queries);
        assert_eq!(outputs.len(), queries.len());
        let stats = session.cache_stats();
        // |Q| misses on the first query, hits from then on.
        assert_eq!(stats.misses, sets[2].len() as u64);
        assert_eq!(stats.hits, 5 * sets[2].len() as u64);
        // engine-level batch produces the same outputs on a fresh session
        let again = engine.two_way_batch(&queries);
        for (a, b) in outputs.iter().zip(again.iter()) {
            assert_eq!(a.pairs, b.pairs);
        }
    }

    #[test]
    fn y_tables_are_shared_across_repeated_bidj_y_queries() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        for _ in 0..3 {
            session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 4);
        }
        let (hits, misses) = session.y_table_stats();
        assert_eq!(misses, 1, "one build for three identical queries");
        assert_eq!(hits, 2);
    }

    #[test]
    fn disabled_cache_still_answers_correctly() {
        let (graph, sets) = fixture();
        let config = EngineConfig::paper_default().with_column_cache_capacity(0);
        let engine = Engine::with_config(graph, config);
        let mut session = engine.session();
        let a = session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 5);
        let b = session.two_way(TwoWayAlgorithm::BackwardIdjY, &sets[0], &sets[1], 5);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(session.cache_stats().hits, 0);
    }

    #[test]
    fn clear_cache_forces_recomputation() {
        let (graph, sets) = fixture();
        let engine = Engine::new(graph);
        let mut session = engine.session();
        session.two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[1], 5);
        let misses_before = session.cache_stats().misses;
        session.clear_cache();
        session.two_way(TwoWayAlgorithm::BackwardBasic, &sets[0], &sets[1], 5);
        assert_eq!(session.cache_stats().misses, 2 * misses_before);
    }

    #[test]
    fn config_builders_compose() {
        let config = EngineConfig::paper_default()
            .with_params(DhtParams::dht_e(), 6)
            .with_engine(WalkEngine::Dense)
            .with_threads(4)
            .with_column_cache_capacity(16);
        assert_eq!(config.d, 6);
        assert_eq!(config.engine, WalkEngine::Dense);
        assert_eq!(config.threads, 4);
        assert_eq!(config.column_cache_capacity, 16);
        let mut b = dht_graph::GraphBuilder::with_nodes(2);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        let engine = Engine::with_config(b.build().unwrap(), config);
        assert_eq!(engine.two_way_config().d, 6);
        assert_eq!(engine.n_way_config(Aggregate::Sum, 3).k, 3);
    }
}

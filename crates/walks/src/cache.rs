//! Graph-lifetime query state: the backward-column caches (per-session and
//! cross-session) and the [`QueryCtx`] handle the join layers thread through
//! a query session.
//!
//! The paper's backward algorithms (B-BJ, B-IDJ) spend almost all of their
//! time in `backWalk(G, q, l)` passes — `O(l·|E_G|)` each — and a query
//! stream with repeated targets (the norm for a service answering many
//! users against one graph) recomputes identical columns over and over.
//! This module caches them:
//!
//! * [`ColumnCache`] — a byte-budgeted LRU of score columns keyed by
//!   `(signature, target)`, where the signature folds in everything else
//!   that determines the column (DHT parameters, walk depth, engine — see
//!   [`dht_column_sig`] — or an arbitrary measure signature for the generic
//!   joins of `dht-measures`).  A hit turns an `O(l·|E_G|)` walk into a
//!   shared-pointer clone.  Capacity is accounted in **bytes**
//!   ([`column_bytes`]), not entries, so dense columns on large graphs
//!   cannot blow past a configured memory budget.
//! * [`SharedColumnCache`] — the cross-session variant: a lock-striped set
//!   of [`ColumnCache`] shards behind `Mutex`es, safe to share (via `Arc`)
//!   between any number of concurrent sessions over one graph.  Sessions
//!   warm each other: the first one to compute a column pays for it, every
//!   later one clones the pointer.
//! * [`QueryCtx`] — the per-session bundle the join algorithms take
//!   `&mut` internally: a [`ScratchPool`] of walk buffers, a column store
//!   (private [`ColumnCache`] or a handle to a [`SharedColumnCache`]), and
//!   lazily built [`YBoundTable`]s keyed by `(params, d, engine, P)`.
//!
//! Columns are deterministic functions of their key (every walk engine is
//! input-deterministic), so replaying a cached column is bit-identical to
//! recomputing it: joins answered through a warm context return exactly the
//! pairs a cold one produces — regardless of which session computed the
//! column first, at any thread count, under any eviction schedule.
//! `tests/session_cache_parity_proptest.rs` and
//! `tests/concurrent_sessions_proptest.rs` pin this.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use dht_graph::{Graph, NodeId, NodeSet};

use crate::backward::backward_dht_into;
use crate::bounds::YBoundTable;
use crate::frontier::{ScratchPool, WalkEngine, WalkScratch};
use crate::params::DhtParams;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The column signature of a truncated backward DHT computation: two columns
/// share a signature exactly when they were produced by the same parameters,
/// walk depth and propagation engine (so their values are bit-identical for
/// equal targets).
pub fn dht_column_sig(params: &DhtParams, d: usize, engine: WalkEngine) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"dht");
    h = fnv1a(h, &params.alpha.to_bits().to_le_bytes());
    h = fnv1a(h, &params.beta.to_bits().to_le_bytes());
    h = fnv1a(h, &params.lambda.to_bits().to_le_bytes());
    h = fnv1a(h, &(d as u64).to_le_bytes());
    fnv1a(h, engine.name().as_bytes())
}

/// Builds a column signature from a tag string and a list of 64-bit words
/// (typically parameter bit patterns) — the hook measures outside this
/// crate use to share the column caches (see
/// `dht-measures`' `ProximityMeasure::column_signature`).
pub fn custom_column_sig(tag: &str, words: &[u64]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, tag.as_bytes());
    for &w in words {
        h = fnv1a(h, &w.to_le_bytes());
    }
    h
}

/// Folds the graph's process-unique identity ([`Graph::uid`]) into a column
/// signature, so a context reused across graphs can never serve a column
/// computed on a different graph.  Applied internally by every cached
/// [`QueryCtx`] operation.
fn graph_scoped_sig(graph: &Graph, sig: u64) -> u64 {
    custom_column_sig("graph", &[graph.uid(), sig])
}

/// Order-sensitive signature of a node set's membership, used to key cached
/// [`YBoundTable`]s (the table depends on the seed set `P`).
pub fn node_set_sig(set: &NodeSet) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(set.len() as u64).to_le_bytes());
    for node in set.iter() {
        h = fnv1a(h, &node.0.to_le_bytes());
    }
    h
}

/// Fixed per-entry bookkeeping charge (key, stamps, map/queue slots and the
/// `Arc` header) added to every cached column's accounted size.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// The accounted size in bytes of a cached column of `len` scores: the
/// payload floats plus a fixed per-entry bookkeeping charge, so even empty
/// columns have nonzero cost and budgets bound entry counts too.
pub fn column_bytes(len: usize) -> usize {
    len * std::mem::size_of::<f64>() + ENTRY_OVERHEAD_BYTES
}

/// Hit / miss / eviction counters of a column cache (cumulative since
/// construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh computation.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum (used to aggregate per-shard counters).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheSlot {
    /// LRU stamp of the slot's most recent touch; stale queue entries whose
    /// stamp no longer matches are skipped during eviction.
    stamp: u64,
    /// Accounted size of this entry ([`column_bytes`] at insertion).
    bytes: usize,
    column: Arc<[f64]>,
}

/// A byte-budgeted LRU cache of score columns keyed by `(signature, target)`.
///
/// Capacity is accounted in bytes ([`column_bytes`] per entry), so the
/// memory held by the cache is bounded regardless of graph size — a dense
/// column on a 10M-node graph costs what it costs, not "one slot".
/// Eviction is strict LRU via touch stamps with a lazily compacted queue:
/// `get` and `insert` are `O(1)` amortised.  A budget of `0` disables the
/// cache entirely (every lookup misses, nothing is stored) — that is what
/// the one-shot join wrappers use, so their behaviour and allocation profile
/// match the pre-session code paths.
#[derive(Debug, Default)]
pub struct ColumnCache {
    byte_budget: usize,
    bytes_used: usize,
    slots: HashMap<(u64, u32), CacheSlot>,
    /// `(stamp, key)` pairs in touch order; entries are stale when the
    /// slot's current stamp differs.
    order: VecDeque<(u64, (u64, u32))>,
    tick: u64,
    stats: CacheStats,
}

impl ColumnCache {
    /// A cache holding at most `byte_budget` accounted bytes of columns.
    pub fn with_byte_budget(byte_budget: usize) -> Self {
        ColumnCache {
            byte_budget,
            ..ColumnCache::default()
        }
    }

    /// A disabled cache (budget 0): every lookup misses, inserts are
    /// dropped.
    pub fn disabled() -> Self {
        ColumnCache::with_byte_budget(0)
    }

    /// The configured capacity in bytes.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Accounted bytes currently held.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.byte_budget > 0
    }

    /// Number of columns currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache currently holds no columns.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Cumulative hit / miss / eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Residency probe: whether the column for `(sig, target)` is currently
    /// cached — **without** refreshing its LRU position, cloning it or
    /// touching the hit/miss counters.  This is what cost-based planners use
    /// to ask "would this lookup hit?" while deciding *whether* to look up
    /// at all: probing must never change what a later eviction does.
    pub fn contains(&self, sig: u64, target: u32) -> bool {
        self.byte_budget > 0 && self.slots.contains_key(&(sig, target))
    }

    /// Looks up the column for `(sig, target)`, refreshing its LRU position
    /// on a hit.
    pub fn get(&mut self, sig: u64, target: u32) -> Option<Arc<[f64]>> {
        if self.byte_budget == 0 {
            self.stats.misses += 1;
            return None;
        }
        let key = (sig, target);
        match self.slots.get_mut(&key) {
            Some(slot) => {
                self.tick += 1;
                slot.stamp = self.tick;
                self.order.push_back((self.tick, key));
                self.stats.hits += 1;
                let column = slot.column.clone();
                self.compact();
                Some(column)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) the column for `(sig, target)`, evicting least
    /// recently used entries until the byte budget holds again.  A column
    /// whose own accounted size exceeds the whole budget is not retained.
    pub fn insert(&mut self, sig: u64, target: u32, column: Arc<[f64]>) {
        if self.byte_budget == 0 {
            return;
        }
        let key = (sig, target);
        let bytes = column_bytes(column.len());
        self.tick += 1;
        let stamp = self.tick;
        self.order.push_back((stamp, key));
        if let Some(old) = self.slots.insert(
            key,
            CacheSlot {
                stamp,
                bytes,
                column,
            },
        ) {
            self.bytes_used -= old.bytes;
        }
        self.bytes_used += bytes;
        while self.bytes_used > self.byte_budget && !self.slots.is_empty() {
            self.evict_one();
        }
        self.compact();
    }

    /// Drops everything (counters are kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.order.clear();
        self.bytes_used = 0;
    }

    fn evict_one(&mut self) {
        while let Some((stamp, key)) = self.order.pop_front() {
            let live = self.slots.get(&key).is_some_and(|slot| slot.stamp == stamp);
            if live {
                if let Some(slot) = self.slots.remove(&key) {
                    self.bytes_used -= slot.bytes;
                }
                self.stats.evictions += 1;
                return;
            }
        }
    }

    /// Keeps the lazily invalidated queue from growing without bound:
    /// whenever it exceeds twice the live set, every stale entry is dropped
    /// (not just a stale prefix — a live entry stuck at the front must not
    /// shield stale ones behind it, or a stream of hits on one hot key
    /// would grow the queue forever).  The rebuild is `O(len)` and only
    /// runs after `len/2` pushes, so the amortised cost stays `O(1)`.
    fn compact(&mut self) {
        if self.order.len() <= 2 * self.slots.len().max(1) {
            return;
        }
        let slots = &self.slots;
        self.order
            .retain(|&(stamp, key)| slots.get(&key).is_some_and(|slot| slot.stamp == stamp));
    }
}

/// Default number of lock stripes of a [`SharedColumnCache`].
const DEFAULT_SHARDS: usize = 16;

/// Budgets smaller than this per shard collapse the stripe count, so tiny
/// test budgets still cache a few columns instead of splitting into sixteen
/// useless slivers.
const MIN_SHARD_BYTES: usize = 16 * 1024;

/// A thread-safe, lock-striped column cache shared by every session of one
/// graph's engine.
///
/// The key space is split over power-of-two many [`ColumnCache`] shards,
/// each behind its own `Mutex`, so concurrent sessions contend only when
/// they touch the same stripe.  Each shard runs an independent byte-budget
/// LRU over its slice of the total budget — eviction never needs a global
/// lock.  Because every cached column is a pure function of its key,
/// concurrent sessions may race to compute the same column; whoever inserts
/// last wins, and both results are bit-identical, so answers never depend on
/// the interleaving.
#[derive(Debug)]
pub struct SharedColumnCache {
    shards: Box<[Mutex<ColumnCache>]>,
    byte_budget: usize,
}

impl SharedColumnCache {
    /// A shared cache with `byte_budget` total capacity across
    /// `DEFAULT_SHARDS` (16) lock stripes (fewer when the budget is too small
    /// to split usefully).
    pub fn new(byte_budget: usize) -> Self {
        SharedColumnCache::with_shards(byte_budget, DEFAULT_SHARDS)
    }

    /// A shared cache sized for columns of `column_len` scores: the stripe
    /// count is collapsed until every stripe's slice of the budget holds at
    /// least two such columns, so large-graph columns are never silently
    /// uncacheable while the total budget would hold several (each shard
    /// rejects entries bigger than its own slice).  This is what
    /// `dht-engine` uses, with `column_len = |V_G|`.
    pub fn for_columns(byte_budget: usize, column_len: usize) -> Self {
        let max_by_column = (byte_budget / (2 * column_bytes(column_len))).max(1);
        SharedColumnCache::with_shards(byte_budget, DEFAULT_SHARDS.min(max_by_column))
    }

    /// A shared cache with an explicit stripe count (rounded down to a
    /// power of two, collapsed further when `byte_budget / shards` would
    /// fall below a useful minimum).
    pub fn with_shards(byte_budget: usize, shards: usize) -> Self {
        let max_useful = (byte_budget / MIN_SHARD_BYTES).max(1);
        let shards = shards.clamp(1, max_useful);
        // Round down to a power of two so stripe selection is a mask.
        let shards = 1usize << (usize::BITS - 1 - shards.leading_zeros());
        let per_shard = byte_budget / shards;
        let shards: Vec<Mutex<ColumnCache>> = (0..shards)
            .map(|_| Mutex::new(ColumnCache::with_byte_budget(per_shard)))
            .collect();
        SharedColumnCache {
            shards: shards.into_boxed_slice(),
            byte_budget,
        }
    }

    /// A disabled shared cache (budget 0).
    pub fn disabled() -> Self {
        SharedColumnCache::new(0)
    }

    /// The total configured capacity in bytes.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.byte_budget > 0
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, sig: u64, target: u32) -> &Mutex<ColumnCache> {
        let mut h = fnv1a(FNV_OFFSET, b"shard");
        h = fnv1a(h, &sig.to_le_bytes());
        h = fnv1a(h, &target.to_le_bytes());
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    /// Residency probe: whether the column for `(sig, target)` is currently
    /// cached in its stripe — no LRU touch, no clone, no counter update
    /// (see [`ColumnCache::contains`]).  The stripe lock is held only for
    /// the map lookup.
    pub fn contains(&self, sig: u64, target: u32) -> bool {
        self.shard(sig, target)
            .lock()
            .expect("shard lock poisoned")
            .contains(sig, target)
    }

    /// Looks up the column for `(sig, target)` in its stripe.
    pub fn get(&self, sig: u64, target: u32) -> Option<Arc<[f64]>> {
        self.shard(sig, target)
            .lock()
            .expect("shard lock poisoned")
            .get(sig, target)
    }

    /// Inserts (or refreshes) the column for `(sig, target)` in its stripe,
    /// evicting within that stripe until its slice of the budget holds.
    pub fn insert(&self, sig: u64, target: u32, column: Arc<[f64]>) {
        self.shard(sig, target)
            .lock()
            .expect("shard lock poisoned")
            .insert(sig, target, column);
    }

    /// Cumulative counters summed over every stripe.
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .fold(CacheStats::default(), |acc, shard| {
                acc.merged(shard.lock().expect("shard lock poisoned").stats())
            })
    }

    /// Accounted bytes currently held, summed over every stripe.
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("shard lock poisoned").bytes_used())
            .sum()
    }

    /// Number of columns currently cached, summed over every stripe.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether no stripe currently holds any column.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached column in every stripe (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("shard lock poisoned").clear();
        }
    }
}

/// A cross-session store of `Y_l⁺` bound tables, shared (via `Arc`) by
/// every session of one graph's engine.
///
/// Y-bound tables are the opposite shape from backward columns: **few and
/// heavy** (each is `O(d·|V_G|)` floats, and a service answers most
/// B-IDJ-Y streams from a handful of distinct `P` sets).  A mutex around
/// them would serialise every concurrent B-IDJ-Y session on one lock for
/// the whole lookup, so the store is read-mostly by construction:
///
/// * lookups take the `RwLock` **read** lock only — any number of sessions
///   hit concurrently; LRU touch stamps are per-entry atomics, so a hit
///   never needs the write lock;
/// * a miss releases the lock entirely while the table is **built outside
///   it** (the expensive part), then takes the write lock just long enough
///   to insert; sessions racing to build the same table each insert a
///   bit-identical result (tables are pure functions of their key), so the
///   interleaving can never change answers.
///
/// Capacity is a fixed entry count with LRU eviction under the write lock.
#[derive(Debug)]
pub struct SharedYTableStore {
    tables: RwLock<HashMap<(u64, u64), YSlot>>,
    tick: AtomicU64,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct YSlot {
    /// LRU touch stamp, updated under the **read** lock on every hit.
    stamp: AtomicU64,
    table: Arc<YBoundTable>,
}

impl Default for SharedYTableStore {
    fn default() -> Self {
        SharedYTableStore::new()
    }
}

impl SharedYTableStore {
    /// A store holding up to 16 tables (the same bound a private
    /// session's `Y_TABLE_CAPACITY` applies).
    pub fn new() -> Self {
        SharedYTableStore::with_capacity(Y_TABLE_CAPACITY)
    }

    /// A store holding up to `capacity` tables (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedYTableStore {
            tables: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(0),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured capacity in tables.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tables currently stored.
    pub fn len(&self) -> usize {
        self.tables.read().expect("y-table lock poisoned").len()
    }

    /// Whether the store currently holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative `(hits, misses)` over every session.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Residency probe: no stamp refresh, no counter update.
    fn contains(&self, key: (u64, u64)) -> bool {
        self.tables
            .read()
            .expect("y-table lock poisoned")
            .contains_key(&key)
    }

    /// Looks the table up under the read lock, refreshing its atomic LRU
    /// stamp on a hit.
    fn get(&self, key: (u64, u64)) -> Option<Arc<YBoundTable>> {
        let tables = self.tables.read().expect("y-table lock poisoned");
        match tables.get(&key) {
            Some(slot) => {
                let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                slot.stamp.store(stamp, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.table.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly built table (write lock held only for the map
    /// update), evicting least-recently-touched entries over capacity.
    fn insert(&self, key: (u64, u64), table: Arc<YBoundTable>) {
        let mut tables = self.tables.write().expect("y-table lock poisoned");
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        tables.insert(
            key,
            YSlot {
                stamp: AtomicU64::new(stamp),
                table,
            },
        );
        while tables.len() > self.capacity {
            let Some(&oldest) = tables
                .iter()
                .min_by_key(|(_, slot)| slot.stamp.load(Ordering::Relaxed))
                .map(|(key, _)| key)
            else {
                break;
            };
            tables.remove(&oldest);
        }
    }

    /// Drops every stored table (counters are kept).
    pub fn clear(&self) {
        self.tables.write().expect("y-table lock poisoned").clear();
    }
}

/// The column store behind a [`QueryCtx`]: either a session-private
/// [`ColumnCache`] or a handle to a cross-session [`SharedColumnCache`].
#[derive(Debug)]
enum ColumnStore {
    Private(ColumnCache),
    Shared {
        cache: Arc<SharedColumnCache>,
        /// This session's own hit/miss view (the shared counters aggregate
        /// every session).
        local: CacheStats,
    },
}

impl Default for ColumnStore {
    fn default() -> Self {
        ColumnStore::Private(ColumnCache::default())
    }
}

impl ColumnStore {
    fn get(&mut self, sig: u64, target: u32) -> Option<Arc<[f64]>> {
        match self {
            ColumnStore::Private(cache) => cache.get(sig, target),
            ColumnStore::Shared { cache, local } => {
                let column = cache.get(sig, target);
                if column.is_some() {
                    local.hits += 1;
                } else {
                    local.misses += 1;
                }
                column
            }
        }
    }

    fn insert(&mut self, sig: u64, target: u32, column: Arc<[f64]>) {
        match self {
            ColumnStore::Private(cache) => cache.insert(sig, target, column),
            ColumnStore::Shared { cache, .. } => cache.insert(sig, target, column),
        }
    }

    fn contains(&self, sig: u64, target: u32) -> bool {
        match self {
            ColumnStore::Private(cache) => cache.contains(sig, target),
            ColumnStore::Shared { cache, .. } => cache.contains(sig, target),
        }
    }

    fn is_enabled(&self) -> bool {
        match self {
            ColumnStore::Private(cache) => cache.is_enabled(),
            ColumnStore::Shared { cache, .. } => cache.is_enabled(),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            ColumnStore::Private(cache) => cache.stats(),
            ColumnStore::Shared { local, .. } => *local,
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnStore::Private(cache) => cache.clear(),
            ColumnStore::Shared { cache, .. } => cache.clear(),
        }
    }
}

/// Per-session query state threaded through every join layer: pooled walk
/// scratches, the backward-column store and lazily built Y-bound tables.
///
/// A context built with [`QueryCtx::one_shot`] (what the free-function join
/// wrappers use) disables the caches, reproducing the stateless behaviour;
/// a context built with [`QueryCtx::with_byte_budget`] keeps columns and
/// Y-tables warm across queries on a session-private cache; a context built
/// with [`QueryCtx::shared`] reads and writes a cross-session
/// [`SharedColumnCache`], so concurrent sessions over the same graph warm
/// each other.  Answers are bit-identical in every mode.
#[derive(Debug, Default)]
pub struct QueryCtx {
    /// Pool of reusable walk scratches shared by the worker threads of the
    /// joins running through this context.
    pub pool: ScratchPool,
    columns: ColumnStore,
    /// Session-private cached Y-bound tables with their LRU touch stamps;
    /// bounded by [`Y_TABLE_CAPACITY`] so long-lived sessions answering
    /// B-IDJ-Y queries over many distinct `P` sets cannot grow without
    /// limit.  Unused when [`QueryCtx::shared_y`] is set.
    y_tables: HashMap<(u64, u64), (u64, Arc<YBoundTable>)>,
    /// Cross-session Y-bound-table store, when this context belongs to a
    /// shared-cache engine.  Read-mostly ([`SharedYTableStore`]): hits take
    /// a read lock, builds happen outside any lock, so concurrent B-IDJ-Y
    /// sessions do not serialise on it.
    shared_y: Option<Arc<SharedYTableStore>>,
    y_tick: u64,
    y_hits: u64,
    y_misses: u64,
    /// Per-query trace spans ([`dht_obs::Trace`]): disabled by default, so
    /// every recording site below costs one branch.  Enabled per session by
    /// the `TRACE` wire prefix / `--trace 1`; only ever reads clocks and
    /// bumps counters, never perturbs answers.
    trace: dht_obs::Trace,
}

/// Maximum number of Y-bound tables a context keeps (each is
/// `O(d·|V_G|)` floats — far heavier than a column, hence the small fixed
/// bound with LRU eviction).
const Y_TABLE_CAPACITY: usize = 16;

impl QueryCtx {
    /// A context with a session-private column cache of up to `byte_budget`
    /// accounted bytes.
    pub fn with_byte_budget(byte_budget: usize) -> Self {
        QueryCtx {
            columns: ColumnStore::Private(ColumnCache::with_byte_budget(byte_budget)),
            ..QueryCtx::default()
        }
    }

    /// A context with all caching disabled — the free-function join
    /// wrappers use this, so a one-shot call behaves exactly like the
    /// stateless implementation it replaced.
    pub fn one_shot() -> Self {
        QueryCtx::with_byte_budget(0)
    }

    /// A context whose columns are read from and written to a
    /// cross-session [`SharedColumnCache`] — what `dht-engine` sessions use
    /// so concurrent clients warm each other.
    pub fn shared(cache: Arc<SharedColumnCache>) -> Self {
        QueryCtx {
            columns: ColumnStore::Shared {
                cache,
                local: CacheStats::default(),
            },
            ..QueryCtx::default()
        }
    }

    /// Attaches a cross-session [`SharedYTableStore`]: Y-bound tables are
    /// then read from and written to the shared store instead of the
    /// session-private map, so concurrent B-IDJ-Y sessions over one graph
    /// warm each other.  What `dht-engine` sets on every session of a
    /// shared-cache engine.
    pub fn with_shared_y_tables(mut self, store: Arc<SharedYTableStore>) -> Self {
        self.shared_y = Some(store);
        self
    }

    /// The cross-session Y-table store behind this context, when set.
    pub fn shared_y_store(&self) -> Option<&Arc<SharedYTableStore>> {
        self.shared_y.as_ref()
    }

    /// A fresh context for a helper worker of this session: shares the
    /// [`SharedColumnCache`] (and the [`SharedYTableStore`], when present)
    /// when this context has one, and is a plain one-shot context otherwise
    /// (a private cache cannot be split across threads).  The concurrent
    /// per-edge paths of AP and the generic measure n-way join fork one
    /// context per worker, so even their scoped-thread stages read and fill
    /// the cross-session caches.
    pub fn fork(&self) -> QueryCtx {
        match &self.columns {
            ColumnStore::Shared { cache, .. } => {
                let ctx = QueryCtx::shared(cache.clone());
                match &self.shared_y {
                    Some(store) => ctx.with_shared_y_tables(store.clone()),
                    None => ctx,
                }
            }
            ColumnStore::Private(_) => QueryCtx::one_shot(),
        }
    }

    /// The cross-session cache behind this context, when it has one.
    pub fn shared_cache(&self) -> Option<&Arc<SharedColumnCache>> {
        match &self.columns {
            ColumnStore::Shared { cache, .. } => Some(cache),
            ColumnStore::Private(_) => None,
        }
    }

    /// Cumulative column-cache counters **as seen by this context**: for a
    /// private store these are the cache's own counters; for a shared store
    /// they count this session's lookups only (evictions are global and
    /// reported by [`SharedColumnCache::stats`]).
    pub fn column_stats(&self) -> CacheStats {
        self.columns.stats()
    }

    /// `(hits, misses)` of the Y-bound-table cache.
    pub fn y_table_stats(&self) -> (u64, u64) {
        (self.y_hits, self.y_misses)
    }

    /// The per-query trace carried by this context (disabled by default).
    pub fn trace(&self) -> &dht_obs::Trace {
        &self.trace
    }

    /// Mutable access to the trace — enable/disable/reset between queries.
    pub fn trace_mut(&mut self) -> &mut dht_obs::Trace {
        &mut self.trace
    }

    /// Drops all cached columns and tables, keeping allocations and
    /// counters.  On a shared store this clears the **cross-session** cache
    /// (every session of the engine sees the drop).
    pub fn clear(&mut self) {
        self.columns.clear();
        self.y_tables.clear();
        if let Some(store) = &self.shared_y {
            store.clear();
        }
    }

    /// Residency probe: whether the backward DHT column of `target` (at
    /// walk depth `d` under `params` / `engine`) is currently resident in
    /// this context's column store — without touching LRU order, counters
    /// or the column itself.  Planners use this to cost "warm" vs "cold"
    /// targets before choosing an algorithm; probing never changes what a
    /// later lookup or eviction does.
    pub fn backward_column_resident(
        &self,
        graph: &Graph,
        params: &DhtParams,
        target: NodeId,
        d: usize,
        engine: WalkEngine,
    ) -> bool {
        let sig = graph_scoped_sig(graph, dht_column_sig(params, d, engine));
        self.columns.contains(sig, target.0)
    }

    /// Residency probe for a custom column signature (the
    /// [`QueryCtx::for_each_column_cached`] key space); like
    /// [`QueryCtx::backward_column_resident`], it never touches LRU order
    /// or counters.
    pub fn column_resident(&self, graph: &Graph, sig: u64, target: NodeId) -> bool {
        self.columns
            .contains(graph_scoped_sig(graph, sig), target.0)
    }

    /// Residency probe: whether the `Y_l⁺` bound table for `(params, d,
    /// engine, p)` is cached in this context.  Read-only: no LRU stamp
    /// refresh, no counter update.
    pub fn y_table_resident(
        &self,
        graph: &Graph,
        params: &DhtParams,
        p: &NodeSet,
        d: usize,
        engine: WalkEngine,
    ) -> bool {
        let key = (
            graph_scoped_sig(graph, dht_column_sig(params, d, engine)),
            node_set_sig(p),
        );
        self.columns.is_enabled()
            && match &self.shared_y {
                Some(store) => store.contains(key),
                None => self.y_tables.contains_key(&key),
            }
    }

    /// The truncated backward DHT column `h_d(·, target)` for every source,
    /// served from the column store when possible.
    pub fn backward_column(
        &mut self,
        graph: &Graph,
        params: &DhtParams,
        target: NodeId,
        d: usize,
        engine: WalkEngine,
    ) -> Arc<[f64]> {
        let sig = graph_scoped_sig(graph, dht_column_sig(params, d, engine));
        if let Some(column) = self.columns.get(sig, target.0) {
            self.trace.event(dht_obs::Phase::ColumnHit);
            return column;
        }
        let started = self.trace.begin();
        let mut scratch = self.pool.acquire();
        let mut scores = Vec::new();
        backward_dht_into(graph, params, target, d, engine, &mut scratch, &mut scores);
        let column: Arc<[f64]> = scores.into();
        self.columns.insert(sig, target.0, column.clone());
        self.trace.finish(started, dht_obs::Phase::ColumnBuild);
        column
    }

    /// Streams the backward DHT column of every target in `targets` (walk
    /// depth `d`) to `consume`, **in target order** — the shared backbone of
    /// B-BJ and both B-IDJ variants, now cache-aware.
    ///
    /// Cache misses are computed in parallel chunks on up to `threads`
    /// workers (bounding peak memory to one chunk of `|V_G|`-sized columns)
    /// with scratches drawn from the context's pool; hits are served
    /// without any walk.  Consumption always runs in target order on the
    /// calling thread, so callers observe exactly the serial sequence at
    /// every thread count and cache temperature.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_backward_column(
        &mut self,
        graph: &Graph,
        params: &DhtParams,
        d: usize,
        engine: WalkEngine,
        threads: usize,
        targets: &[NodeId],
        consume: impl FnMut(NodeId, &[f64]),
    ) {
        let sig = dht_column_sig(params, d, engine);
        self.for_each_column_cached(
            graph,
            sig,
            threads,
            targets,
            |scratch, target| {
                let mut scores = Vec::new();
                backward_dht_into(graph, params, target, d, engine, scratch, &mut scores);
                scores
            },
            consume,
        );
    }

    /// Generic cached column streaming: like
    /// [`QueryCtx::for_each_backward_column`] but with an arbitrary column
    /// producer and signature — the entry point the generic measure joins
    /// of `dht-measures` route through.
    ///
    /// `produce` must be a pure function of `(graph, sig, target)`; the
    /// scratch it receives is a pooled buffer it may use (or ignore)
    /// without affecting results.  The graph's [`Graph::uid`] is folded
    /// into the cache key, so contexts reused across graphs stay correct.
    pub fn for_each_column_cached(
        &mut self,
        graph: &Graph,
        sig: u64,
        threads: usize,
        targets: &[NodeId],
        produce: impl Fn(&mut WalkScratch, NodeId) -> Vec<f64> + Sync,
        mut consume: impl FnMut(NodeId, &[f64]),
    ) {
        let sig = graph_scoped_sig(graph, sig);
        let pool = &self.pool;
        if !self.columns.is_enabled() {
            // Uncached fast path: identical to the pre-session streamer.
            let started = self.trace.begin();
            dht_par::stream_map_ordered(
                threads,
                targets,
                || pool.acquire(),
                |scratch, &target| produce(scratch, target),
                |&target, column| consume(target, &column),
            );
            self.trace.finish(started, dht_obs::Phase::ColumnBuild);
            return;
        }
        /// Chunk length per parallel round, in items per worker (matches
        /// `dht_par::stream_map_ordered`).
        const ITEMS_PER_WORKER_ROUND: usize = 4;
        let workers = dht_par::effective_threads(threads).max(1);
        for chunk in targets.chunks(workers * ITEMS_PER_WORKER_ROUND) {
            let mut slots: Vec<Option<Arc<[f64]>>> = chunk
                .iter()
                .map(|&target| self.columns.get(sig, target.0))
                .collect();
            let missing: Vec<(usize, NodeId)> = slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_none())
                .map(|(i, _)| (i, chunk[i]))
                .collect();
            for _ in 0..chunk.len() - missing.len() {
                self.trace.event(dht_obs::Phase::ColumnHit);
            }
            // One build span per parallel round (the workers share the
            // wall-clock; per-column timers across threads would not add
            // up to anything meaningful).
            let started = if missing.is_empty() {
                None
            } else {
                self.trace.begin()
            };
            let computed = dht_par::parallel_map_init(
                threads,
                &missing,
                || pool.acquire(),
                |scratch, _, &(_, target)| -> Arc<[f64]> { produce(scratch, target).into() },
            );
            self.trace.finish(started, dht_obs::Phase::ColumnBuild);
            for (&(slot_index, target), column) in missing.iter().zip(computed) {
                self.columns.insert(sig, target.0, column.clone());
                slots[slot_index] = Some(column);
            }
            for (slot, &target) in slots.iter().zip(chunk) {
                let column = slot.as_ref().expect("every slot filled by hit or compute");
                consume(target, column);
            }
        }
    }

    /// The `Y_l⁺(P, q)` bound table for source set `p` at depth `d`, built
    /// lazily and cached per `(params, d, engine, P)`.
    ///
    /// When caching is disabled the table is rebuilt on every call, exactly
    /// as the stateless B-IDJ-Y did.
    pub fn y_bound_table(
        &mut self,
        graph: &Graph,
        params: &DhtParams,
        p: &NodeSet,
        d: usize,
        engine: WalkEngine,
        threads: usize,
    ) -> Arc<YBoundTable> {
        let key = (
            graph_scoped_sig(graph, dht_column_sig(params, d, engine)),
            node_set_sig(p),
        );
        let caching = self.columns.is_enabled();
        if caching {
            if let Some(store) = &self.shared_y {
                if let Some(table) = store.get(key) {
                    self.y_hits += 1;
                    self.trace.event(dht_obs::Phase::YHit);
                    return table;
                }
            } else if let Some((stamp, table)) = self.y_tables.get_mut(&key) {
                self.y_tick += 1;
                *stamp = self.y_tick;
                self.y_hits += 1;
                self.trace.event(dht_obs::Phase::YHit);
                return table.clone();
            }
        }
        self.y_misses += 1;
        let span_started = self.trace.begin();
        // Built outside any lock: on the shared store, racing sessions may
        // each build the (bit-identical) table, but none blocks another.
        let mut scratch = self.pool.acquire();
        let table = Arc::new(YBoundTable::new_with(
            graph,
            params,
            p,
            d,
            engine,
            threads,
            &mut scratch,
        ));
        if caching {
            if let Some(store) = &self.shared_y {
                store.insert(key, table.clone());
            } else {
                self.y_tick += 1;
                self.y_tables.insert(key, (self.y_tick, table.clone()));
                if self.y_tables.len() > Y_TABLE_CAPACITY {
                    // Tiny map (≤ 17 entries): a linear scan for the oldest
                    // stamp is cheaper than any auxiliary structure.
                    if let Some(&oldest) = self
                        .y_tables
                        .iter()
                        .min_by_key(|(_, &(stamp, _))| stamp)
                        .map(|(key, _)| key)
                    {
                        self.y_tables.remove(&oldest);
                    }
                }
            }
        }
        self.trace.finish(span_started, dht_obs::Phase::YBuild);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward_dht_all_sources;
    use dht_graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::with_nodes(n);
        for i in 0..n as u32 {
            b.add_undirected_edge(NodeId(i), NodeId((i + 1) % n as u32), 1.0)
                .unwrap();
        }
        b.build().unwrap()
    }

    /// Byte budget that fits exactly `columns` cached columns of `len`
    /// scores each.
    fn budget_for(columns: usize, len: usize) -> usize {
        columns * column_bytes(len)
    }

    #[test]
    fn signatures_separate_params_depth_and_engine() {
        let a = DhtParams::paper_default();
        let b = DhtParams::dht_e();
        let sig = |p, d, e| dht_column_sig(p, d, e);
        assert_ne!(
            sig(&a, 8, WalkEngine::Sparse),
            sig(&b, 8, WalkEngine::Sparse)
        );
        assert_ne!(
            sig(&a, 8, WalkEngine::Sparse),
            sig(&a, 4, WalkEngine::Sparse)
        );
        assert_ne!(
            sig(&a, 8, WalkEngine::Sparse),
            sig(&a, 8, WalkEngine::Dense)
        );
        assert_eq!(sig(&a, 8, WalkEngine::Auto), sig(&a, 8, WalkEngine::Auto));
    }

    #[test]
    fn node_set_signature_is_order_and_content_sensitive() {
        let a = NodeSet::new("A", [NodeId(1), NodeId(2), NodeId(3)]);
        let b = NodeSet::new("B", [NodeId(3), NodeId(2), NodeId(1)]);
        let c = NodeSet::new("C", [NodeId(1), NodeId(2), NodeId(3)]);
        assert_ne!(node_set_sig(&a), node_set_sig(&b));
        assert_eq!(node_set_sig(&a), node_set_sig(&c));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_column() {
        let mut cache = ColumnCache::with_byte_budget(budget_for(2, 1));
        let col = |x: f64| -> Arc<[f64]> { vec![x].into() };
        cache.insert(1, 10, col(1.0));
        cache.insert(1, 20, col(2.0));
        assert!(cache.get(1, 10).is_some()); // refresh 10: 20 becomes LRU
        cache.insert(1, 30, col(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, 20).is_none(), "20 was evicted");
        assert!(cache.get(1, 10).is_some());
        assert!(cache.get(1, 30).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn contains_probes_never_touch_lru_order_or_counters() {
        // Two entries in a two-entry budget; key 10 is the LRU.  Probing it
        // thousands of times must not refresh it: the next insert still
        // evicts 10, exactly as if no probe had happened.
        let mut cache = ColumnCache::with_byte_budget(budget_for(2, 1));
        let col = |x: f64| -> Arc<[f64]> { vec![x].into() };
        cache.insert(1, 10, col(1.0));
        cache.insert(1, 20, col(2.0));
        let stats_before = cache.stats();
        let queue_before = cache.order.len();
        for _ in 0..10_000 {
            assert!(cache.contains(1, 10));
            assert!(cache.contains(1, 20));
            assert!(!cache.contains(1, 30));
            assert!(!cache.contains(2, 10));
        }
        assert_eq!(cache.stats(), stats_before, "probes must not count");
        assert_eq!(
            cache.order.len(),
            queue_before,
            "probes must not touch the queue"
        );
        cache.insert(1, 30, col(3.0));
        assert!(!cache.contains(1, 10), "10 stayed LRU despite the probes");
        assert!(cache.contains(1, 20));
        assert!(cache.contains(1, 30));
        assert_eq!(cache.stats().evictions, 1);
        // A disabled cache reports nothing resident.
        let disabled = ColumnCache::disabled();
        assert!(!disabled.contains(1, 20));
    }

    #[test]
    fn shared_contains_probe_is_side_effect_free() {
        let cache = SharedColumnCache::with_shards(budget_for(2, 1), 1);
        cache.insert(1, 10, vec![1.0].into());
        cache.insert(1, 20, vec![2.0].into());
        let stats_before = cache.stats();
        for _ in 0..1_000 {
            assert!(cache.contains(1, 10));
            assert!(!cache.contains(1, 99));
        }
        assert_eq!(cache.stats(), stats_before);
        cache.insert(1, 30, vec![3.0].into());
        assert!(!cache.contains(1, 10), "probes must not refresh LRU order");
        assert!(cache.contains(1, 20));
        assert!(cache.contains(1, 30));
    }

    #[test]
    fn ctx_residency_probes_report_columns_and_y_tables() {
        let g = ring(12);
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_byte_budget(1 << 20);
        assert!(!ctx.backward_column_resident(&g, &params, NodeId(3), 6, WalkEngine::Sparse));
        ctx.backward_column(&g, &params, NodeId(3), 6, WalkEngine::Sparse);
        let stats_before = ctx.column_stats();
        assert!(ctx.backward_column_resident(&g, &params, NodeId(3), 6, WalkEngine::Sparse));
        // Different depth / engine / target / graph → not resident.
        assert!(!ctx.backward_column_resident(&g, &params, NodeId(3), 5, WalkEngine::Sparse));
        assert!(!ctx.backward_column_resident(&g, &params, NodeId(3), 6, WalkEngine::Dense));
        assert!(!ctx.backward_column_resident(&g, &params, NodeId(4), 6, WalkEngine::Sparse));
        let other = ring(13);
        assert!(!ctx.backward_column_resident(&other, &params, NodeId(3), 6, WalkEngine::Sparse));
        assert_eq!(ctx.column_stats(), stats_before, "probes must not count");

        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        assert!(!ctx.y_table_resident(&g, &params, &p, 6, WalkEngine::Sparse));
        ctx.y_bound_table(&g, &params, &p, 6, WalkEngine::Sparse, 1);
        let y_before = ctx.y_table_stats();
        assert!(ctx.y_table_resident(&g, &params, &p, 6, WalkEngine::Sparse));
        let p2 = NodeSet::new("P2", [NodeId(2)]);
        assert!(!ctx.y_table_resident(&g, &params, &p2, 6, WalkEngine::Sparse));
        assert_eq!(ctx.y_table_stats(), y_before, "probes must not count");

        // One-shot contexts never report residency.
        let cold = QueryCtx::one_shot();
        assert!(!cold.backward_column_resident(&g, &params, NodeId(3), 6, WalkEngine::Sparse));
        assert!(!cold.y_table_resident(&g, &params, &p, 6, WalkEngine::Sparse));
    }

    #[test]
    fn byte_accounting_tracks_inserts_replacements_and_evictions() {
        let mut cache = ColumnCache::with_byte_budget(budget_for(4, 8));
        cache.insert(1, 1, vec![0.0; 8].into());
        assert_eq!(cache.bytes_used(), column_bytes(8));
        // Replacing a key swaps its accounted size instead of leaking it.
        cache.insert(1, 1, vec![0.0; 4].into());
        assert_eq!(cache.bytes_used(), column_bytes(4));
        assert_eq!(cache.len(), 1);
        // A big column displaces as many small ones as the budget demands.
        cache.insert(1, 2, vec![0.0; 8].into());
        cache.insert(1, 3, vec![0.0; 8].into());
        cache.insert(1, 4, vec![0.0; 16].into());
        assert!(cache.bytes_used() <= cache.byte_budget());
        assert!(cache.get(1, 4).is_some(), "newest entry survives");
    }

    #[test]
    fn dense_columns_cannot_blow_past_the_budget() {
        // Eight columns of 1000 floats into a budget that fits two.
        let mut cache = ColumnCache::with_byte_budget(budget_for(2, 1000));
        for t in 0..8u32 {
            cache.insert(7, t, vec![f64::from(t); 1000].into());
            assert!(
                cache.bytes_used() <= cache.byte_budget(),
                "budget violated after insert {t}: {} > {}",
                cache.bytes_used(),
                cache.byte_budget()
            );
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_single_column_is_not_retained() {
        let mut cache = ColumnCache::with_byte_budget(column_bytes(4));
        cache.insert(1, 1, vec![0.0; 64].into());
        assert!(cache.is_empty());
        assert_eq!(cache.bytes_used(), 0);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut cache = ColumnCache::disabled();
        cache.insert(1, 1, vec![1.0].into());
        assert!(cache.get(1, 1).is_none());
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut cache = ColumnCache::with_byte_budget(budget_for(4, 1));
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(1, 1, vec![1.0].into());
        assert!(cache.get(1, 1).is_some());
        assert!(cache.get(1, 2).is_none());
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn queue_compaction_bounds_memory_under_repeated_hits() {
        let mut cache = ColumnCache::with_byte_budget(budget_for(2, 1));
        cache.insert(1, 1, vec![1.0].into());
        cache.insert(1, 2, vec![2.0].into());
        for _ in 0..10_000 {
            cache.get(1, 1);
            cache.get(1, 2);
        }
        assert!(
            cache.order.len() <= 2 * cache.slots.len().max(1) + 2,
            "stale queue entries must be compacted, got {}",
            cache.order.len()
        );
    }

    #[test]
    fn queue_compaction_survives_a_single_hot_key() {
        // Key 1 sits live at the queue front while key 2 is hit over and
        // over: compaction must still trim the stale entries behind it.
        let mut cache = ColumnCache::with_byte_budget(budget_for(2, 1));
        cache.insert(1, 1, vec![1.0].into());
        cache.insert(1, 2, vec![2.0].into());
        for _ in 0..10_000 {
            cache.get(1, 2);
        }
        assert!(
            cache.order.len() <= 2 * cache.slots.len().max(1) + 2,
            "a hot key must not shield stale queue entries, got {}",
            cache.order.len()
        );
    }

    #[test]
    fn shared_cache_serves_and_stripes_concurrent_sessions() {
        let cache = SharedColumnCache::with_shards(1 << 20, 8);
        assert!(cache.shard_count().is_power_of_two());
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for round in 0..32u32 {
                        let target = (worker * 32 + round) % 16;
                        let expected: Arc<[f64]> = vec![f64::from(target); 8].into();
                        match cache.get(9, target) {
                            Some(column) => assert_eq!(&column[..], &expected[..]),
                            None => cache.insert(9, target, expected),
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 16);
        assert!(cache.bytes_used() <= cache.byte_budget());
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 32);
    }

    #[test]
    fn for_columns_keeps_large_columns_cacheable() {
        // A budget worth 8 columns of a "large" graph: naive 16-way
        // striping would make every stripe too small to hold even one
        // column; for_columns must collapse stripes until they fit.
        let len = 50_000;
        let cache = SharedColumnCache::for_columns(8 * column_bytes(len), len);
        cache.insert(1, 1, vec![0.0; len].into());
        assert!(
            cache.get(1, 1).is_some(),
            "a column the total budget holds 8 of must be cacheable \
             (shards={})",
            cache.shard_count()
        );
        assert!(cache.shard_count() <= 4);
    }

    #[test]
    fn shared_cache_collapses_stripes_for_tiny_budgets() {
        let tiny = SharedColumnCache::new(2 * column_bytes(16));
        assert_eq!(tiny.shard_count(), 1, "tiny budgets must not be slivered");
        let disabled = SharedColumnCache::disabled();
        assert!(!disabled.is_enabled());
        disabled.insert(1, 1, vec![1.0].into());
        assert!(disabled.get(1, 1).is_none());
        assert!(disabled.is_empty());
    }

    #[test]
    fn shared_cache_evicts_within_its_stripes() {
        let cache = SharedColumnCache::with_shards(4 * column_bytes(64), 1);
        for t in 0..32u32 {
            cache.insert(3, t, vec![0.5; 64].into());
        }
        assert!(cache.bytes_used() <= cache.byte_budget());
        assert!(cache.len() <= 4);
        assert!(cache.stats().evictions >= 28);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes_used(), 0);
    }

    #[test]
    fn shared_contexts_warm_each_other() {
        let g = ring(16);
        let params = DhtParams::paper_default();
        let shared = Arc::new(SharedColumnCache::new(1 << 20));
        let mut first = QueryCtx::shared(shared.clone());
        let column = first.backward_column(&g, &params, NodeId(3), 8, WalkEngine::Sparse);
        // A different session over the same shared cache hits immediately.
        let mut second = QueryCtx::shared(shared.clone());
        let again = second.backward_column(&g, &params, NodeId(3), 8, WalkEngine::Sparse);
        assert!(Arc::ptr_eq(&column, &again), "second session must hit");
        assert_eq!(second.column_stats().hits, 1);
        assert_eq!(second.column_stats().misses, 0);
        assert_eq!(shared.stats().misses, 1);
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn fork_shares_the_shared_store_and_isolates_private_ones() {
        let shared = Arc::new(SharedColumnCache::new(1 << 20));
        let ctx = QueryCtx::shared(shared.clone());
        let fork = ctx.fork();
        assert!(Arc::ptr_eq(
            fork.shared_cache().expect("fork keeps the shared cache"),
            &shared
        ));
        let private = QueryCtx::with_byte_budget(1 << 20);
        assert!(private.fork().shared_cache().is_none());
        assert!(
            !private.fork().columns.is_enabled(),
            "fork of private = one-shot"
        );
    }

    #[test]
    fn cached_backward_columns_are_bit_identical_to_fresh_ones() {
        let g = ring(16);
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_byte_budget(1 << 20);
        for &t in &[3u32, 7, 3, 7, 3] {
            let column = ctx.backward_column(&g, &params, NodeId(t), 8, WalkEngine::Sparse);
            let fresh = backward_dht_all_sources(&g, &params, NodeId(t), 8);
            assert_eq!(&column[..], &fresh[..], "target {t}");
        }
        let stats = ctx.column_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn streaming_with_and_without_cache_consumes_identical_sequences() {
        let g = ring(24);
        let params = DhtParams::paper_default();
        let targets: Vec<NodeId> = [0u32, 5, 11, 5, 0, 17, 11].map(NodeId).to_vec();
        let collect = |ctx: &mut QueryCtx, threads: usize| {
            let mut seen: Vec<(u32, Vec<f64>)> = Vec::new();
            ctx.for_each_backward_column(
                &g,
                &params,
                6,
                WalkEngine::Sparse,
                threads,
                &targets,
                |t, col| seen.push((t.0, col.to_vec())),
            );
            seen
        };
        let reference = collect(&mut QueryCtx::one_shot(), 1);
        let pressured: &[fn() -> QueryCtx] = &[
            // Private cache sized for ~3 columns of 24 floats: forces
            // eviction, parity must hold anyway.
            || QueryCtx::with_byte_budget(3 * column_bytes(24)),
            || QueryCtx::shared(Arc::new(SharedColumnCache::new(3 * column_bytes(24)))),
        ];
        for make in pressured {
            for threads in [1usize, 4] {
                let mut warm = make();
                let first = collect(&mut warm, threads);
                let second = collect(&mut warm, threads);
                assert_eq!(first, reference, "threads={threads} cold pass");
                assert_eq!(second, reference, "threads={threads} warm pass");
                assert!(warm.column_stats().hits > 0, "repeats must hit");
            }
        }
    }

    #[test]
    fn contexts_reused_across_graphs_never_cross_serve_columns() {
        // Same parameters, same target id, two different graphs: the cache
        // key folds in Graph::uid, so the second graph must get its own
        // column, not the first one's.
        let g1 = ring(8);
        let g2 = {
            let mut b = GraphBuilder::with_nodes(8);
            b.add_unit_edge(NodeId(0), NodeId(3)).unwrap();
            b.add_unit_edge(NodeId(1), NodeId(3)).unwrap();
            b.build().unwrap()
        };
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_byte_budget(1 << 20);
        for graph in [&g1, &g2, &g1, &g2] {
            let column = ctx.backward_column(graph, &params, NodeId(3), 6, WalkEngine::Sparse);
            let fresh = backward_dht_all_sources(graph, &params, NodeId(3), 6);
            assert_eq!(&column[..], &fresh[..], "graph uid {}", graph.uid());
        }
        // A clone shares contents, so it may (correctly) share cache entries.
        let clone = g1.clone();
        assert_eq!(clone.uid(), g1.uid());
        let hits_before = ctx.column_stats().hits;
        ctx.backward_column(&clone, &params, NodeId(3), 6, WalkEngine::Sparse);
        assert_eq!(ctx.column_stats().hits, hits_before + 1);
    }

    #[test]
    fn y_table_cache_is_bounded() {
        let g = ring(10);
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_byte_budget(1 << 20);
        // One more distinct P set than the capacity: the oldest entry must
        // be evicted, not accumulated.
        for i in 0..=Y_TABLE_CAPACITY as u32 {
            let p = NodeSet::new("P", [NodeId(i % 10), NodeId(i / 10 + 2)]);
            ctx.y_bound_table(&g, &params, &p, 4, WalkEngine::Sparse, 1);
        }
        assert_eq!(ctx.y_tables.len(), Y_TABLE_CAPACITY);
        // The first (least recently used) set was evicted: asking for it
        // again misses and rebuilds.
        let first = NodeSet::new("P", [NodeId(0), NodeId(2)]);
        let (_, misses_before) = ctx.y_table_stats();
        ctx.y_bound_table(&g, &params, &first, 4, WalkEngine::Sparse, 1);
        assert_eq!(ctx.y_table_stats().1, misses_before + 1);
    }

    #[test]
    fn shared_y_store_serves_concurrent_sessions_and_bounds_capacity() {
        let g = ring(12);
        let params = DhtParams::paper_default();
        let store = Arc::new(SharedYTableStore::with_capacity(2));
        // Two sessions sharing the store: the second hits what the first
        // built, and the tables agree with a private rebuild bit-for-bit.
        let mut first = QueryCtx::with_byte_budget(1 << 20).with_shared_y_tables(store.clone());
        let mut second = QueryCtx::with_byte_budget(1 << 20).with_shared_y_tables(store.clone());
        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        let a = first.y_bound_table(&g, &params, &p, 5, WalkEngine::Sparse, 1);
        let b = second.y_bound_table(&g, &params, &p, 5, WalkEngine::Sparse, 1);
        assert!(Arc::ptr_eq(&a, &b), "second session must hit the store");
        assert_eq!(first.y_table_stats(), (0, 1));
        assert_eq!(second.y_table_stats(), (1, 0));
        assert_eq!(store.stats(), (1, 1));
        assert!(first.y_table_resident(&g, &params, &p, 5, WalkEngine::Sparse));

        // Capacity 2: a third distinct P evicts the least recently touched.
        let p2 = NodeSet::new("P2", [NodeId(4)]);
        let p3 = NodeSet::new("P3", [NodeId(7)]);
        first.y_bound_table(&g, &params, &p2, 5, WalkEngine::Sparse, 1);
        // Touch p (now p2 is LRU), then insert p3.
        first.y_bound_table(&g, &params, &p, 5, WalkEngine::Sparse, 1);
        first.y_bound_table(&g, &params, &p3, 5, WalkEngine::Sparse, 1);
        assert_eq!(store.len(), 2);
        assert!(first.y_table_resident(&g, &params, &p, 5, WalkEngine::Sparse));
        assert!(!first.y_table_resident(&g, &params, &p2, 5, WalkEngine::Sparse));
        assert!(first.y_table_resident(&g, &params, &p3, 5, WalkEngine::Sparse));

        // clear() through any sharing context clears the store.
        first.clear();
        assert!(store.is_empty());
        assert!(!second.y_table_resident(&g, &params, &p, 5, WalkEngine::Sparse));
    }

    #[test]
    fn shared_y_store_survives_concurrent_hammering_under_capacity_one() {
        // Many threads race get/build/insert/evict on a capacity-1 store;
        // every returned table must equal the private rebuild bit-for-bit.
        let g = ring(10);
        let params = DhtParams::paper_default();
        let store = Arc::new(SharedYTableStore::with_capacity(1));
        let references: Vec<Arc<YBoundTable>> = (0..3u32)
            .map(|i| {
                QueryCtx::one_shot().y_bound_table(
                    &g,
                    &params,
                    &NodeSet::new("P", [NodeId(i), NodeId(i + 3)]),
                    4,
                    WalkEngine::Sparse,
                    1,
                )
            })
            .collect();
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let store = store.clone();
                let g = &g;
                let params = &params;
                let references = &references;
                scope.spawn(move || {
                    let mut ctx = QueryCtx::with_byte_budget(1 << 20).with_shared_y_tables(store);
                    for round in 0..12u32 {
                        let i = (worker + round) % 3;
                        let p = NodeSet::new("P", [NodeId(i), NodeId(i + 3)]);
                        let table = ctx.y_bound_table(g, params, &p, 4, WalkEngine::Sparse, 1);
                        let reference = &references[i as usize];
                        for q in g.nodes() {
                            for l in 0..=4 {
                                assert!(
                                    table.bound(l, q) == reference.bound(l, q),
                                    "worker {worker} round {round} diverged"
                                );
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(store.len(), 1, "capacity must hold under races");
    }

    #[test]
    fn forked_contexts_share_the_y_store() {
        let shared = Arc::new(SharedColumnCache::new(1 << 20));
        let store = Arc::new(SharedYTableStore::new());
        let ctx = QueryCtx::shared(shared).with_shared_y_tables(store.clone());
        let fork = ctx.fork();
        assert!(Arc::ptr_eq(
            fork.shared_y_store().expect("fork keeps the y store"),
            &store
        ));
        // A shared-column context without a Y store forks without one too.
        let bare = QueryCtx::shared(Arc::new(SharedColumnCache::new(1 << 20)));
        assert!(bare.fork().shared_y_store().is_none());
    }

    #[test]
    fn y_tables_are_cached_per_source_set() {
        let g = ring(12);
        let params = DhtParams::paper_default();
        let p1 = NodeSet::new("P1", [NodeId(0), NodeId(1)]);
        let p2 = NodeSet::new("P2", [NodeId(4), NodeId(5)]);
        let mut ctx = QueryCtx::with_byte_budget(1 << 20);
        let a = ctx.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        let b = ctx.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share the table");
        let c = ctx.y_bound_table(&g, &params, &p2, 6, WalkEngine::Sparse, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(ctx.y_table_stats(), (1, 2));
        // one-shot contexts rebuild every time
        let mut cold = QueryCtx::one_shot();
        let d = cold.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        let e = cold.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        assert!(!Arc::ptr_eq(&d, &e));
        for q in g.nodes() {
            for l in 0..=6 {
                assert_eq!(a.bound(l, q), d.bound(l, q));
            }
        }
    }
}

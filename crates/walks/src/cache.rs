//! Graph-lifetime query state: the backward-column LRU cache and the
//! [`QueryCtx`] handle the join layers thread through a query session.
//!
//! The paper's backward algorithms (B-BJ, B-IDJ) spend almost all of their
//! time in `backWalk(G, q, l)` passes — `O(l·|E_G|)` each — and a query
//! stream with repeated targets (the norm for a service answering many
//! users against one graph) recomputes identical columns over and over.
//! This module caches them:
//!
//! * [`ColumnCache`] — a bounded LRU of score columns keyed by
//!   `(signature, target)`, where the signature folds in everything else
//!   that determines the column (DHT parameters, walk depth, engine — see
//!   [`dht_column_sig`] — or an arbitrary measure signature for the generic
//!   joins of `dht-measures`).  A hit turns an `O(l·|E_G|)` walk into a
//!   shared-pointer clone.
//! * [`QueryCtx`] — the per-session bundle the join algorithms take
//!   `&mut` internally: a [`ScratchPool`] of walk buffers, the column
//!   cache, and lazily built [`YBoundTable`]s keyed by
//!   `(params, d, engine, P)`.
//!
//! Columns are deterministic functions of their key (every walk engine is
//! input-deterministic), so replaying a cached column is bit-identical to
//! recomputing it: joins answered through a warm context return exactly the
//! pairs a cold one produces.  `tests/session_cache_parity_proptest.rs`
//! pins this.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use dht_graph::{Graph, NodeId, NodeSet};

use crate::backward::backward_dht_into;
use crate::bounds::YBoundTable;
use crate::frontier::{ScratchPool, WalkEngine, WalkScratch};
use crate::params::DhtParams;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The column signature of a truncated backward DHT computation: two columns
/// share a signature exactly when they were produced by the same parameters,
/// walk depth and propagation engine (so their values are bit-identical for
/// equal targets).
pub fn dht_column_sig(params: &DhtParams, d: usize, engine: WalkEngine) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"dht");
    h = fnv1a(h, &params.alpha.to_bits().to_le_bytes());
    h = fnv1a(h, &params.beta.to_bits().to_le_bytes());
    h = fnv1a(h, &params.lambda.to_bits().to_le_bytes());
    h = fnv1a(h, &(d as u64).to_le_bytes());
    fnv1a(h, engine.name().as_bytes())
}

/// Builds a column signature from a tag string and a list of 64-bit words
/// (typically parameter bit patterns) — the hook measures outside this
/// crate use to share the [`ColumnCache`] (see
/// `dht-measures`' `ProximityMeasure::column_signature`).
pub fn custom_column_sig(tag: &str, words: &[u64]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, tag.as_bytes());
    for &w in words {
        h = fnv1a(h, &w.to_le_bytes());
    }
    h
}

/// Folds the graph's process-unique identity ([`Graph::uid`]) into a column
/// signature, so a context reused across graphs can never serve a column
/// computed on a different graph.  Applied internally by every cached
/// [`QueryCtx`] operation.
fn graph_scoped_sig(graph: &Graph, sig: u64) -> u64 {
    custom_column_sig("graph", &[graph.uid(), sig])
}

/// Order-sensitive signature of a node set's membership, used to key cached
/// [`YBoundTable`]s (the table depends on the seed set `P`).
pub fn node_set_sig(set: &NodeSet) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(set.len() as u64).to_le_bytes());
    for node in set.iter() {
        h = fnv1a(h, &node.0.to_le_bytes());
    }
    h
}

/// Hit / miss / eviction counters of a [`ColumnCache`] (cumulative since
/// construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh computation.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct CacheSlot {
    /// LRU stamp of the slot's most recent touch; stale queue entries whose
    /// stamp no longer matches are skipped during eviction.
    stamp: u64,
    column: Arc<[f64]>,
}

/// A bounded LRU cache of score columns keyed by `(signature, target)`.
///
/// Eviction is strict LRU via touch stamps with a lazily compacted queue:
/// `get` and `insert` are `O(1)` amortised.  A capacity of `0` disables the
/// cache entirely (every lookup misses, nothing is stored) — that is what
/// the one-shot join wrappers use, so their behaviour and allocation profile
/// match the pre-session code paths.
#[derive(Debug, Default)]
pub struct ColumnCache {
    capacity: usize,
    slots: HashMap<(u64, u32), CacheSlot>,
    /// `(stamp, key)` pairs in touch order; entries are stale when the
    /// slot's current stamp differs.
    order: VecDeque<(u64, (u64, u32))>,
    tick: u64,
    stats: CacheStats,
}

impl ColumnCache {
    /// A cache holding at most `capacity` columns.
    pub fn new(capacity: usize) -> Self {
        ColumnCache {
            capacity,
            ..ColumnCache::default()
        }
    }

    /// A disabled cache (capacity 0): every lookup misses, inserts are
    /// dropped.
    pub fn disabled() -> Self {
        ColumnCache::new(0)
    }

    /// The configured capacity in columns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of columns currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache currently holds no columns.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Cumulative hit / miss / eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up the column for `(sig, target)`, refreshing its LRU position
    /// on a hit.
    pub fn get(&mut self, sig: u64, target: u32) -> Option<Arc<[f64]>> {
        if self.capacity == 0 {
            self.stats.misses += 1;
            return None;
        }
        let key = (sig, target);
        match self.slots.get_mut(&key) {
            Some(slot) => {
                self.tick += 1;
                slot.stamp = self.tick;
                self.order.push_back((self.tick, key));
                self.stats.hits += 1;
                let column = slot.column.clone();
                self.compact();
                Some(column)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) the column for `(sig, target)`, evicting the
    /// least recently used entry when full.
    pub fn insert(&mut self, sig: u64, target: u32, column: Arc<[f64]>) {
        if self.capacity == 0 {
            return;
        }
        let key = (sig, target);
        self.tick += 1;
        let stamp = self.tick;
        self.order.push_back((stamp, key));
        if self
            .slots
            .insert(key, CacheSlot { stamp, column })
            .is_none()
            && self.slots.len() > self.capacity
        {
            self.evict_one();
        }
        self.compact();
    }

    /// Drops everything (counters are kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.order.clear();
    }

    fn evict_one(&mut self) {
        while let Some((stamp, key)) = self.order.pop_front() {
            let live = self.slots.get(&key).is_some_and(|slot| slot.stamp == stamp);
            if live {
                self.slots.remove(&key);
                self.stats.evictions += 1;
                return;
            }
        }
    }

    /// Keeps the lazily invalidated queue from growing without bound: stale
    /// prefix entries are dropped whenever the queue is more than twice the
    /// live set.
    fn compact(&mut self) {
        while self.order.len() > 2 * self.slots.len().max(1) {
            let Some(&(stamp, key)) = self.order.front() else {
                return;
            };
            let live = self.slots.get(&key).is_some_and(|slot| slot.stamp == stamp);
            if live {
                return;
            }
            self.order.pop_front();
        }
    }
}

/// Per-session query state threaded through every join layer: pooled walk
/// scratches, the backward-column LRU and lazily built Y-bound tables.
///
/// A context built with [`QueryCtx::one_shot`] (what the free-function join
/// wrappers use) disables the caches, reproducing the stateless behaviour;
/// a context built with [`QueryCtx::with_capacity`] keeps columns and
/// Y-tables warm across queries, which is what makes repeated-target query
/// streams cheap.  Answers are bit-identical either way.
#[derive(Debug, Default)]
pub struct QueryCtx {
    /// Pool of reusable walk scratches shared by the worker threads of the
    /// joins running through this context.
    pub pool: ScratchPool,
    columns: ColumnCache,
    /// Cached Y-bound tables with their LRU touch stamps; bounded by
    /// [`Y_TABLE_CAPACITY`] so long-lived sessions answering B-IDJ-Y
    /// queries over many distinct `P` sets cannot grow without limit.
    y_tables: HashMap<(u64, u64), (u64, Arc<YBoundTable>)>,
    y_tick: u64,
    y_hits: u64,
    y_misses: u64,
}

/// Maximum number of Y-bound tables a context keeps (each is
/// `O(d·|V_G|)` floats — far heavier than a column, hence the small fixed
/// bound with LRU eviction).
const Y_TABLE_CAPACITY: usize = 16;

impl QueryCtx {
    /// A context whose column cache holds up to `capacity` columns.
    pub fn with_capacity(capacity: usize) -> Self {
        QueryCtx {
            columns: ColumnCache::new(capacity),
            ..QueryCtx::default()
        }
    }

    /// A context with all caching disabled — the free-function join
    /// wrappers use this, so a one-shot call behaves exactly like the
    /// stateless implementation it replaced.
    pub fn one_shot() -> Self {
        QueryCtx::with_capacity(0)
    }

    /// The backward-column cache (for stats inspection).
    pub fn column_cache(&self) -> &ColumnCache {
        &self.columns
    }

    /// Cumulative column-cache counters.
    pub fn column_stats(&self) -> CacheStats {
        self.columns.stats()
    }

    /// `(hits, misses)` of the Y-bound-table cache.
    pub fn y_table_stats(&self) -> (u64, u64) {
        (self.y_hits, self.y_misses)
    }

    /// Drops all cached columns and tables, keeping allocations and
    /// counters.
    pub fn clear(&mut self) {
        self.columns.clear();
        self.y_tables.clear();
    }

    /// The truncated backward DHT column `h_d(·, target)` for every source,
    /// served from the cache when possible.
    pub fn backward_column(
        &mut self,
        graph: &Graph,
        params: &DhtParams,
        target: NodeId,
        d: usize,
        engine: WalkEngine,
    ) -> Arc<[f64]> {
        let sig = graph_scoped_sig(graph, dht_column_sig(params, d, engine));
        if let Some(column) = self.columns.get(sig, target.0) {
            return column;
        }
        let mut scratch = self.pool.acquire();
        let mut scores = Vec::new();
        backward_dht_into(graph, params, target, d, engine, &mut scratch, &mut scores);
        let column: Arc<[f64]> = scores.into();
        self.columns.insert(sig, target.0, column.clone());
        column
    }

    /// Streams the backward DHT column of every target in `targets` (walk
    /// depth `d`) to `consume`, **in target order** — the shared backbone of
    /// B-BJ and both B-IDJ variants, now cache-aware.
    ///
    /// Cache misses are computed in parallel chunks on up to `threads`
    /// workers (bounding peak memory to one chunk of `|V_G|`-sized columns)
    /// with scratches drawn from the context's pool; hits are served
    /// without any walk.  Consumption always runs in target order on the
    /// calling thread, so callers observe exactly the serial sequence at
    /// every thread count and cache temperature.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_backward_column(
        &mut self,
        graph: &Graph,
        params: &DhtParams,
        d: usize,
        engine: WalkEngine,
        threads: usize,
        targets: &[NodeId],
        consume: impl FnMut(NodeId, &[f64]),
    ) {
        let sig = dht_column_sig(params, d, engine);
        self.for_each_column_cached(
            graph,
            sig,
            threads,
            targets,
            |scratch, target| {
                let mut scores = Vec::new();
                backward_dht_into(graph, params, target, d, engine, scratch, &mut scores);
                scores
            },
            consume,
        );
    }

    /// Generic cached column streaming: like
    /// [`QueryCtx::for_each_backward_column`] but with an arbitrary column
    /// producer and signature — the entry point the generic measure joins
    /// of `dht-measures` route through.
    ///
    /// `produce` must be a pure function of `(graph, sig, target)`; the
    /// scratch it receives is a pooled buffer it may use (or ignore)
    /// without affecting results.  The graph's [`Graph::uid`] is folded
    /// into the cache key, so contexts reused across graphs stay correct.
    pub fn for_each_column_cached(
        &mut self,
        graph: &Graph,
        sig: u64,
        threads: usize,
        targets: &[NodeId],
        produce: impl Fn(&mut WalkScratch, NodeId) -> Vec<f64> + Sync,
        mut consume: impl FnMut(NodeId, &[f64]),
    ) {
        let sig = graph_scoped_sig(graph, sig);
        let pool = &self.pool;
        if !self.columns.is_enabled() {
            // Uncached fast path: identical to the pre-session streamer.
            dht_par::stream_map_ordered(
                threads,
                targets,
                || pool.acquire(),
                |scratch, &target| produce(scratch, target),
                |&target, column| consume(target, &column),
            );
            return;
        }
        /// Chunk length per parallel round, in items per worker (matches
        /// `dht_par::stream_map_ordered`).
        const ITEMS_PER_WORKER_ROUND: usize = 4;
        let workers = dht_par::effective_threads(threads).max(1);
        for chunk in targets.chunks(workers * ITEMS_PER_WORKER_ROUND) {
            let mut slots: Vec<Option<Arc<[f64]>>> = chunk
                .iter()
                .map(|&target| self.columns.get(sig, target.0))
                .collect();
            let missing: Vec<(usize, NodeId)> = slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_none())
                .map(|(i, _)| (i, chunk[i]))
                .collect();
            let computed = dht_par::parallel_map_init(
                threads,
                &missing,
                || pool.acquire(),
                |scratch, _, &(_, target)| -> Arc<[f64]> { produce(scratch, target).into() },
            );
            for (&(slot_index, target), column) in missing.iter().zip(computed) {
                self.columns.insert(sig, target.0, column.clone());
                slots[slot_index] = Some(column);
            }
            for (slot, &target) in slots.iter().zip(chunk) {
                let column = slot.as_ref().expect("every slot filled by hit or compute");
                consume(target, column);
            }
        }
    }

    /// The `Y_l⁺(P, q)` bound table for source set `p` at depth `d`, built
    /// lazily and cached per `(params, d, engine, P)`.
    ///
    /// When caching is disabled the table is rebuilt on every call, exactly
    /// as the stateless B-IDJ-Y did.
    pub fn y_bound_table(
        &mut self,
        graph: &Graph,
        params: &DhtParams,
        p: &NodeSet,
        d: usize,
        engine: WalkEngine,
        threads: usize,
    ) -> Arc<YBoundTable> {
        let key = (
            graph_scoped_sig(graph, dht_column_sig(params, d, engine)),
            node_set_sig(p),
        );
        if self.columns.is_enabled() {
            if let Some((stamp, table)) = self.y_tables.get_mut(&key) {
                self.y_tick += 1;
                *stamp = self.y_tick;
                self.y_hits += 1;
                return table.clone();
            }
        }
        self.y_misses += 1;
        let mut scratch = self.pool.acquire();
        let table = Arc::new(YBoundTable::new_with(
            graph,
            params,
            p,
            d,
            engine,
            threads,
            &mut scratch,
        ));
        if self.columns.is_enabled() {
            self.y_tick += 1;
            self.y_tables.insert(key, (self.y_tick, table.clone()));
            if self.y_tables.len() > Y_TABLE_CAPACITY {
                // Tiny map (≤ 17 entries): a linear scan for the oldest
                // stamp is cheaper than any auxiliary structure.
                if let Some(&oldest) = self
                    .y_tables
                    .iter()
                    .min_by_key(|(_, &(stamp, _))| stamp)
                    .map(|(key, _)| key)
                {
                    self.y_tables.remove(&oldest);
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward_dht_all_sources;
    use dht_graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::with_nodes(n);
        for i in 0..n as u32 {
            b.add_undirected_edge(NodeId(i), NodeId((i + 1) % n as u32), 1.0)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn signatures_separate_params_depth_and_engine() {
        let a = DhtParams::paper_default();
        let b = DhtParams::dht_e();
        let sig = |p, d, e| dht_column_sig(p, d, e);
        assert_ne!(
            sig(&a, 8, WalkEngine::Sparse),
            sig(&b, 8, WalkEngine::Sparse)
        );
        assert_ne!(
            sig(&a, 8, WalkEngine::Sparse),
            sig(&a, 4, WalkEngine::Sparse)
        );
        assert_ne!(
            sig(&a, 8, WalkEngine::Sparse),
            sig(&a, 8, WalkEngine::Dense)
        );
        assert_eq!(sig(&a, 8, WalkEngine::Auto), sig(&a, 8, WalkEngine::Auto));
    }

    #[test]
    fn node_set_signature_is_order_and_content_sensitive() {
        let a = NodeSet::new("A", [NodeId(1), NodeId(2), NodeId(3)]);
        let b = NodeSet::new("B", [NodeId(3), NodeId(2), NodeId(1)]);
        let c = NodeSet::new("C", [NodeId(1), NodeId(2), NodeId(3)]);
        assert_ne!(node_set_sig(&a), node_set_sig(&b));
        assert_eq!(node_set_sig(&a), node_set_sig(&c));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_column() {
        let mut cache = ColumnCache::new(2);
        let col = |x: f64| -> Arc<[f64]> { vec![x].into() };
        cache.insert(1, 10, col(1.0));
        cache.insert(1, 20, col(2.0));
        assert!(cache.get(1, 10).is_some()); // refresh 10: 20 becomes LRU
        cache.insert(1, 30, col(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, 20).is_none(), "20 was evicted");
        assert!(cache.get(1, 10).is_some());
        assert!(cache.get(1, 30).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut cache = ColumnCache::disabled();
        cache.insert(1, 1, vec![1.0].into());
        assert!(cache.get(1, 1).is_none());
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut cache = ColumnCache::new(4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(1, 1, vec![1.0].into());
        assert!(cache.get(1, 1).is_some());
        assert!(cache.get(1, 2).is_none());
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn queue_compaction_bounds_memory_under_repeated_hits() {
        let mut cache = ColumnCache::new(2);
        cache.insert(1, 1, vec![1.0].into());
        cache.insert(1, 2, vec![2.0].into());
        for _ in 0..10_000 {
            cache.get(1, 1);
            cache.get(1, 2);
        }
        assert!(
            cache.order.len() <= 2 * cache.slots.len().max(1) + 2,
            "stale queue entries must be compacted, got {}",
            cache.order.len()
        );
    }

    #[test]
    fn cached_backward_columns_are_bit_identical_to_fresh_ones() {
        let g = ring(16);
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_capacity(8);
        for &t in &[3u32, 7, 3, 7, 3] {
            let column = ctx.backward_column(&g, &params, NodeId(t), 8, WalkEngine::Sparse);
            let fresh = backward_dht_all_sources(&g, &params, NodeId(t), 8);
            assert_eq!(&column[..], &fresh[..], "target {t}");
        }
        let stats = ctx.column_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn streaming_with_and_without_cache_consumes_identical_sequences() {
        let g = ring(24);
        let params = DhtParams::paper_default();
        let targets: Vec<NodeId> = [0u32, 5, 11, 5, 0, 17, 11].map(NodeId).to_vec();
        let collect = |ctx: &mut QueryCtx, threads: usize| {
            let mut seen: Vec<(u32, Vec<f64>)> = Vec::new();
            ctx.for_each_backward_column(
                &g,
                &params,
                6,
                WalkEngine::Sparse,
                threads,
                &targets,
                |t, col| seen.push((t.0, col.to_vec())),
            );
            seen
        };
        let reference = collect(&mut QueryCtx::one_shot(), 1);
        for threads in [1usize, 4] {
            let mut warm = QueryCtx::with_capacity(3); // forces eviction
            let first = collect(&mut warm, threads);
            let second = collect(&mut warm, threads);
            assert_eq!(first, reference, "threads={threads} cold pass");
            assert_eq!(second, reference, "threads={threads} warm pass");
            assert!(warm.column_stats().hits > 0, "repeats must hit");
        }
    }

    #[test]
    fn contexts_reused_across_graphs_never_cross_serve_columns() {
        // Same parameters, same target id, two different graphs: the cache
        // key folds in Graph::uid, so the second graph must get its own
        // column, not the first one's.
        let g1 = ring(8);
        let g2 = {
            let mut b = GraphBuilder::with_nodes(8);
            b.add_unit_edge(NodeId(0), NodeId(3)).unwrap();
            b.add_unit_edge(NodeId(1), NodeId(3)).unwrap();
            b.build().unwrap()
        };
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_capacity(8);
        for graph in [&g1, &g2, &g1, &g2] {
            let column = ctx.backward_column(graph, &params, NodeId(3), 6, WalkEngine::Sparse);
            let fresh = backward_dht_all_sources(graph, &params, NodeId(3), 6);
            assert_eq!(&column[..], &fresh[..], "graph uid {}", graph.uid());
        }
        // A clone shares contents, so it may (correctly) share cache entries.
        let clone = g1.clone();
        assert_eq!(clone.uid(), g1.uid());
        let hits_before = ctx.column_stats().hits;
        ctx.backward_column(&clone, &params, NodeId(3), 6, WalkEngine::Sparse);
        assert_eq!(ctx.column_stats().hits, hits_before + 1);
    }

    #[test]
    fn y_table_cache_is_bounded() {
        let g = ring(10);
        let params = DhtParams::paper_default();
        let mut ctx = QueryCtx::with_capacity(8);
        // One more distinct P set than the capacity: the oldest entry must
        // be evicted, not accumulated.
        for i in 0..=Y_TABLE_CAPACITY as u32 {
            let p = NodeSet::new("P", [NodeId(i % 10), NodeId(i / 10 + 2)]);
            ctx.y_bound_table(&g, &params, &p, 4, WalkEngine::Sparse, 1);
        }
        assert_eq!(ctx.y_tables.len(), Y_TABLE_CAPACITY);
        // The first (least recently used) set was evicted: asking for it
        // again misses and rebuilds.
        let first = NodeSet::new("P", [NodeId(0), NodeId(2)]);
        let (_, misses_before) = ctx.y_table_stats();
        ctx.y_bound_table(&g, &params, &first, 4, WalkEngine::Sparse, 1);
        assert_eq!(ctx.y_table_stats().1, misses_before + 1);
    }

    #[test]
    fn y_tables_are_cached_per_source_set() {
        let g = ring(12);
        let params = DhtParams::paper_default();
        let p1 = NodeSet::new("P1", [NodeId(0), NodeId(1)]);
        let p2 = NodeSet::new("P2", [NodeId(4), NodeId(5)]);
        let mut ctx = QueryCtx::with_capacity(8);
        let a = ctx.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        let b = ctx.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share the table");
        let c = ctx.y_bound_table(&g, &params, &p2, 6, WalkEngine::Sparse, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(ctx.y_table_stats(), (1, 2));
        // one-shot contexts rebuild every time
        let mut cold = QueryCtx::one_shot();
        let d = cold.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        let e = cold.y_bound_table(&g, &params, &p1, 6, WalkEngine::Sparse, 1);
        assert!(!Arc::ptr_eq(&d, &e));
        for q in g.nodes() {
            for l in 0..=6 {
                assert_eq!(a.bound(l, q), d.bound(l, q));
            }
        }
    }
}

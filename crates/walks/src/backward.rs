//! Backward walk engine (`backWalk` in the paper, Section VI-A).
//!
//! For a fixed *target* `q`, one pass of the backward recurrence produces the
//! first-hit probabilities `P_i(u, q)` for **every** source `u` at once:
//!
//! ```text
//! P_1(u, q) = p_uq
//! P_i(u, q) = Σ_{v ∈ O_u, v ≠ q} p_uv · P_{i-1}(v, q)     (i > 1)
//! ```
//!
//! Excluding `v = q` for `i > 1` is what makes these *first*-hit
//! probabilities: walks that already passed through `q` are not continued.
//! A full `d`-step pass costs `O(d·|E_G|)`, which is `O(|P|)` times cheaper
//! than evaluating the same scores with forward walks — this asymmetry is
//! the entire point of the backward 2-way join algorithms (B-BJ, B-IDJ).
//!
//! Propagation runs on the sparse-frontier kernel of [`crate::frontier`]:
//! the step-`i` support of `P_i(·, q)` is the `i`-hop in-neighbourhood of
//! `q`, which is small for the first few steps, so the sparse engine pushes
//! mass through the reverse adjacency index instead of pulling through a
//! full `O(|V| + |E|)` sweep.  [`WalkEngine::Dense`] reproduces the seed's
//! sweep bit for bit.

use dht_graph::{Graph, NodeId};

use crate::frontier::{WalkEngine, WalkScratch};
use crate::params::DhtParams;

/// Incremental backward walk towards a fixed target.  Each call to
/// [`BackwardWalk::step`] advances one step and exposes `P_i(u, target)` for
/// all `u` via [`BackwardWalk::current`].
#[derive(Debug, Clone)]
pub struct BackwardWalk<'g> {
    graph: &'g Graph,
    target: NodeId,
    engine: WalkEngine,
    scratch: WalkScratch,
    steps_taken: usize,
}

impl<'g> BackwardWalk<'g> {
    /// Prepares a backward walk towards `target` with the default engine.
    /// No steps are taken yet.
    pub fn new(graph: &'g Graph, target: NodeId) -> Self {
        Self::with_engine(graph, target, WalkEngine::default())
    }

    /// Prepares a backward walk with an explicit propagation engine.
    pub fn with_engine(graph: &'g Graph, target: NodeId, engine: WalkEngine) -> Self {
        let mut scratch = WalkScratch::new();
        // backProb[q] = 1: at "step 0" only the target itself has hit the
        // target.  The first step then yields P_1(u,q) = p_uq.
        scratch.begin(graph.node_count(), [target]);
        BackwardWalk {
            graph,
            target,
            engine,
            scratch,
            steps_taken: 0,
        }
    }

    /// The target node of the walk.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Number of steps performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// `P_i(u, target)` for all `u`, where `i` is the number of steps taken.
    /// Before the first step this is the indicator vector of the target.
    pub fn current(&self) -> &[f64] {
        self.scratch.current()
    }

    /// Whether no probability mass is left to propagate (all remaining
    /// `P_i(·, target)` are zero).  Conservative in dense mode.
    pub fn is_exhausted(&self) -> bool {
        self.scratch.is_exhausted()
    }

    /// Advances the walk by one step.  After the call, [`Self::current`]
    /// holds `P_{i}(·, target)` for the new step count `i`.
    pub fn step(&mut self) {
        // For i > 1 walks must not pass through the target again.
        let exclude_target = self.steps_taken >= 1;
        self.scratch
            .step_backward(self.graph, self.target, exclude_target, self.engine);
        self.steps_taken += 1;
    }

    /// Runs `extra` additional steps, accumulating the discounted score of
    /// every source into `scores` (which must have length `|V_G|`):
    /// `scores[u] += α · Σ λ^i · P_i(u, target)` over the newly taken steps.
    pub fn accumulate(&mut self, params: &DhtParams, extra: usize, scores: &mut [f64]) {
        for _ in 0..extra {
            if self.is_exhausted() {
                self.steps_taken += 1;
                continue;
            }
            self.step();
            let discount = params.discount(self.steps_taken);
            self.scratch.for_each_nonzero(|u, p| {
                scores[u] += discount * p;
            });
        }
    }
}

/// `backWalk(G, q, d)` into a caller-provided output vector: the truncated
/// DHT score `h_d(u, q)` for **every** node `u`, computed with one backward
/// pass on a reused scratch.  This is the zero-allocation inner loop of
/// B-BJ / B-IDJ.
///
/// The entry for `u = q` is set to `params.self_score()` by convention
/// (`h(v, v) = 0` for DHT_λ) and is never used by the join algorithms.
pub fn backward_dht_into(
    graph: &Graph,
    params: &DhtParams,
    target: NodeId,
    d: usize,
    engine: WalkEngine,
    scratch: &mut WalkScratch,
    scores: &mut Vec<f64>,
) {
    let n = graph.node_count();
    scores.clear();
    scores.resize(n, 0.0);
    scratch.begin(n, [target]);
    for i in 1..=d {
        if scratch.is_exhausted() {
            break;
        }
        scratch.step_backward(graph, target, i > 1, engine);
        let discount = params.discount(i);
        scratch.for_each_nonzero(|u, p| {
            scores[u] += discount * p;
        });
    }
    for s in scores.iter_mut() {
        *s += params.beta;
    }
    if target.index() < n {
        scores[target.index()] = params.self_score();
    }
}

/// `backWalk(G, q, d)`: the truncated DHT score `h_d(u, q)` for **every**
/// node `u` of the graph, computed with one backward pass.
pub fn backward_dht_all_sources(
    graph: &Graph,
    params: &DhtParams,
    target: NodeId,
    d: usize,
) -> Vec<f64> {
    let mut scores = Vec::new();
    backward_dht_into(
        graph,
        params,
        target,
        d,
        WalkEngine::default(),
        &mut WalkScratch::new(),
        &mut scores,
    );
    scores
}

/// Per-step first-hit probabilities towards `target` for every source node:
/// entry `[i-1][u] = P_i(u, target)`.
pub fn backward_hitting_probabilities(graph: &Graph, target: NodeId, d: usize) -> Vec<Vec<f64>> {
    let mut walk = BackwardWalk::new(graph, target);
    let mut out = Vec::with_capacity(d);
    for _ in 0..d {
        walk.step();
        out.push(walk.current().to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::{forward_dht, hitting_probabilities};
    use dht_graph::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    fn path3() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_unit_edge(NodeId(1), NodeId(2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn backward_matches_forward_on_triangle() {
        let g = triangle();
        let d = 8;
        let back = backward_hitting_probabilities(&g, NodeId(1), d);
        for u in [0u32, 2u32] {
            let fwd = hitting_probabilities(&g, NodeId(u), NodeId(1), d);
            for i in 0..d {
                assert!(
                    (back[i][u as usize] - fwd[i]).abs() < 1e-12,
                    "step {i} source {u}: backward {} vs forward {}",
                    back[i][u as usize],
                    fwd[i]
                );
            }
        }
    }

    #[test]
    fn backward_dht_matches_forward_dht() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let d = 8;
        let scores = backward_dht_all_sources(&g, &params, NodeId(2), d);
        for u in [0u32, 1u32] {
            let f = forward_dht(&g, &params, NodeId(u), NodeId(2), d);
            assert!((scores[u as usize] - f).abs() < 1e-12);
        }
    }

    #[test]
    fn directed_path_only_upstream_nodes_score() {
        let g = path3();
        let params = DhtParams::paper_default();
        let scores = backward_dht_all_sources(&g, &params, NodeId(2), 8);
        assert!(scores[0] > params.min_score());
        assert!(scores[1] > scores[0], "closer node scores higher");
        // node 2 is the target itself: the h(v,v) = 0 convention.
        assert_eq!(scores[2], params.self_score());
    }

    #[test]
    fn self_pair_convention_agrees_with_forward_engine() {
        let g = triangle();
        for params in [DhtParams::paper_default(), DhtParams::dht_e()] {
            let scores = backward_dht_all_sources(&g, &params, NodeId(1), 8);
            assert_eq!(scores[1], params.self_score());
            assert_eq!(scores[1], forward_dht(&g, &params, NodeId(1), NodeId(1), 8));
        }
    }

    #[test]
    fn unreachable_sources_score_beta() {
        let g = path3();
        let params = DhtParams::paper_default();
        // target 0 is unreachable from 1 and 2
        let scores = backward_dht_all_sources(&g, &params, NodeId(0), 8);
        assert_eq!(scores[1], params.min_score());
        assert_eq!(scores[2], params.min_score());
    }

    #[test]
    fn first_step_equals_transition_probability() {
        let g = triangle();
        let back = backward_hitting_probabilities(&g, NodeId(0), 1);
        assert!((back[0][1] - 0.5).abs() < 1e-12);
        assert!((back[0][2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn walks_do_not_pass_through_the_target() {
        // In the triangle, P_2(2, 0) must only count 2 -> 1 -> 0 (prob 1/4),
        // not 2 -> 0 -> ... which already hit at step 1.
        let g = triangle();
        let back = backward_hitting_probabilities(&g, NodeId(0), 2);
        assert!((back[1][2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn incremental_accumulate_matches_batch() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let mut walk = BackwardWalk::new(&g, NodeId(1));
        let mut scores = vec![0.0; g.node_count()];
        walk.accumulate(&params, 3, &mut scores);
        walk.accumulate(&params, 5, &mut scores);
        for s in scores.iter_mut() {
            *s += params.beta;
        }
        let batch = backward_dht_all_sources(&g, &params, NodeId(1), 8);
        for u in [0usize, 2usize] {
            assert!((scores[u] - batch[u]).abs() < 1e-12);
        }
        assert_eq!(walk.steps_taken(), 8);
    }

    #[test]
    fn pooled_backward_scores_match_fresh_ones() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let mut scratch = WalkScratch::new();
        let mut scores = Vec::new();
        for target in [0u32, 1, 2, 0, 2] {
            backward_dht_into(
                &g,
                &params,
                NodeId(target),
                8,
                WalkEngine::default(),
                &mut scratch,
                &mut scores,
            );
            let fresh = backward_dht_all_sources(&g, &params, NodeId(target), 8);
            assert_eq!(scores, fresh, "scratch reuse changed target {target}");
        }
    }

    #[test]
    fn all_engines_agree_on_backward_scores() {
        let g = triangle();
        let params = DhtParams::dht_lambda(0.4);
        let mut scratch = WalkScratch::new();
        let mut dense = Vec::new();
        let mut other = Vec::new();
        for target in g.nodes() {
            backward_dht_into(
                &g,
                &params,
                target,
                8,
                WalkEngine::Dense,
                &mut scratch,
                &mut dense,
            );
            for engine in [WalkEngine::Sparse, WalkEngine::Auto] {
                backward_dht_into(&g, &params, target, 8, engine, &mut scratch, &mut other);
                for (a, b) in dense.iter().zip(other.iter()) {
                    assert!((a - b).abs() < 1e-12, "{engine:?} target {target:?}");
                }
            }
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let g = triangle();
        let back = backward_hitting_probabilities(&g, NodeId(2), 20);
        for step in &back {
            for &p in step {
                assert!((0.0..=1.0 + 1e-12).contains(&p));
            }
        }
        // cumulative first-hit probability per source also stays <= 1
        for u in 0..3 {
            let total: f64 = back.iter().map(|s| s[u]).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }
}

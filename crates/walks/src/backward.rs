//! Backward walk engine (`backWalk` in the paper, Section VI-A).
//!
//! For a fixed *target* `q`, one pass of the backward recurrence produces the
//! first-hit probabilities `P_i(u, q)` for **every** source `u` at once:
//!
//! ```text
//! P_1(u, q) = p_uq
//! P_i(u, q) = Σ_{v ∈ O_u, v ≠ q} p_uv · P_{i-1}(v, q)     (i > 1)
//! ```
//!
//! Excluding `v = q` for `i > 1` is what makes these *first*-hit
//! probabilities: walks that already passed through `q` are not continued.
//! A full `d`-step pass costs `O(d·|E_G|)`, which is `O(|P|)` times cheaper
//! than evaluating the same scores with forward walks — this asymmetry is
//! the entire point of the backward 2-way join algorithms (B-BJ, B-IDJ).

use dht_graph::{Graph, NodeId};

use crate::params::DhtParams;

/// Incremental backward walk towards a fixed target.  Each call to
/// [`BackwardWalk::step`] advances one step and exposes `P_i(u, target)` for
/// all `u` via [`BackwardWalk::current`].
#[derive(Debug, Clone)]
pub struct BackwardWalk<'g> {
    graph: &'g Graph,
    target: NodeId,
    /// `current[u] = P_i(u, target)` for the last completed step `i`.
    current: Vec<f64>,
    next: Vec<f64>,
    steps_taken: usize,
}

impl<'g> BackwardWalk<'g> {
    /// Prepares a backward walk towards `target`.  No steps are taken yet.
    pub fn new(graph: &'g Graph, target: NodeId) -> Self {
        let n = graph.node_count();
        let mut current = vec![0.0; n];
        if target.index() < n {
            // backProb[q] = 1: at "step 0" only the target itself has hit the
            // target.  The first step then yields P_1(u,q) = p_uq.
            current[target.index()] = 1.0;
        }
        BackwardWalk { graph, target, current, next: vec![0.0; n], steps_taken: 0 }
    }

    /// The target node of the walk.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Number of steps performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// `P_i(u, target)` for all `u`, where `i` is the number of steps taken.
    /// Before the first step this is the indicator vector of the target.
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Advances the walk by one step.  After the call, [`Self::current`]
    /// holds `P_{i}(·, target)` for the new step count `i`.
    pub fn step(&mut self) {
        let n = self.graph.node_count();
        let exclude_target = self.steps_taken >= 1;
        self.next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let u_id = NodeId(u as u32);
            let targets = self.graph.out_targets(u_id);
            let probs = self.graph.out_probs(u_id);
            let mut acc = 0.0;
            for (&v, &p) in targets.iter().zip(probs.iter()) {
                if exclude_target && v as usize == self.target.index() {
                    // For i > 1 walks must not pass through the target again.
                    continue;
                }
                acc += p * self.current[v as usize];
            }
            self.next[u] = acc;
        }
        std::mem::swap(&mut self.current, &mut self.next);
        self.steps_taken += 1;
    }

    /// Runs `extra` additional steps, accumulating the discounted score of
    /// every source into `scores` (which must have length `|V_G|`):
    /// `scores[u] += α · Σ λ^i · P_i(u, target)` over the newly taken steps.
    pub fn accumulate(&mut self, params: &DhtParams, extra: usize, scores: &mut [f64]) {
        for _ in 0..extra {
            self.step();
            let discount = params.discount(self.steps_taken);
            for (s, &p) in scores.iter_mut().zip(self.current.iter()) {
                *s += discount * p;
            }
        }
    }
}

/// `backWalk(G, q, d)`: the truncated DHT score `h_d(u, q)` for **every**
/// node `u` of the graph, computed with one backward pass.
///
/// The entry for `u = q` is set to `params.max_score()` by convention and is
/// never used by the join algorithms (candidate answers never pair a node
/// with itself).
pub fn backward_dht_all_sources(
    graph: &Graph,
    params: &DhtParams,
    target: NodeId,
    d: usize,
) -> Vec<f64> {
    let mut walk = BackwardWalk::new(graph, target);
    let mut scores = vec![0.0; graph.node_count()];
    walk.accumulate(params, d, &mut scores);
    for s in scores.iter_mut() {
        *s += params.beta;
    }
    if target.index() < scores.len() {
        scores[target.index()] = params.max_score();
    }
    scores
}

/// Per-step first-hit probabilities towards `target` for every source node:
/// entry `[i-1][u] = P_i(u, target)`.
pub fn backward_hitting_probabilities(graph: &Graph, target: NodeId, d: usize) -> Vec<Vec<f64>> {
    let mut walk = BackwardWalk::new(graph, target);
    let mut out = Vec::with_capacity(d);
    for _ in 0..d {
        walk.step();
        out.push(walk.current().to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::{forward_dht, hitting_probabilities};
    use dht_graph::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    fn path3() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_unit_edge(NodeId(1), NodeId(2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn backward_matches_forward_on_triangle() {
        let g = triangle();
        let d = 8;
        let back = backward_hitting_probabilities(&g, NodeId(1), d);
        for u in [0u32, 2u32] {
            let fwd = hitting_probabilities(&g, NodeId(u), NodeId(1), d);
            for i in 0..d {
                assert!(
                    (back[i][u as usize] - fwd[i]).abs() < 1e-12,
                    "step {i} source {u}: backward {} vs forward {}",
                    back[i][u as usize],
                    fwd[i]
                );
            }
        }
    }

    #[test]
    fn backward_dht_matches_forward_dht() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let d = 8;
        let scores = backward_dht_all_sources(&g, &params, NodeId(2), d);
        for u in [0u32, 1u32] {
            let f = forward_dht(&g, &params, NodeId(u), NodeId(2), d);
            assert!((scores[u as usize] - f).abs() < 1e-12);
        }
    }

    #[test]
    fn directed_path_only_upstream_nodes_score() {
        let g = path3();
        let params = DhtParams::paper_default();
        let scores = backward_dht_all_sources(&g, &params, NodeId(2), 8);
        assert!(scores[0] > params.min_score());
        assert!(scores[1] > scores[0], "closer node scores higher");
        // node 2 is the target itself
        assert_eq!(scores[2], params.max_score());
    }

    #[test]
    fn unreachable_sources_score_beta() {
        let g = path3();
        let params = DhtParams::paper_default();
        // target 0 is unreachable from 1 and 2
        let scores = backward_dht_all_sources(&g, &params, NodeId(0), 8);
        assert_eq!(scores[1], params.min_score());
        assert_eq!(scores[2], params.min_score());
    }

    #[test]
    fn first_step_equals_transition_probability() {
        let g = triangle();
        let back = backward_hitting_probabilities(&g, NodeId(0), 1);
        assert!((back[0][1] - 0.5).abs() < 1e-12);
        assert!((back[0][2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn walks_do_not_pass_through_the_target() {
        // In the triangle, P_2(2, 0) must only count 2 -> 1 -> 0 (prob 1/4),
        // not 2 -> 0 -> ... which already hit at step 1.
        let g = triangle();
        let back = backward_hitting_probabilities(&g, NodeId(0), 2);
        assert!((back[1][2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn incremental_accumulate_matches_batch() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let mut walk = BackwardWalk::new(&g, NodeId(1));
        let mut scores = vec![0.0; g.node_count()];
        walk.accumulate(&params, 3, &mut scores);
        walk.accumulate(&params, 5, &mut scores);
        for s in scores.iter_mut() {
            *s += params.beta;
        }
        let batch = backward_dht_all_sources(&g, &params, NodeId(1), 8);
        for u in [0usize, 2usize] {
            assert!((scores[u] - batch[u]).abs() < 1e-12);
        }
        assert_eq!(walk.steps_taken(), 8);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let g = triangle();
        let back = backward_hitting_probabilities(&g, NodeId(2), 20);
        for step in &back {
            for &p in step {
                assert!((0.0..=1.0 + 1e-12).contains(&p));
            }
        }
        // cumulative first-hit probability per source also stays <= 1
        for u in 0..3 {
            let total: f64 = back.iter().map(|s| s[u]).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }
}

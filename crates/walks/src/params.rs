//! The general DHT form and its published parameterisations.

use std::f64::consts::E;
use std::fmt;

/// Error produced when constructing an invalid [`DhtParams`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// `α` must be non-zero.
    ZeroAlpha,
    /// `λ` must lie strictly inside `(0, 1)`.
    LambdaOutOfRange(f64),
    /// `ε` must be strictly positive for depth selection.
    NonPositiveEpsilon(f64),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::ZeroAlpha => write!(f, "alpha must be non-zero"),
            ParamsError::LambdaOutOfRange(l) => {
                write!(f, "lambda must be in the open interval (0, 1), got {l}")
            }
            ParamsError::NonPositiveEpsilon(e) => {
                write!(f, "epsilon must be > 0, got {e}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Parameters of the general DHT form `h(u,v) = α·Σ λ^i·P_i(u,v) + β`
/// (Definition 5 and Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhtParams {
    /// Scale coefficient `α ≠ 0`.
    pub alpha: f64,
    /// Offset coefficient `β`.
    pub beta: f64,
    /// Decay factor `λ ∈ (0, 1)`.
    pub lambda: f64,
}

impl DhtParams {
    /// Constructs a general-form parameter set, validating `α` and `λ`.
    pub fn general(alpha: f64, beta: f64, lambda: f64) -> Result<Self, ParamsError> {
        if alpha == 0.0 || !alpha.is_finite() {
            return Err(ParamsError::ZeroAlpha);
        }
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(ParamsError::LambdaOutOfRange(lambda));
        }
        Ok(DhtParams {
            alpha,
            beta,
            lambda,
        })
    }

    /// The `DHT_e` measure of Guan et al. (SIGMOD 2011):
    /// `α = e`, `β = 0`, `λ = 1/e` (Table II).
    pub fn dht_e() -> Self {
        DhtParams {
            alpha: E,
            beta: 0.0,
            lambda: 1.0 / E,
        }
    }

    /// The `DHT_λ` measure of Sarkar & Moore (KDD 2010), negated into a
    /// similarity: `α = 1/(1−λ)`, `β = −1/(1−λ)` (Table II).
    ///
    /// # Panics
    /// Panics if `λ ∉ (0, 1)`; use [`DhtParams::try_dht_lambda`] for a
    /// fallible constructor.
    pub fn dht_lambda(lambda: f64) -> Self {
        Self::try_dht_lambda(lambda).expect("lambda must be in (0,1)")
    }

    /// Fallible version of [`DhtParams::dht_lambda`].
    pub fn try_dht_lambda(lambda: f64) -> Result<Self, ParamsError> {
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(ParamsError::LambdaOutOfRange(lambda));
        }
        let alpha = 1.0 / (1.0 - lambda);
        Ok(DhtParams {
            alpha,
            beta: -alpha,
            lambda,
        })
    }

    /// The experimental default of the paper: `DHT_λ` with `λ = 0.2`
    /// (so `α = 1.25`, `β = −1.25`).
    pub fn paper_default() -> Self {
        Self::dht_lambda(0.2)
    }

    /// Lemma 1: the smallest walk depth `d` such that
    /// `|h(u,v) − h_d(u,v)| ≤ ε`, i.e. `d ≥ log_λ( ε(1−λ) / (αλ) )`.
    ///
    /// With the paper defaults (`λ = 0.2`, `α = 1.25`) and `ε = 10⁻⁶` this
    /// returns 8, matching Section VII-A.
    pub fn depth_for_epsilon(&self, epsilon: f64) -> Result<usize, ParamsError> {
        if epsilon <= 0.0 {
            return Err(ParamsError::NonPositiveEpsilon(epsilon));
        }
        let ratio = epsilon * (1.0 - self.lambda) / (self.alpha.abs() * self.lambda);
        if ratio >= 1.0 {
            // Even a single step already satisfies the error budget.
            return Ok(1);
        }
        let d = ratio.ln() / self.lambda.ln();
        Ok(d.ceil().max(1.0) as usize)
    }

    /// Discount applied to the hitting probability of step `i ≥ 1`:
    /// `α·λ^i`.
    #[inline]
    pub fn discount(&self, i: usize) -> f64 {
        self.alpha * self.lambda.powi(i as i32)
    }

    /// Evaluates the truncated DHT `h_d` from per-step first-hit
    /// probabilities `hits[0] = P_1, hits[1] = P_2, …`.
    pub fn score_from_hits(&self, hits: &[f64]) -> f64 {
        let mut acc = 0.0;
        let mut discount = self.alpha;
        for &p in hits {
            discount *= self.lambda;
            acc += discount * p;
        }
        acc + self.beta
    }

    /// The score of a node pair with no path at all (all `P_i = 0`), i.e.
    /// `β`.  This is the natural "minus infinity" of the measure.
    #[inline]
    pub fn min_score(&self) -> f64 {
        self.beta
    }

    /// Upper bound on any DHT score: all probability mass hitting at step 1
    /// gives `α·λ + β` (for `α > 0`).
    #[inline]
    pub fn max_score(&self) -> f64 {
        self.alpha * self.lambda + self.beta
    }

    /// The conventional score of a self pair `(v, v)`: a walker already at
    /// the target has hit it at step 0, i.e. `α·λ⁰·1 + β = α + β`.
    ///
    /// For `DHT_λ` (`α = 1/(1−λ)`, `β = −α`) this is exactly the boundary
    /// condition `h(v, v) = 0` of Sarkar & Moore mapped through Table II;
    /// for `DHT_e` it is `e`.  The join algorithms never score a node
    /// against itself — this value only appears on the diagonal of bulk
    /// score vectors and matrices, where all engines must agree.
    #[inline]
    pub fn self_score(&self) -> f64 {
        self.alpha + self.beta
    }

    /// The geometric tail `X_l⁺ = α · Σ_{i>l} λ^i = α·λ^{l+1}/(1−λ)`
    /// (Lemma 2).  Exposed here because both the bounds module and the
    /// iterative-deepening joins need it.
    #[inline]
    pub fn tail_bound(&self, l: usize) -> f64 {
        self.alpha * self.lambda.powi(l as i32 + 1) / (1.0 - self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dht_e_matches_table_ii() {
        let p = DhtParams::dht_e();
        assert!((p.alpha - E).abs() < 1e-12);
        assert_eq!(p.beta, 0.0);
        assert!((p.lambda - 1.0 / E).abs() < 1e-12);
    }

    #[test]
    fn dht_lambda_matches_table_ii() {
        let p = DhtParams::dht_lambda(0.2);
        assert!((p.alpha - 1.25).abs() < 1e-12);
        assert!((p.beta + 1.25).abs() < 1e-12);
        assert!((p.lambda - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_default_depth_is_eight() {
        let p = DhtParams::paper_default();
        assert_eq!(p.depth_for_epsilon(1e-6).unwrap(), 8);
    }

    #[test]
    fn depth_grows_as_epsilon_shrinks() {
        let p = DhtParams::paper_default();
        let d3 = p.depth_for_epsilon(1e-3).unwrap();
        let d6 = p.depth_for_epsilon(1e-6).unwrap();
        let d8 = p.depth_for_epsilon(1e-8).unwrap();
        assert!(d3 <= d6 && d6 <= d8);
        assert!(d8 > d3);
    }

    #[test]
    fn depth_grows_with_lambda() {
        let shallow = DhtParams::dht_lambda(0.2).depth_for_epsilon(1e-6).unwrap();
        let deep = DhtParams::dht_lambda(0.8).depth_for_epsilon(1e-6).unwrap();
        assert!(deep > shallow);
    }

    #[test]
    fn huge_epsilon_still_needs_one_step() {
        let p = DhtParams::paper_default();
        assert_eq!(p.depth_for_epsilon(10.0).unwrap(), 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(DhtParams::general(0.0, 0.0, 0.5).is_err());
        assert!(DhtParams::general(1.0, 0.0, 0.0).is_err());
        assert!(DhtParams::general(1.0, 0.0, 1.0).is_err());
        assert!(DhtParams::try_dht_lambda(1.5).is_err());
        assert!(DhtParams::paper_default().depth_for_epsilon(0.0).is_err());
        assert!(DhtParams::paper_default().depth_for_epsilon(-1.0).is_err());
    }

    #[test]
    fn score_from_hits_matches_manual_sum() {
        let p = DhtParams::dht_lambda(0.5); // alpha = 2, beta = -2
                                            // P_1 = 0.5, P_2 = 0.25
        let score = p.score_from_hits(&[0.5, 0.25]);
        let expected = 2.0 * (0.5 * 0.5 + 0.25 * 0.25) - 2.0;
        assert!((score - expected).abs() < 1e-12);
    }

    #[test]
    fn score_of_no_hits_is_beta() {
        let p = DhtParams::paper_default();
        assert_eq!(p.score_from_hits(&[]), p.min_score());
        assert_eq!(p.score_from_hits(&[0.0, 0.0, 0.0]), p.beta);
    }

    #[test]
    fn max_score_reached_by_immediate_hit() {
        let p = DhtParams::paper_default();
        let s = p.score_from_hits(&[1.0]);
        assert!((s - p.max_score()).abs() < 1e-12);
    }

    #[test]
    fn self_score_matches_the_boundary_conventions() {
        // DHT_λ: h(v, v) = 0 for every λ (Sarkar & Moore's boundary
        // condition survives the Table II mapping exactly).
        for lambda in [0.1, 0.2, 0.5, 0.9] {
            assert_eq!(DhtParams::dht_lambda(lambda).self_score(), 0.0);
        }
        // DHT_e: α + β = e.
        assert!((DhtParams::dht_e().self_score() - E).abs() < 1e-12);
        // "hit at step 0" dominates every reachable score.
        let p = DhtParams::paper_default();
        assert!(p.self_score() >= p.max_score());
    }

    #[test]
    fn tail_bound_is_geometric_tail() {
        let p = DhtParams::dht_lambda(0.5); // alpha = 2
                                            // X_1+ = 2 * (0.25 + 0.125 + ...) = 2 * 0.5 = 1.0
        assert!((p.tail_bound(1) - 1.0).abs() < 1e-12);
        // tails shrink monotonically
        assert!(p.tail_bound(2) < p.tail_bound(1));
        assert!(p.tail_bound(10) < 1e-2);
    }

    #[test]
    fn discount_decreases_geometrically() {
        let p = DhtParams::dht_lambda(0.2);
        assert!((p.discount(1) - 1.25 * 0.2).abs() < 1e-12);
        assert!((p.discount(2) - 1.25 * 0.04).abs() < 1e-12);
        assert!(p.discount(3) < p.discount(2));
    }

    #[test]
    fn error_display() {
        assert!(ParamsError::ZeroAlpha.to_string().contains("alpha"));
        assert!(ParamsError::LambdaOutOfRange(2.0).to_string().contains("2"));
        assert!(ParamsError::NonPositiveEpsilon(0.0)
            .to_string()
            .contains("epsilon"));
    }
}

//! Small-graph oracles used to validate the walk engines.
//!
//! Two independent reference implementations are provided:
//!
//! * [`path_enumeration_hits`] enumerates **every** walk of length ≤ `d` that
//!   avoids the target until its final step, multiplying transition
//!   probabilities along the way.  Exponential in `d`, so only usable on tiny
//!   graphs — but it shares no code with the propagation engines, making it a
//!   genuinely independent oracle.
//! * [`all_pairs_dht`] computes the full `|V|×|V|` matrix of truncated DHT
//!   scores with forward walks, used as a brute-force oracle by the join
//!   algorithm tests.

use dht_graph::{Graph, NodeId};

use crate::forward;
use crate::params::DhtParams;

/// First-hit probabilities `P_1..P_d` from `source` to `target`, computed by
/// exhaustive walk enumeration.  Intended for graphs with a handful of nodes
/// and small `d` only.
pub fn path_enumeration_hits(graph: &Graph, source: NodeId, target: NodeId, d: usize) -> Vec<f64> {
    let mut hits = vec![0.0; d];
    // Depth-first enumeration of walks: (current node, probability, length).
    let mut stack: Vec<(NodeId, f64, usize)> = vec![(source, 1.0, 0)];
    while let Some((node, prob, len)) = stack.pop() {
        if len >= d {
            continue;
        }
        for (next, _, p) in graph.out_edges(node) {
            let new_prob = prob * p;
            if new_prob == 0.0 {
                continue;
            }
            if next == target {
                hits[len] += new_prob;
            } else {
                stack.push((next, new_prob, len + 1));
            }
        }
    }
    hits
}

/// Truncated DHT score via exhaustive walk enumeration.
pub fn path_enumeration_dht(
    graph: &Graph,
    params: &DhtParams,
    source: NodeId,
    target: NodeId,
    d: usize,
) -> f64 {
    params.score_from_hits(&path_enumeration_hits(graph, source, target, d))
}

/// All-pairs truncated DHT matrix: `matrix[u][v] = h_d(u, v)` for `u ≠ v`,
/// and `params.self_score()` on the diagonal (the `h(v,v) = 0` convention
/// of DHT_λ mapped through the general form; never used by joins).
pub fn all_pairs_dht(graph: &Graph, params: &DhtParams, d: usize) -> Vec<Vec<f64>> {
    let n = graph.node_count();
    let mut matrix = vec![vec![params.min_score(); n]; n];
    for u in graph.nodes() {
        for v in graph.nodes() {
            matrix[u.index()][v.index()] = if u == v {
                params.self_score()
            } else {
                forward::forward_dht(graph, params, u, v, d)
            };
        }
    }
    matrix
}

/// DHT evaluated to (numerical) convergence: keeps extending the walk until
/// the geometric tail bound drops below `tol`.  Used to sanity-check the
/// Lemma-1 depth selection.
pub fn converged_dht(
    graph: &Graph,
    params: &DhtParams,
    source: NodeId,
    target: NodeId,
    tol: f64,
) -> f64 {
    let mut d = 1usize;
    while params.tail_bound(d) > tol && d < 10_000 {
        d += 1;
    }
    forward::forward_dht(graph, params, source, target, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward_dht_all_sources;
    use crate::forward::hitting_probabilities;
    use dht_graph::generators::erdos_renyi;
    use dht_graph::GraphBuilder;

    fn small_weighted_graph() -> Graph {
        // 0 -> 1 (2.0), 0 -> 2 (1.0), 1 -> 2 (1.0), 2 -> 0 (1.0), 1 -> 3 (1.0)
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn propagation_matches_path_enumeration() {
        let g = small_weighted_graph();
        let d = 6;
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let by_walks = hitting_probabilities(&g, u, v, d);
                let by_paths = path_enumeration_hits(&g, u, v, d);
                for i in 0..d {
                    assert!(
                        (by_walks[i] - by_paths[i]).abs() < 1e-10,
                        "mismatch at ({u:?},{v:?}) step {i}: {} vs {}",
                        by_walks[i],
                        by_paths[i]
                    );
                }
            }
        }
    }

    #[test]
    fn backward_matches_path_enumeration_dht() {
        let g = small_weighted_graph();
        let params = DhtParams::dht_e();
        let d = 6;
        for v in g.nodes() {
            let scores = backward_dht_all_sources(&g, &params, v, d);
            for u in g.nodes() {
                if u == v {
                    continue;
                }
                let oracle = path_enumeration_dht(&g, &params, u, v, d);
                assert!(
                    (scores[u.index()] - oracle).abs() < 1e-10,
                    "mismatch at ({u:?},{v:?})"
                );
            }
        }
    }

    #[test]
    fn all_pairs_matrix_is_consistent_with_backward() {
        let g = erdos_renyi(12, 30, 5);
        let params = DhtParams::paper_default();
        let d = 5;
        let matrix = all_pairs_dht(&g, &params, d);
        for v in g.nodes() {
            let scores = backward_dht_all_sources(&g, &params, v, d);
            for u in g.nodes() {
                if u == v {
                    continue;
                }
                assert!((matrix[u.index()][v.index()] - scores[u.index()]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn lemma_1_depth_is_sufficient() {
        // |h - h_d| <= epsilon when d is chosen by Lemma 1.
        let g = small_weighted_graph();
        let params = DhtParams::dht_lambda(0.5);
        let eps = 1e-5;
        let d = params.depth_for_epsilon(eps).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let truncated = forward::forward_dht(&g, &params, u, v, d);
                let converged = converged_dht(&g, &params, u, v, eps * 1e-3);
                assert!(
                    (converged - truncated).abs() <= eps + 1e-9,
                    "Lemma 1 violated at ({u:?},{v:?}): {converged} vs {truncated}"
                );
            }
        }
    }

    #[test]
    fn diagonal_of_all_pairs_matrix_is_self_score() {
        let g = small_weighted_graph();
        for params in [DhtParams::paper_default(), DhtParams::dht_e()] {
            let m = all_pairs_dht(&g, &params, 4);
            for u in g.nodes() {
                assert_eq!(m[u.index()][u.index()], params.self_score());
                // and it agrees with both walk engines' self-pair convention
                let scores = backward_dht_all_sources(&g, &params, u, 4);
                assert_eq!(m[u.index()][u.index()], scores[u.index()]);
            }
        }
    }

    #[test]
    fn asymmetry_is_visible_on_directed_graphs() {
        // h(1, 3) > beta (edge 1 -> 3) but h(3, 1) = beta (3 has no out-edges).
        let g = small_weighted_graph();
        let params = DhtParams::paper_default();
        let m = all_pairs_dht(&g, &params, 6);
        assert!(m[1][3] > params.min_score());
        assert_eq!(m[3][1], params.min_score());
    }
}

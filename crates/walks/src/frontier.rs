//! The sparse-frontier propagation kernel and its reusable scratch buffers.
//!
//! Every walk engine in this crate advances a probability vector one step at
//! a time.  The seed implementation swept all `|V_G|` entries per step and
//! allocated two fresh vectors per walk; this module replaces that with:
//!
//! * [`WalkScratch`] — a reusable buffer set (probability vectors, frontier
//!   lists, membership flags).  One scratch serves an unbounded number of
//!   consecutive walks with **zero** per-walk allocation, and cleanup after
//!   a sparse walk touches only the entries the walk actually reached.
//! * a **sparse-frontier step**: only nodes currently holding probability
//!   mass (the *frontier*) push their mass along their edges.  The d-step
//!   neighbourhood of a single source is usually tiny relative to `|V_G|`,
//!   so early steps cost `O(Σ_{u ∈ frontier} deg(u))` instead of
//!   `O(|V_G| + |E_G|)`.
//! * a **push/pull (sparse/dense) switch** in the spirit of
//!   direction-optimizing BFS (Beamer et al.): when the frontier's degree
//!   sum approaches the cost of a dense sweep, the kernel switches to the
//!   seed's dense step for the remainder of the walk.  The switch is
//!   one-way per walk — rebuilding a frontier from a dense vector would
//!   cost a full sweep.
//! * [`ScratchPool`] — a lock-guarded pool handing out scratches to worker
//!   threads, so parallel joins reuse buffers instead of allocating per
//!   task.
//!
//! Sparse and dense steps accumulate floating-point sums in different
//! orders, so their results may differ by rounding (≤ 1e-12 relative in
//! practice; the parity proptests pin this).  Results of a given engine are
//! fully deterministic: a walk is advanced by exactly one caller, so the
//! frontier is discovered in an input-determined order — no sorting and no
//! scheduling dependence.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use dht_graph::{Graph, NodeId};

/// Which propagation kernel a walk uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WalkEngine {
    /// Always run the seed's dense `O(|V| + |E|)` sweep — the reference
    /// engine, bit-identical to the original implementation.
    Dense,
    /// Track the active node set and push only from the frontier, switching
    /// to dense sweeps once the frontier saturates (fixed switch threshold
    /// [`SPARSE_WORK_FACTOR`]).
    Sparse,
    /// Like [`WalkEngine::Sparse`], but with a **per-graph calibrated**
    /// switch threshold (see [`calibrated_switch_factor`]): on small dense
    /// graphs, where a frontier grows by the average degree per step, the
    /// switch anticipates one step of growth and goes dense earlier —
    /// skipping the expensive final sparse steps that made the sparse path
    /// merely tie dense on such graphs.  On sparse graphs (average degree
    /// near the fixed factor) it behaves exactly like `Sparse`.  The
    /// recommended default.
    #[default]
    Auto,
}

impl WalkEngine {
    /// Parses the CLI spelling of an engine name.
    pub fn parse(name: &str) -> Option<WalkEngine> {
        match name.to_ascii_lowercase().as_str() {
            "dense" => Some(WalkEngine::Dense),
            "sparse" => Some(WalkEngine::Sparse),
            "auto" => Some(WalkEngine::Auto),
            _ => None,
        }
    }

    /// The engine's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            WalkEngine::Dense => "dense",
            WalkEngine::Sparse => "sparse",
            WalkEngine::Auto => "auto",
        }
    }

    #[inline]
    fn forces_dense(self) -> bool {
        matches!(self, WalkEngine::Dense)
    }
}

/// Sentinel for forward steps without an absorbing target (no node id ever
/// reaches `usize::MAX`).
const NO_ABSORB: usize = usize::MAX;

/// A sparse step is taken while its estimated work (frontier degree sum plus
/// frontier bookkeeping) times this factor stays below the dense sweep cost
/// `|V| + |E|`.  The factor accounts for the sparse step's constant-factor
/// overhead (membership flags, frontier maintenance).
pub const SPARSE_WORK_FACTOR: usize = 3;

/// Number of node degrees sampled by [`calibrated_switch_factor`].
const CALIBRATION_SAMPLES: usize = 64;

/// The per-graph switch threshold of [`WalkEngine::Auto`]: the fixed
/// [`SPARSE_WORK_FACTOR`] raised to the graph's sampled average out-degree.
///
/// A frontier grows by roughly the average degree `ḡ` per step, so on dense
/// graphs the step *after* the one that trips the fixed threshold costs
/// about `ḡ` times more — and that final, most expensive sparse step is
/// exactly what made the sparse path tie (rather than beat) the dense sweep
/// on small dense graphs.  Scaling the threshold by `ḡ` makes the switch
/// fire one step earlier there, while graphs with `ḡ ≤` the fixed factor
/// (long paths, large sparse networks) keep the `Sparse` behaviour
/// unchanged.
///
/// Degrees are sampled at a fixed stride over at most
/// `CALIBRATION_SAMPLES` nodes, so calibration is `O(1)`-ish per walk and
/// fully deterministic.
pub fn calibrated_switch_factor(graph: &Graph) -> usize {
    let n = graph.node_count();
    if n == 0 {
        return SPARSE_WORK_FACTOR;
    }
    let samples = n.min(CALIBRATION_SAMPLES);
    let stride = (n / samples).max(1);
    let mut degree_sum = 0usize;
    let mut counted = 0usize;
    let mut u = 0usize;
    while counted < samples && u < n {
        degree_sum += graph.out_degree(NodeId(u as u32));
        counted += 1;
        u += stride;
    }
    let avg = (degree_sum as f64 / counted.max(1) as f64).round() as usize;
    SPARSE_WORK_FACTOR.max(avg)
}

/// Reusable buffers for one walk at a time.
///
/// A scratch may be reused for any number of consecutive walks (of either
/// direction, on graphs of any size); [`WalkScratch::begin`] re-initialises
/// it in time proportional to what the *previous* walk touched, not
/// `O(|V|)`.
#[derive(Debug, Clone, Default)]
pub struct WalkScratch {
    /// Probability mass after the last completed step (dense indexing).
    current: Vec<f64>,
    /// Accumulation buffer for the next step; all-zero between steps while
    /// sparse (the sparse step restores the invariant on swap).
    next: Vec<f64>,
    /// Ids of nodes with (potentially) non-zero `current` mass, in
    /// activation order (a pure function of the walk's input, hence
    /// deterministic).  Meaningless once `dense_mode` is set.
    frontier: Vec<u32>,
    /// Scratch list the next frontier is collected into.
    spare: Vec<u32>,
    /// Membership flags used to deduplicate `spare`; all-false between
    /// steps.
    active: Vec<bool>,
    /// Set once a dense step has run for the current walk; cleared by
    /// [`WalkScratch::begin`].
    dense_mode: bool,
    /// Per-walk memo of [`calibrated_switch_factor`] for [`WalkEngine::Auto`]
    /// (`0` = not computed yet for this walk); cleared by
    /// [`WalkScratch::begin`].
    auto_factor: usize,
}

impl WalkScratch {
    /// A fresh scratch with no buffers allocated yet.
    pub fn new() -> Self {
        WalkScratch::default()
    }

    /// Starts a new walk over `n` nodes seeded with unit mass on `seeds`.
    ///
    /// Cleans up whatever the previous walk left behind, reusing the
    /// allocations.
    pub fn begin(&mut self, n: usize, seeds: impl IntoIterator<Item = NodeId>) {
        if self.dense_mode {
            self.current.iter_mut().for_each(|x| *x = 0.0);
            self.next.iter_mut().for_each(|x| *x = 0.0);
        } else {
            for &u in &self.frontier {
                if let Some(slot) = self.current.get_mut(u as usize) {
                    *slot = 0.0;
                }
            }
        }
        self.frontier.clear();
        self.dense_mode = false;
        self.auto_factor = 0;
        self.current.resize(n, 0.0);
        self.next.resize(n, 0.0);
        self.active.resize(n, false);
        for seed in seeds {
            if seed.index() < n && self.current[seed.index()] == 0.0 {
                self.current[seed.index()] = 1.0;
                self.frontier.push(seed.0);
            }
        }
    }

    /// Probability mass per node after the last completed step.
    #[inline]
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Whether the walk provably has no mass left to propagate (the frontier
    /// emptied).  Conservative: always `false` once in dense mode.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        !self.dense_mode && self.frontier.is_empty()
    }

    /// Whether the walk has switched to dense sweeps.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.dense_mode
    }

    /// Calls `f(node, mass)` for every node with non-zero mass.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, f64)) {
        if self.dense_mode {
            for (u, &mass) in self.current.iter().enumerate() {
                if mass != 0.0 {
                    f(u, mass);
                }
            }
        } else {
            for &u in &self.frontier {
                let mass = self.current[u as usize];
                if mass != 0.0 {
                    f(u as usize, mass);
                }
            }
        }
    }

    /// One step of a forward **absorbing** walk towards `target`: mass
    /// reaching the target is returned (the step's first-hit probability)
    /// instead of being propagated further.
    pub fn step_forward_absorbing(
        &mut self,
        graph: &Graph,
        target: NodeId,
        engine: WalkEngine,
    ) -> f64 {
        let t = target.index();
        if self.decide_dense(graph, engine, Direction::Forward) {
            return self.dense_forward(graph, t);
        }
        self.sparse_forward(graph, t)
    }

    /// One step of a plain (non-absorbing) forward walk: after `i` steps,
    /// `current[v]` holds the probability that the walker is at `v`.
    pub fn step_forward(&mut self, graph: &Graph, engine: WalkEngine) {
        if self.decide_dense(graph, engine, Direction::Forward) {
            self.dense_forward(graph, NO_ABSORB);
        } else {
            self.sparse_forward(graph, NO_ABSORB);
        }
    }

    /// One step of the backward first-hit recurrence towards `target`
    /// (`backWalk`): after the call `current[u] = P_i(u, target)`.  When
    /// `exclude_target` is set (every step but the first), mass sitting on
    /// the target is not propagated — that is what makes the probabilities
    /// *first*-hit ones.
    pub fn step_backward(
        &mut self,
        graph: &Graph,
        target: NodeId,
        exclude_target: bool,
        engine: WalkEngine,
    ) {
        if self.decide_dense(graph, engine, Direction::Backward) {
            self.dense_backward(graph, target, exclude_target);
        } else {
            self.sparse_backward(graph, target, exclude_target);
        }
    }

    fn decide_dense(&mut self, graph: &Graph, engine: WalkEngine, direction: Direction) -> bool {
        if engine.forces_dense() || self.dense_mode {
            self.dense_mode = true;
            return true;
        }
        let degree_sum = match direction {
            Direction::Forward => graph.frontier_out_degree_sum(&self.frontier),
            Direction::Backward => graph.frontier_in_degree_sum(&self.frontier),
        };
        let factor = if matches!(engine, WalkEngine::Auto) {
            if self.auto_factor == 0 {
                self.auto_factor = calibrated_switch_factor(graph);
            }
            self.auto_factor
        } else {
            SPARSE_WORK_FACTOR
        };
        let sparse_work = degree_sum + self.frontier.len();
        let dense_work = graph.node_count() + graph.edge_count();
        if sparse_work * factor >= dense_work {
            self.dense_mode = true;
            return true;
        }
        false
    }

    /// Dense forward sweep, bit-identical to the seed implementation.
    /// `absorb` carries the target index for absorbing walks ([`NO_ABSORB`]
    /// for plain reach sweeps) and the absorbed mass is returned.
    fn dense_forward(&mut self, graph: &Graph, absorb: usize) -> f64 {
        let n = graph.node_count();
        // Flat CSR iteration: one offsets lookup per node instead of a
        // per-node accessor call, with targets/probs read as fused slices
        // of the same `lo..hi` range.  The scatter order over `u` and over
        // each adjacency list is exactly the seed's, so every f64 is
        // produced by the same sequence of operations — bit-identical.
        let (offsets, targets, probs) = graph.forward_flat();
        self.next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let mass = self.current[u];
            if mass == 0.0 || u == absorb {
                continue;
            }
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            for (&v, &p) in targets[lo..hi].iter().zip(probs[lo..hi].iter()) {
                self.next[v as usize] += mass * p;
            }
        }
        let mut hit = 0.0;
        if absorb < n {
            hit = self.next[absorb];
            self.next[absorb] = 0.0;
        }
        std::mem::swap(&mut self.current, &mut self.next);
        hit
    }

    fn sparse_forward(&mut self, graph: &Graph, absorb: usize) -> f64 {
        let mut hit = 0.0;
        let frontier = std::mem::take(&mut self.frontier);
        self.spare.clear();
        for &u in &frontier {
            let ui = u as usize;
            let mass = self.current[ui];
            if mass == 0.0 || ui == absorb {
                continue;
            }
            let (targets, probs) = graph.out_targets_probs(NodeId(u));
            for (&v, &p) in targets.iter().zip(probs.iter()) {
                let vi = v as usize;
                if vi == absorb {
                    hit += mass * p;
                    continue;
                }
                if !self.active[vi] {
                    self.active[vi] = true;
                    self.spare.push(v);
                }
                self.next[vi] += mass * p;
            }
        }
        self.finish_sparse_step(frontier);
        hit
    }

    fn dense_backward(&mut self, graph: &Graph, target: NodeId, exclude_target: bool) {
        let n = graph.node_count();
        // Flat pull sweep over the forward CSR with branchless target
        // exclusion: `excluded` is a sentinel no node id reaches when the
        // target is not excluded, and the per-edge compare folds into a
        // 0.0/1.0 multiplier instead of a branch.  Bit-identity with the
        // seed's `continue` is guaranteed because every contribution
        // `p * current[v]` is >= +0.0 (probabilities and masses are
        // non-negative): the masked term adds literal +0.0 to an
        // accumulator that is never -0.0, which cannot change its bits.
        let (offsets, targets, probs) = graph.forward_flat();
        let excluded = if exclude_target {
            target.index()
        } else {
            usize::MAX
        };
        for u in 0..n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            let mut acc = 0.0;
            for (&v, &p) in targets[lo..hi].iter().zip(probs[lo..hi].iter()) {
                let keep = (v as usize != excluded) as u64 as f64;
                acc += keep * p * self.current[v as usize];
            }
            self.next[u] = acc;
        }
        std::mem::swap(&mut self.current, &mut self.next);
    }

    fn sparse_backward(&mut self, graph: &Graph, target: NodeId, exclude_target: bool) {
        let t = target.index();
        let frontier = std::mem::take(&mut self.frontier);
        self.spare.clear();
        for &v in &frontier {
            let vi = v as usize;
            if exclude_target && vi == t {
                continue;
            }
            let mass = self.current[vi];
            if mass == 0.0 {
                continue;
            }
            let (sources, probs) = graph.in_sources_probs(NodeId(v));
            for (&u, &p) in sources.iter().zip(probs.iter()) {
                let ui = u as usize;
                if !self.active[ui] {
                    self.active[ui] = true;
                    self.spare.push(u);
                }
                self.next[ui] += p * mass;
            }
        }
        self.finish_sparse_step(frontier);
    }

    /// Restores the scratch invariants after a sparse accumulation into
    /// `next` / `spare`: zero the old mass, clear the flags and swap the
    /// buffers.  The new frontier keeps its activation order — which is a
    /// pure function of the walk's input, so results stay deterministic —
    /// rather than paying an `O(f log f)` sort per step.
    fn finish_sparse_step(&mut self, old_frontier: Vec<u32>) {
        for &u in &old_frontier {
            self.current[u as usize] = 0.0;
        }
        for &v in &self.spare {
            self.active[v as usize] = false;
        }
        std::mem::swap(&mut self.current, &mut self.next);
        self.frontier = old_frontier;
        std::mem::swap(&mut self.frontier, &mut self.spare);
    }
}

enum Direction {
    Forward,
    Backward,
}

/// A lock-guarded pool of [`WalkScratch`] buffers shared by worker threads.
///
/// Acquiring returns a guard that dereferences to the scratch and returns it
/// to the pool on drop, so a join that processes thousands of walk tasks
/// allocates at most one scratch per worker thread.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<WalkScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Takes a scratch from the pool, or creates one if none is free.
    pub fn acquire(&self) -> ScratchGuard<'_> {
        let scratch = self
            .free
            .lock()
            .expect("scratch pool lock poisoned")
            .pop()
            .unwrap_or_default();
        ScratchGuard {
            scratch: Some(scratch),
            pool: self,
        }
    }

    /// Number of scratches currently parked in the pool.
    pub fn idle_count(&self) -> usize {
        self.free.lock().expect("scratch pool lock poisoned").len()
    }
}

/// RAII guard for a pooled [`WalkScratch`]; see [`ScratchPool::acquire`].
#[derive(Debug)]
pub struct ScratchGuard<'p> {
    scratch: Option<WalkScratch>,
    pool: &'p ScratchPool,
}

impl Deref for ScratchGuard<'_> {
    type Target = WalkScratch;
    fn deref(&self) -> &WalkScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut WalkScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .expect("scratch pool lock poisoned")
                .push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    /// Long path so the frontier never saturates: the sparse engine must
    /// stay sparse and still agree with dense.
    fn long_path(n: usize) -> Graph {
        let mut b = GraphBuilder::with_nodes(n);
        for i in 0..(n - 1) as u32 {
            b.add_unit_edge(NodeId(i), NodeId(i + 1)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn sparse_and_dense_forward_absorbing_agree() {
        let g = triangle();
        for engine in [WalkEngine::Sparse, WalkEngine::Auto] {
            let mut sparse = WalkScratch::new();
            let mut dense = WalkScratch::new();
            sparse.begin(3, [NodeId(0)]);
            dense.begin(3, [NodeId(0)]);
            for step in 0..6 {
                let hs = sparse.step_forward_absorbing(&g, NodeId(1), engine);
                let hd = dense.step_forward_absorbing(&g, NodeId(1), WalkEngine::Dense);
                assert!((hs - hd).abs() < 1e-12, "step {step}: {hs} vs {hd}");
            }
        }
    }

    #[test]
    fn sparse_stays_sparse_on_a_long_path() {
        let g = long_path(1000);
        let mut scratch = WalkScratch::new();
        scratch.begin(1000, [NodeId(0)]);
        for _ in 0..10 {
            scratch.step_forward(&g, WalkEngine::Sparse);
        }
        assert!(
            !scratch.is_dense(),
            "frontier of size 1 must never trigger the dense switch"
        );
        // all mass sits exactly 10 hops down the path
        assert!((scratch.current()[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_frontier_switches_to_dense() {
        let g = triangle();
        let mut scratch = WalkScratch::new();
        scratch.begin(3, [NodeId(0)]);
        // On a 3-node triangle any frontier saturates immediately.
        scratch.step_forward(&g, WalkEngine::Sparse);
        assert!(scratch.is_dense());
    }

    #[test]
    fn exhausted_walks_report_it() {
        // 0 -> 1, and node 1 is absorbing target: after one step no mass is left.
        let mut b = GraphBuilder::with_nodes(8);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        let g = b.build().unwrap();
        let mut scratch = WalkScratch::new();
        scratch.begin(8, [NodeId(0)]);
        let hit = scratch.step_forward_absorbing(&g, NodeId(1), WalkEngine::Sparse);
        assert!((hit - 1.0).abs() < 1e-12);
        assert!(scratch.is_exhausted());
    }

    #[test]
    fn backward_sparse_matches_backward_dense() {
        let g = triangle();
        let mut sparse = WalkScratch::new();
        let mut dense = WalkScratch::new();
        sparse.begin(3, [NodeId(0)]);
        dense.begin(3, [NodeId(0)]);
        for step in 0..5 {
            let exclude = step >= 1;
            sparse.step_backward(&g, NodeId(0), exclude, WalkEngine::Sparse);
            dense.step_backward(&g, NodeId(0), exclude, WalkEngine::Dense);
            for u in 0..3 {
                assert!(
                    (sparse.current()[u] - dense.current()[u]).abs() < 1e-12,
                    "step {step} node {u}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_leaves_no_residue() {
        let g = long_path(50);
        let mut scratch = WalkScratch::new();
        // First walk deposits mass along the path.
        scratch.begin(50, [NodeId(0)]);
        for _ in 0..5 {
            scratch.step_forward(&g, WalkEngine::Sparse);
        }
        // Re-begin with a different seed: everything else must read zero.
        scratch.begin(50, [NodeId(30)]);
        let mut nonzero = Vec::new();
        scratch.for_each_nonzero(|u, _| nonzero.push(u));
        assert_eq!(nonzero, vec![30]);
        assert_eq!(scratch.current().iter().filter(|&&x| x != 0.0).count(), 1);
    }

    #[test]
    fn scratch_reuse_after_dense_walk_is_clean() {
        let g = triangle();
        let mut scratch = WalkScratch::new();
        scratch.begin(3, [NodeId(0)]);
        for _ in 0..4 {
            scratch.step_forward(&g, WalkEngine::Dense);
        }
        assert!(scratch.is_dense());
        scratch.begin(3, [NodeId(2)]);
        assert!(!scratch.is_dense());
        assert_eq!(scratch.current(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn scratch_resizes_between_graphs() {
        let small = triangle();
        let big = long_path(100);
        let mut scratch = WalkScratch::new();
        scratch.begin(3, [NodeId(0)]);
        scratch.step_forward(&small, WalkEngine::Sparse);
        scratch.begin(100, [NodeId(0)]);
        scratch.step_forward(&big, WalkEngine::Sparse);
        assert!((scratch.current()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pool_hands_out_and_reclaims_scratches() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle_count(), 0);
        {
            let mut a = pool.acquire();
            let _b = pool.acquire();
            a.begin(4, [NodeId(1)]);
            assert_eq!(pool.idle_count(), 0);
        }
        assert_eq!(pool.idle_count(), 2);
        // Reacquired scratch keeps its allocation but is re-initialised.
        let mut c = pool.acquire();
        c.begin(4, [NodeId(2)]);
        assert_eq!(c.current(), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(pool.idle_count(), 1);
    }

    /// A deterministic moderately dense directed graph: every node gets one
    /// out-edge per offset, so the sampled average out-degree equals
    /// `offsets.len()`.
    fn strided_graph(n: usize, offsets: &[usize]) -> Graph {
        let mut b = GraphBuilder::with_nodes(n);
        for u in 0..n {
            for &off in offsets {
                let v = (u + off) % n;
                if v != u {
                    b.add_unit_edge(NodeId(u as u32), NodeId(v as u32)).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn calibrated_factor_tracks_the_sampled_average_degree() {
        let dense = strided_graph(200, &[1, 3, 7, 19, 53, 101, 137, 171]);
        assert_eq!(calibrated_switch_factor(&dense), 8);
        // Sparse graphs never drop below the fixed factor.
        let path = long_path(500);
        assert_eq!(calibrated_switch_factor(&path), SPARSE_WORK_FACTOR);
        let empty = GraphBuilder::with_nodes(0).build().unwrap();
        assert_eq!(calibrated_switch_factor(&empty), SPARSE_WORK_FACTOR);
    }

    #[test]
    fn auto_switches_to_dense_earlier_than_sparse_on_dense_graphs() {
        // Closes the ROADMAP item: on small dense graphs the fixed-factor
        // sparse path keeps taking sparse steps right up to saturation, and
        // the last of those costs nearly a dense sweep.  Auto's calibrated
        // threshold anticipates one step of frontier growth and goes dense
        // earlier.
        let g = strided_graph(200, &[1, 3, 7, 19, 53, 101, 137, 171]);
        let first_dense_step = |engine: WalkEngine| -> Option<usize> {
            let mut scratch = WalkScratch::new();
            scratch.begin(g.node_count(), [NodeId(0)]);
            for step in 0..30 {
                scratch.step_forward(&g, engine);
                if scratch.is_dense() {
                    return Some(step);
                }
            }
            None
        };
        let sparse = first_dense_step(WalkEngine::Sparse).expect("sparse saturates eventually");
        let auto = first_dense_step(WalkEngine::Auto).expect("auto saturates eventually");
        assert!(
            auto < sparse,
            "auto must switch strictly earlier on a dense graph: auto at {auto}, sparse at {sparse}"
        );
    }

    #[test]
    fn auto_stays_sparse_on_a_long_path() {
        // Average degree 1 < the fixed factor, so calibration changes
        // nothing: a frontier of size 1 never triggers the dense switch.
        let g = long_path(1000);
        let mut scratch = WalkScratch::new();
        scratch.begin(1000, [NodeId(0)]);
        for _ in 0..10 {
            scratch.step_forward(&g, WalkEngine::Auto);
        }
        assert!(!scratch.is_dense());
        assert!((scratch.current()[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in [WalkEngine::Dense, WalkEngine::Sparse, WalkEngine::Auto] {
            assert_eq!(WalkEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(WalkEngine::parse("DENSE"), Some(WalkEngine::Dense));
        assert_eq!(WalkEngine::parse("quantum"), None);
    }
}

//! Upper bounds on truncated DHT scores.
//!
//! The iterative-deepening joins prune candidates using an upper bound of
//! `h_d(p,q)` derived after only `l < d` walk steps:
//!
//! * **`X_l⁺`** (Lemma 2) — the geometric tail `α·λ^{l+1}/(1−λ)`, which only
//!   depends on the parameters.  Cheap but loose, especially for large `λ`.
//! * **`Y_l⁺(P,q)`** (Theorem 1) — `α·Σ_{i=l+1..d} λ^i · min(Σ_{p∈P} S_i(p,q), 1)`,
//!   where `S_i(p,q)` is the *reach* probability (not first-hit).  It is
//!   always at least as tight as `X_l⁺` (Lemma 5) and much tighter in
//!   practice, because most nodes `q` simply cannot be reached from `P` in
//!   few steps with any significant probability.
//!
//! The `Y` bound is pre-computed for all nodes with a single `d`-step
//! forward sweep seeded with **all** sources of `P` at once, exactly as the
//! paper's `probVec` implementation sketch describes (cost `O(d·|E_G|)`,
//! space `O(d·|V_G|)`).  The sweep runs on the sparse-frontier kernel of
//! [`crate::frontier`] (early steps only touch `P`'s few-hop
//! neighbourhood), and the suffix-table construction — independent per node
//! `q` — can be split across threads.

use dht_graph::{Graph, NodeId, NodeSet};

use crate::frontier::{WalkEngine, WalkScratch};
use crate::params::DhtParams;

/// `X_l⁺ = α · Σ_{i>l} λ^i` — the parameter-only tail bound of Lemma 2.
#[inline]
pub fn x_upper_bound(params: &DhtParams, l: usize) -> f64 {
    params.tail_bound(l)
}

/// Pre-computed `Y_l⁺(P, q)` bounds for every node `q` and every prefix
/// length `l ∈ [0, d]`.
#[derive(Debug, Clone)]
pub struct YBoundTable {
    d: usize,
    node_count: usize,
    /// Column-major: `suffix[q · (d + 1) + l] = Y_l⁺(P, q)`.  Column-major
    /// keeps each node's suffix chain contiguous, so the table can be built
    /// per-node (and in parallel) with the same per-node accumulation order
    /// as a serial build — bounds are bit-identical at any thread count.
    suffix: Vec<f64>,
}

impl YBoundTable {
    /// Builds the table for source set `P` with walk depth `d` using the
    /// default engine, serially.
    pub fn new(graph: &Graph, params: &DhtParams, p: &NodeSet, d: usize) -> Self {
        Self::new_with(
            graph,
            params,
            p,
            d,
            WalkEngine::default(),
            1,
            &mut WalkScratch::new(),
        )
    }

    /// Builds the table with an explicit propagation engine, thread count
    /// (for the suffix construction) and reusable scratch.
    ///
    /// One forward (non-absorbing) sweep of `d` steps is performed, seeded
    /// with mass 1 on every node of `P`; after step `i` the vector holds
    /// `Σ_{p∈P} S_i(p, v)` for every `v`.
    pub fn new_with(
        graph: &Graph,
        params: &DhtParams,
        p: &NodeSet,
        d: usize,
        engine: WalkEngine,
        threads: usize,
        scratch: &mut WalkScratch,
    ) -> Self {
        let n = graph.node_count();
        scratch.begin(n, p.iter());

        // reach_sums[i-1][v] = Σ_{p∈P} S_i(p, v)
        let mut reach_sums: Vec<Vec<f64>> = Vec::with_capacity(d);
        for _ in 0..d {
            scratch.step_forward(graph, engine);
            reach_sums.push(scratch.current().to_vec());
        }

        // Per-node suffix chains:
        // suffix[q][l] = suffix[q][l+1] + α·λ^{l+1} · min(reach_sums[l][q], 1),
        // accumulated back-to-front.  Nodes are independent, so the columns
        // are built in parallel chunks.
        let discounts: Vec<f64> = (0..d).map(|l| params.discount(l + 1)).collect();
        let stride = d + 1;
        let mut suffix = vec![0.0; n * stride];
        let workers = dht_par::effective_threads(threads);
        let nodes_per_chunk = n.div_ceil(workers.max(1)).max(1);
        dht_par::parallel_chunks_mut(
            threads,
            &mut suffix,
            nodes_per_chunk * stride,
            |offset, chunk| {
                let first_node = offset / stride;
                for (local, column) in chunk.chunks_mut(stride).enumerate() {
                    let q = first_node + local;
                    let mut acc = 0.0;
                    column[d] = 0.0;
                    for l in (0..d).rev() {
                        let capped = reach_sums[l][q].min(1.0);
                        acc += discounts[l] * capped;
                        column[l] = acc;
                    }
                }
            },
        );
        YBoundTable {
            d,
            node_count: n,
            suffix,
        }
    }

    /// The walk depth `d` the table was built for.
    pub fn depth(&self) -> usize {
        self.d
    }

    /// Number of nodes covered by the table.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// `Y_l⁺(P, q)`: upper bound on the mass still missing from `h_l(p,q)`
    /// for any `p ∈ P`, after `l` steps.  `l` is clamped to `[0, d]`.
    #[inline]
    pub fn bound(&self, l: usize, q: NodeId) -> f64 {
        let l = l.min(self.d);
        self.suffix[q.index() * (self.d + 1) + l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward_dht_all_sources;
    use crate::forward::{forward_dht, hitting_probabilities};
    use dht_graph::generators::erdos_renyi;
    use dht_graph::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // triangle 0-1-2 plus a tail 2-3-4 (undirected)
        let mut b = GraphBuilder::with_nodes(5);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn x_bound_is_the_geometric_tail() {
        let params = DhtParams::dht_lambda(0.5); // alpha = 2
        assert!((x_upper_bound(&params, 0) - 2.0).abs() < 1e-12);
        assert!((x_upper_bound(&params, 1) - 1.0).abs() < 1e-12);
        assert!(x_upper_bound(&params, 5) < x_upper_bound(&params, 4));
    }

    #[test]
    fn y_bound_never_exceeds_x_bound() {
        // Lemma 5: Y_l+(P, q) <= X_l+ for every q and l.
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let d = 8;
        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        let table = YBoundTable::new(&g, &params, &p, d);
        for l in 0..=d {
            let x = x_upper_bound(&params, l);
            for q in g.nodes() {
                assert!(
                    table.bound(l, q) <= x + 1e-12,
                    "Y bound at l={l}, q={q:?} exceeds X bound"
                );
            }
        }
    }

    #[test]
    fn y_bound_is_monotone_in_l() {
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let p = NodeSet::new("P", [NodeId(0)]);
        let table = YBoundTable::new(&g, &params, &p, 8);
        for q in g.nodes() {
            for l in 0..8 {
                assert!(table.bound(l + 1, q) <= table.bound(l, q) + 1e-12);
            }
        }
    }

    #[test]
    fn y_bound_at_depth_d_is_zero() {
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let p = NodeSet::new("P", [NodeId(0)]);
        let table = YBoundTable::new(&g, &params, &p, 8);
        for q in g.nodes() {
            assert_eq!(table.bound(8, q), 0.0);
            // over-long l values are clamped
            assert_eq!(table.bound(20, q), 0.0);
        }
    }

    #[test]
    fn engines_and_thread_counts_agree_on_the_table() {
        let g = erdos_renyi(60, 180, 7);
        let params = DhtParams::dht_lambda(0.3);
        let d = 8;
        let p = NodeSet::new("P", (0..6).map(NodeId));
        let mut scratch = WalkScratch::new();
        let reference =
            YBoundTable::new_with(&g, &params, &p, d, WalkEngine::Dense, 1, &mut scratch);
        for engine in [WalkEngine::Sparse, WalkEngine::Auto] {
            for threads in [1, 4] {
                let other =
                    YBoundTable::new_with(&g, &params, &p, d, engine, threads, &mut scratch);
                for q in g.nodes() {
                    for l in 0..=d {
                        let a = reference.bound(l, q);
                        let b = other.bound(l, q);
                        assert!(
                            (a - b).abs() < 1e-12,
                            "{engine:?} threads={threads} q={q:?} l={l}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_1_holds_on_small_graph() {
        // hd(p,q) <= hl(p,q) + Y_l+(P, q) for every p in P, q, l.
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let d = 8;
        let p_nodes = [NodeId(0), NodeId(1)];
        let p = NodeSet::new("P", p_nodes);
        let table = YBoundTable::new(&g, &params, &p, d);
        for &pn in &p_nodes {
            for q in g.nodes() {
                if q == pn {
                    continue;
                }
                let hits = hitting_probabilities(&g, pn, q, d);
                let hd = params.score_from_hits(&hits);
                for l in 0..=d {
                    let hl = params.score_from_hits(&hits[..l.min(hits.len())]);
                    assert!(
                        hd <= hl + table.bound(l, q) + 1e-9,
                        "violated at p={pn:?} q={q:?} l={l}: hd={hd} hl={hl} Y={}",
                        table.bound(l, q)
                    );
                }
            }
        }
    }

    #[test]
    fn x_bound_is_valid_on_random_graph() {
        // hd(p,q) <= hl(p,q) + X_l+ on a random graph (Lemma 2 instance).
        let g = erdos_renyi(40, 100, 3);
        let params = DhtParams::dht_lambda(0.4);
        let d = 8;
        let target = NodeId(5);
        let full = backward_dht_all_sources(&g, &params, target, d);
        for l in [0usize, 1, 2, 4] {
            let partial = backward_dht_all_sources(&g, &params, target, l.max(1));
            for u in g.nodes() {
                if u == target {
                    continue;
                }
                // partial at depth max(1, l) >= depth l score, so this is a
                // conservative check of hd <= hl + X_l+.
                let hl = if l == 0 {
                    params.min_score()
                } else {
                    partial[u.index()]
                };
                assert!(full[u.index()] <= hl + x_upper_bound(&params, l) + 1e-9);
            }
        }
    }

    #[test]
    fn y_bound_reflects_reachability() {
        // Nodes far from P get much tighter (smaller) Y bounds than near ones.
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let p = NodeSet::new("P", [NodeId(0)]);
        let table = YBoundTable::new(&g, &params, &p, 8);
        assert!(table.bound(1, NodeId(4)) < table.bound(1, NodeId(1)));
    }

    #[test]
    fn forward_matches_truncation_plus_tail_consistency() {
        // sanity: hd computed forward is within X_0+ of beta + alpha bound
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let h = forward_dht(&g, &params, NodeId(0), NodeId(4), 8);
        assert!(h <= params.min_score() + x_upper_bound(&params, 0) + 1e-12);
    }
}

//! Upper bounds on truncated DHT scores.
//!
//! The iterative-deepening joins prune candidates using an upper bound of
//! `h_d(p,q)` derived after only `l < d` walk steps:
//!
//! * **`X_l⁺`** (Lemma 2) — the geometric tail `α·λ^{l+1}/(1−λ)`, which only
//!   depends on the parameters.  Cheap but loose, especially for large `λ`.
//! * **`Y_l⁺(P,q)`** (Theorem 1) — `α·Σ_{i=l+1..d} λ^i · min(Σ_{p∈P} S_i(p,q), 1)`,
//!   where `S_i(p,q)` is the *reach* probability (not first-hit).  It is
//!   always at least as tight as `X_l⁺` (Lemma 5) and much tighter in
//!   practice, because most nodes `q` simply cannot be reached from `P` in
//!   few steps with any significant probability.
//!
//! The `Y` bound is pre-computed for all nodes with a single `d`-step
//! forward sweep seeded with **all** sources of `P` at once, exactly as the
//! paper's `probVec` implementation sketch describes (cost `O(d·|E_G|)`,
//! space `O(d·|V_G|)`).

use dht_graph::{Graph, NodeId, NodeSet};

use crate::params::DhtParams;

/// `X_l⁺ = α · Σ_{i>l} λ^i` — the parameter-only tail bound of Lemma 2.
#[inline]
pub fn x_upper_bound(params: &DhtParams, l: usize) -> f64 {
    params.tail_bound(l)
}

/// Pre-computed `Y_l⁺(P, q)` bounds for every node `q` and every prefix
/// length `l ∈ [0, d]`.
#[derive(Debug, Clone)]
pub struct YBoundTable {
    d: usize,
    /// `suffix[l][q] = α · Σ_{i=l+1..d} λ^i · min(sum_reach_i[q], 1)`
    suffix: Vec<Vec<f64>>,
}

impl YBoundTable {
    /// Builds the table for source set `P` with walk depth `d`.
    ///
    /// One forward (non-absorbing) sweep of `d` steps is performed, seeded
    /// with mass 1 on every node of `P`; after step `i` the vector holds
    /// `Σ_{p∈P} S_i(p, v)` for every `v`.
    pub fn new(graph: &Graph, params: &DhtParams, p: &NodeSet, d: usize) -> Self {
        let n = graph.node_count();
        let mut current = vec![0.0; n];
        for node in p.iter() {
            if node.index() < n {
                current[node.index()] = 1.0;
            }
        }
        let mut next = vec![0.0; n];

        // reach_sums[i-1][v] = Σ_{p∈P} S_i(p, v)
        let mut reach_sums: Vec<Vec<f64>> = Vec::with_capacity(d);
        for _ in 0..d {
            next.iter_mut().for_each(|x| *x = 0.0);
            for u in 0..n {
                let mass = current[u];
                if mass == 0.0 {
                    continue;
                }
                let u_id = NodeId(u as u32);
                for (&v, &pr) in graph.out_targets(u_id).iter().zip(graph.out_probs(u_id).iter()) {
                    next[v as usize] += mass * pr;
                }
            }
            reach_sums.push(next.clone());
            std::mem::swap(&mut current, &mut next);
        }

        // suffix[l][q] = α Σ_{i=l+1..d} λ^i min(reach_sums[i-1][q], 1)
        // computed back-to-front so each level is O(|V|).
        let mut suffix = vec![vec![0.0; n]; d + 1];
        for l in (0..d).rev() {
            let discount = params.discount(l + 1);
            for q in 0..n {
                let capped = reach_sums[l][q].min(1.0);
                suffix[l][q] = suffix[l + 1][q] + discount * capped;
            }
        }
        YBoundTable { d, suffix }
    }

    /// The walk depth `d` the table was built for.
    pub fn depth(&self) -> usize {
        self.d
    }

    /// `Y_l⁺(P, q)`: upper bound on the mass still missing from `h_l(p,q)`
    /// for any `p ∈ P`, after `l` steps.  `l` is clamped to `[0, d]`.
    #[inline]
    pub fn bound(&self, l: usize, q: NodeId) -> f64 {
        let l = l.min(self.d);
        self.suffix[l][q.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward_dht_all_sources;
    use crate::forward::{forward_dht, hitting_probabilities};
    use dht_graph::generators::erdos_renyi;
    use dht_graph::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // triangle 0-1-2 plus a tail 2-3-4 (undirected)
        let mut b = GraphBuilder::with_nodes(5);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn x_bound_is_the_geometric_tail() {
        let params = DhtParams::dht_lambda(0.5); // alpha = 2
        assert!((x_upper_bound(&params, 0) - 2.0).abs() < 1e-12);
        assert!((x_upper_bound(&params, 1) - 1.0).abs() < 1e-12);
        assert!(x_upper_bound(&params, 5) < x_upper_bound(&params, 4));
    }

    #[test]
    fn y_bound_never_exceeds_x_bound() {
        // Lemma 5: Y_l+(P, q) <= X_l+ for every q and l.
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let d = 8;
        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        let table = YBoundTable::new(&g, &params, &p, d);
        for l in 0..=d {
            let x = x_upper_bound(&params, l);
            for q in g.nodes() {
                assert!(
                    table.bound(l, q) <= x + 1e-12,
                    "Y bound at l={l}, q={q:?} exceeds X bound"
                );
            }
        }
    }

    #[test]
    fn y_bound_is_monotone_in_l() {
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let p = NodeSet::new("P", [NodeId(0)]);
        let table = YBoundTable::new(&g, &params, &p, 8);
        for q in g.nodes() {
            for l in 0..8 {
                assert!(table.bound(l + 1, q) <= table.bound(l, q) + 1e-12);
            }
        }
    }

    #[test]
    fn y_bound_at_depth_d_is_zero() {
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let p = NodeSet::new("P", [NodeId(0)]);
        let table = YBoundTable::new(&g, &params, &p, 8);
        for q in g.nodes() {
            assert_eq!(table.bound(8, q), 0.0);
            // over-long l values are clamped
            assert_eq!(table.bound(20, q), 0.0);
        }
    }

    #[test]
    fn theorem_1_holds_on_small_graph() {
        // hd(p,q) <= hl(p,q) + Y_l+(P, q) for every p in P, q, l.
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let d = 8;
        let p_nodes = [NodeId(0), NodeId(1)];
        let p = NodeSet::new("P", p_nodes);
        let table = YBoundTable::new(&g, &params, &p, d);
        for &pn in &p_nodes {
            for q in g.nodes() {
                if q == pn {
                    continue;
                }
                let hits = hitting_probabilities(&g, pn, q, d);
                let hd = params.score_from_hits(&hits);
                for l in 0..=d {
                    let hl = params.score_from_hits(&hits[..l.min(hits.len())]);
                    assert!(
                        hd <= hl + table.bound(l, q) + 1e-9,
                        "violated at p={pn:?} q={q:?} l={l}: hd={hd} hl={hl} Y={}",
                        table.bound(l, q)
                    );
                }
            }
        }
    }

    #[test]
    fn x_bound_is_valid_on_random_graph() {
        // hd(p,q) <= hl(p,q) + X_l+ on a random graph (Lemma 2 instance).
        let g = erdos_renyi(40, 100, 3);
        let params = DhtParams::dht_lambda(0.4);
        let d = 8;
        let target = NodeId(5);
        let full = backward_dht_all_sources(&g, &params, target, d);
        for l in [0usize, 1, 2, 4] {
            let partial = backward_dht_all_sources(&g, &params, target, l.max(1));
            for u in g.nodes() {
                if u == target {
                    continue;
                }
                // partial at depth max(1, l) >= depth l score, so this is a
                // conservative check of hd <= hl + X_l+.
                let hl = if l == 0 { params.min_score() } else { partial[u.index()] };
                assert!(full[u.index()] <= hl + x_upper_bound(&params, l) + 1e-9);
            }
        }
    }

    #[test]
    fn y_bound_reflects_reachability() {
        // Nodes far from P get much tighter (smaller) Y bounds than near ones.
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let p = NodeSet::new("P", [NodeId(0)]);
        let table = YBoundTable::new(&g, &params, &p, 8);
        assert!(table.bound(1, NodeId(4)) < table.bound(1, NodeId(1)));
    }

    #[test]
    fn forward_matches_truncation_plus_tail_consistency() {
        // sanity: hd computed forward is within X_0+ of beta + alpha bound
        let g = triangle_plus_tail();
        let params = DhtParams::paper_default();
        let h = forward_dht(&g, &params, NodeId(0), NodeId(4), 8);
        assert!(h <= params.min_score() + x_upper_bound(&params, 0) + 1e-12);
    }
}

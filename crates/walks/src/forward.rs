//! Forward absorbing-walk engine.
//!
//! Given a source `u` and a target `v`, the engine propagates the walker's
//! probability distribution one step at a time.  The target is *absorbing*:
//! probability mass that reaches `v` is recorded as the first-hit probability
//! `P_i(u,v)` of the current step and is not propagated any further.  This is
//! exactly the evaluation strategy of F-BJ described in Section V-B of the
//! paper, except that propagation runs on the sparse-frontier kernel of
//! [`crate::frontier`]: early steps only touch the source's few-hop
//! neighbourhood instead of sweeping all of `|V_G|`, and a reused
//! [`WalkScratch`] removes the per-pair vector allocations.  Passing
//! [`WalkEngine::Dense`] reproduces the seed's dense sweep bit for bit.

use dht_graph::{Graph, NodeId};

use crate::frontier::{WalkEngine, WalkScratch};
use crate::params::DhtParams;

/// Incremental forward absorbing walk from a fixed source towards a fixed
/// target.  Each call to [`AbsorbingWalk::step`] advances one step and
/// returns the first-hit probability of that step.
#[derive(Debug, Clone)]
pub struct AbsorbingWalk<'g> {
    graph: &'g Graph,
    target: NodeId,
    engine: WalkEngine,
    scratch: WalkScratch,
    steps_taken: usize,
}

impl<'g> AbsorbingWalk<'g> {
    /// Starts a walk at `source` with absorbing `target` using the default
    /// engine.
    pub fn new(graph: &'g Graph, source: NodeId, target: NodeId) -> Self {
        Self::with_engine(graph, source, target, WalkEngine::default())
    }

    /// Starts a walk with an explicit propagation engine.
    pub fn with_engine(
        graph: &'g Graph,
        source: NodeId,
        target: NodeId,
        engine: WalkEngine,
    ) -> Self {
        let mut scratch = WalkScratch::new();
        scratch.begin(graph.node_count(), [source]);
        AbsorbingWalk {
            graph,
            target,
            engine,
            scratch,
            steps_taken: 0,
        }
    }

    /// Number of steps performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Advances the walk by one step and returns `P_i(source, target)` for
    /// the new step `i`.
    pub fn step(&mut self) -> f64 {
        self.steps_taken += 1;
        if self.scratch.is_exhausted() {
            // No mass left anywhere: every later first-hit probability is 0.
            return 0.0;
        }
        self.scratch
            .step_forward_absorbing(self.graph, self.target, self.engine)
    }

    /// Runs the walk for `d` steps (from the current position) and returns
    /// the per-step first-hit probabilities.
    pub fn run(&mut self, d: usize) -> Vec<f64> {
        (0..d).map(|_| self.step()).collect()
    }
}

/// First-hit probabilities `P_1 .. P_d` from `source` to `target`, computed
/// on a caller-provided scratch (no allocation beyond the output vector).
pub fn hitting_probabilities_with(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    d: usize,
    engine: WalkEngine,
    scratch: &mut WalkScratch,
) -> Vec<f64> {
    scratch.begin(graph.node_count(), [source]);
    let mut hits = Vec::with_capacity(d);
    for _ in 0..d {
        if scratch.is_exhausted() {
            hits.push(0.0);
            continue;
        }
        hits.push(scratch.step_forward_absorbing(graph, target, engine));
    }
    hits
}

/// First-hit probabilities `P_1 .. P_d` from `source` to `target`.
pub fn hitting_probabilities(graph: &Graph, source: NodeId, target: NodeId, d: usize) -> Vec<f64> {
    hitting_probabilities_with(
        graph,
        source,
        target,
        d,
        WalkEngine::default(),
        &mut WalkScratch::new(),
    )
}

/// Truncated DHT score `h_d(source, target)` computed with a forward
/// absorbing walk on a caller-provided scratch.  This is the inner loop of
/// F-BJ / F-IDJ: the score is accumulated on the fly (no hit vector is
/// materialised) and the walk stops early once no probability mass is left.
pub fn forward_dht_with(
    graph: &Graph,
    params: &DhtParams,
    source: NodeId,
    target: NodeId,
    d: usize,
    engine: WalkEngine,
    scratch: &mut WalkScratch,
) -> f64 {
    if source == target {
        // The paper defines DHT over distinct nodes; the conventional value
        // for a self pair is "hit at step 0", i.e. α + β (`h(v,v) = 0` for
        // DHT_λ — see [`DhtParams::self_score`]).  The backward engine and
        // the exact oracles use the same convention; joins never score
        // identical nodes.
        return params.self_score();
    }
    scratch.begin(graph.node_count(), [source]);
    let mut acc = 0.0;
    let mut discount = params.alpha;
    for _ in 0..d {
        if scratch.is_exhausted() {
            break;
        }
        discount *= params.lambda;
        acc += discount * scratch.step_forward_absorbing(graph, target, engine);
    }
    acc + params.beta
}

/// Truncated DHT score `h_d(source, target)` computed with a forward
/// absorbing walk.
pub fn forward_dht(
    graph: &Graph,
    params: &DhtParams,
    source: NodeId,
    target: NodeId,
    d: usize,
) -> f64 {
    forward_dht_with(
        graph,
        params,
        source,
        target,
        d,
        WalkEngine::default(),
        &mut WalkScratch::new(),
    )
}

/// Reach (not first-hit) probabilities `S_i(source, ·)` for `i = 1..d`
/// without any absorption: entry `[i-1][v]` is the probability that a walker
/// starting at `source` is at `v` after exactly `i` steps.  Used by tests
/// and by the `Y_l⁺` bound construction in [`crate::bounds`].
pub fn reach_probabilities(graph: &Graph, source: NodeId, d: usize) -> Vec<Vec<f64>> {
    let mut scratch = WalkScratch::new();
    scratch.begin(graph.node_count(), [source]);
    let mut out = Vec::with_capacity(d);
    for _ in 0..d {
        scratch.step_forward(graph, WalkEngine::default());
        out.push(scratch.current().to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::GraphBuilder;

    /// Path graph 0 -> 1 -> 2 (unit weights, directed).
    fn path3() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_unit_edge(NodeId(1), NodeId(2)).unwrap();
        b.build().unwrap()
    }

    /// Undirected triangle on 3 nodes.
    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn deterministic_path_hits_exactly_once() {
        let g = path3();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(2), 5);
        assert_eq!(hits.len(), 5);
        assert!((hits[1] - 1.0).abs() < 1e-12, "hit at step 2");
        assert!(hits[0].abs() < 1e-12);
        assert!(hits[2].abs() < 1e-12 && hits[3].abs() < 1e-12);
    }

    #[test]
    fn direct_neighbour_hits_at_step_one() {
        let g = path3();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(1), 3);
        assert!((hits[0] - 1.0).abs() < 1e-12);
        assert!(hits[1].abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_never_hits() {
        let g = path3();
        let hits = hitting_probabilities(&g, NodeId(2), NodeId(0), 6);
        assert!(hits.iter().all(|&p| p == 0.0));
        let params = DhtParams::paper_default();
        assert_eq!(
            forward_dht(&g, &params, NodeId(2), NodeId(0), 6),
            params.min_score()
        );
    }

    #[test]
    fn triangle_first_hit_probabilities() {
        // From node 0 in the undirected triangle, target node 1:
        // P_1 = 1/2 (step directly), P_2 = 1/4 (0 -> 2 -> 1), P_3 = 1/8, ...
        let g = triangle();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(1), 4);
        assert!((hits[0] - 0.5).abs() < 1e-12);
        assert!((hits[1] - 0.25).abs() < 1e-12);
        assert!((hits[2] - 0.125).abs() < 1e-12);
        assert!((hits[3] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn total_hit_probability_never_exceeds_one() {
        let g = triangle();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(2), 30);
        let total: f64 = hits.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.99, "triangle walks eventually hit the target");
    }

    #[test]
    fn dht_score_increases_with_depth() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let h2 = forward_dht(&g, &params, NodeId(0), NodeId(1), 2);
        let h4 = forward_dht(&g, &params, NodeId(0), NodeId(1), 4);
        let h8 = forward_dht(&g, &params, NodeId(0), NodeId(1), 8);
        assert!(h2 <= h4 + 1e-12);
        assert!(h4 <= h8 + 1e-12);
    }

    #[test]
    fn dht_score_is_bounded_by_params_range() {
        let g = triangle();
        let params = DhtParams::paper_default();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u == v {
                    continue;
                }
                let h = forward_dht(&g, &params, NodeId(u), NodeId(v), 8);
                assert!(h >= params.min_score() - 1e-12);
                assert!(h <= params.max_score() + 1e-12);
            }
        }
    }

    #[test]
    fn self_pair_scores_the_step_zero_convention() {
        // Regression test for the h(v, v) convention: all engines and
        // oracles return α + β (= 0 for DHT_λ) for self pairs.
        let g = triangle();
        for params in [DhtParams::paper_default(), DhtParams::dht_e()] {
            for v in 0..3u32 {
                let h = forward_dht(&g, &params, NodeId(v), NodeId(v), 8);
                assert_eq!(h, params.self_score());
            }
        }
        // DHT_λ's boundary condition is literally h(v, v) = 0.
        assert_eq!(
            forward_dht(&g, &DhtParams::dht_lambda(0.3), NodeId(1), NodeId(1), 8),
            0.0
        );
    }

    #[test]
    fn incremental_walk_matches_batch_run() {
        let g = triangle();
        let mut w = AbsorbingWalk::new(&g, NodeId(0), NodeId(1));
        let first_two = [w.step(), w.step()];
        let rest = w.run(2);
        let batch = hitting_probabilities(&g, NodeId(0), NodeId(1), 4);
        assert!((first_two[0] - batch[0]).abs() < 1e-12);
        assert!((first_two[1] - batch[1]).abs() < 1e-12);
        assert!((rest[0] - batch[2]).abs() < 1e-12);
        assert!((rest[1] - batch[3]).abs() < 1e-12);
        assert_eq!(w.steps_taken(), 4);
    }

    #[test]
    fn all_engines_agree_on_hitting_probabilities() {
        let g = triangle();
        let mut scratch = WalkScratch::new();
        let dense = hitting_probabilities_with(
            &g,
            NodeId(0),
            NodeId(2),
            8,
            WalkEngine::Dense,
            &mut scratch,
        );
        for engine in [WalkEngine::Sparse, WalkEngine::Auto] {
            let other =
                hitting_probabilities_with(&g, NodeId(0), NodeId(2), 8, engine, &mut scratch);
            for (a, b) in dense.iter().zip(other.iter()) {
                assert!((a - b).abs() < 1e-12, "{engine:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_pairs_matches_fresh_walks() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let mut scratch = WalkScratch::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                let pooled = forward_dht_with(
                    &g,
                    &params,
                    NodeId(u),
                    NodeId(v),
                    8,
                    WalkEngine::default(),
                    &mut scratch,
                );
                let fresh = forward_dht(&g, &params, NodeId(u), NodeId(v), 8);
                assert_eq!(pooled, fresh, "scratch reuse changed ({u}, {v})");
            }
        }
    }

    #[test]
    fn reach_probabilities_sum_to_one_each_step_on_closed_graph() {
        let g = triangle();
        let reach = reach_probabilities(&g, NodeId(0), 5);
        for step in &reach {
            let sum: f64 = step.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reach_dominates_first_hit() {
        // Lemma 3: P_i(u,v) <= S_i(u,v).
        let g = triangle();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(1), 6);
        let reach = reach_probabilities(&g, NodeId(0), 6);
        for i in 0..6 {
            assert!(hits[i] <= reach[i][1] + 1e-12);
        }
    }

    #[test]
    fn weighted_edges_bias_the_first_step() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let hits_to_1 = hitting_probabilities(&g, NodeId(0), NodeId(1), 1);
        let hits_to_2 = hitting_probabilities(&g, NodeId(0), NodeId(2), 1);
        assert!((hits_to_1[0] - 0.75).abs() < 1e-12);
        assert!((hits_to_2[0] - 0.25).abs() < 1e-12);
    }
}

//! Forward absorbing-walk engine.
//!
//! Given a source `u` and a target `v`, the engine propagates the walker's
//! probability distribution one step at a time.  The target is *absorbing*:
//! probability mass that reaches `v` is recorded as the first-hit probability
//! `P_i(u,v)` of the current step and is not propagated any further.  This is
//! exactly the evaluation strategy of F-BJ described in Section V-B of the
//! paper (a vector `r` of size `|V_G|`, refreshed once per step at a cost of
//! `O(|E_G|)`).

use dht_graph::{Graph, NodeId};

use crate::params::DhtParams;

/// Incremental forward absorbing walk from a fixed source towards a fixed
/// target.  Each call to [`AbsorbingWalk::step`] advances one step and
/// returns the first-hit probability of that step.
#[derive(Debug, Clone)]
pub struct AbsorbingWalk<'g> {
    graph: &'g Graph,
    target: NodeId,
    current: Vec<f64>,
    next: Vec<f64>,
    steps_taken: usize,
}

impl<'g> AbsorbingWalk<'g> {
    /// Starts a walk at `source` with absorbing `target`.
    pub fn new(graph: &'g Graph, source: NodeId, target: NodeId) -> Self {
        let n = graph.node_count();
        let mut current = vec![0.0; n];
        if source.index() < n {
            current[source.index()] = 1.0;
        }
        AbsorbingWalk { graph, target, current, next: vec![0.0; n], steps_taken: 0 }
    }

    /// Number of steps performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Advances the walk by one step and returns `P_i(source, target)` for
    /// the new step `i`.
    pub fn step(&mut self) -> f64 {
        let n = self.graph.node_count();
        self.next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let mass = self.current[u];
            if mass == 0.0 || u == self.target.index() {
                // Mass already absorbed at the target is never propagated.
                continue;
            }
            let u = NodeId(u as u32);
            let targets = self.graph.out_targets(u);
            let probs = self.graph.out_probs(u);
            for (&v, &p) in targets.iter().zip(probs.iter()) {
                self.next[v as usize] += mass * p;
            }
        }
        let hit = self.next[self.target.index()];
        // Record the absorbed mass and clear it so it cannot be re-counted.
        self.next[self.target.index()] = 0.0;
        std::mem::swap(&mut self.current, &mut self.next);
        self.steps_taken += 1;
        hit
    }

    /// Runs the walk for `d` steps (from the current position) and returns
    /// the per-step first-hit probabilities.
    pub fn run(&mut self, d: usize) -> Vec<f64> {
        (0..d).map(|_| self.step()).collect()
    }
}

/// First-hit probabilities `P_1 .. P_d` from `source` to `target`.
pub fn hitting_probabilities(graph: &Graph, source: NodeId, target: NodeId, d: usize) -> Vec<f64> {
    AbsorbingWalk::new(graph, source, target).run(d)
}

/// Truncated DHT score `h_d(source, target)` computed with a forward
/// absorbing walk.
pub fn forward_dht(
    graph: &Graph,
    params: &DhtParams,
    source: NodeId,
    target: NodeId,
    d: usize,
) -> f64 {
    if source == target {
        // The paper defines DHT over distinct nodes; by convention
        // h(v, v) = 0 for DHT_λ.  We return the score of "hit at step 0",
        // i.e. α·Σ 0 + β would be wrong, so we follow DHT_λ's boundary
        // condition h(v,v) = 0 shifted into the general form: a walker that
        // is already at the target has hit it, which the truncated series
        // cannot express; callers never score identical nodes in joins.
        return params.max_score();
    }
    let hits = hitting_probabilities(graph, source, target, d);
    params.score_from_hits(&hits)
}

/// Reach (not first-hit) probabilities `S_i(source, ·)` for `i = 1..d`
/// without any absorption: entry `[i-1][v]` is the probability that a walker
/// starting at `source` is at `v` after exactly `i` steps.  Used by tests
/// and by the `Y_l⁺` bound construction in [`crate::bounds`].
pub fn reach_probabilities(graph: &Graph, source: NodeId, d: usize) -> Vec<Vec<f64>> {
    let n = graph.node_count();
    let mut current = vec![0.0; n];
    if source.index() < n {
        current[source.index()] = 1.0;
    }
    let mut out = Vec::with_capacity(d);
    let mut next = vec![0.0; n];
    for _ in 0..d {
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let mass = current[u];
            if mass == 0.0 {
                continue;
            }
            let u = NodeId(u as u32);
            for (&v, &p) in graph.out_targets(u).iter().zip(graph.out_probs(u).iter()) {
                next[v as usize] += mass * p;
            }
        }
        out.push(next.clone());
        std::mem::swap(&mut current, &mut next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::GraphBuilder;

    /// Path graph 0 -> 1 -> 2 (unit weights, directed).
    fn path3() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_unit_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_unit_edge(NodeId(1), NodeId(2)).unwrap();
        b.build().unwrap()
    }

    /// Undirected triangle on 3 nodes.
    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_nodes(3);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn deterministic_path_hits_exactly_once() {
        let g = path3();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(2), 5);
        assert_eq!(hits.len(), 5);
        assert!((hits[1] - 1.0).abs() < 1e-12, "hit at step 2");
        assert!(hits[0].abs() < 1e-12);
        assert!(hits[2].abs() < 1e-12 && hits[3].abs() < 1e-12);
    }

    #[test]
    fn direct_neighbour_hits_at_step_one() {
        let g = path3();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(1), 3);
        assert!((hits[0] - 1.0).abs() < 1e-12);
        assert!(hits[1].abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_never_hits() {
        let g = path3();
        let hits = hitting_probabilities(&g, NodeId(2), NodeId(0), 6);
        assert!(hits.iter().all(|&p| p == 0.0));
        let params = DhtParams::paper_default();
        assert_eq!(forward_dht(&g, &params, NodeId(2), NodeId(0), 6), params.min_score());
    }

    #[test]
    fn triangle_first_hit_probabilities() {
        // From node 0 in the undirected triangle, target node 1:
        // P_1 = 1/2 (step directly), P_2 = 1/4 (0 -> 2 -> 1), P_3 = 1/8, ...
        let g = triangle();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(1), 4);
        assert!((hits[0] - 0.5).abs() < 1e-12);
        assert!((hits[1] - 0.25).abs() < 1e-12);
        assert!((hits[2] - 0.125).abs() < 1e-12);
        assert!((hits[3] - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn total_hit_probability_never_exceeds_one() {
        let g = triangle();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(2), 30);
        let total: f64 = hits.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.99, "triangle walks eventually hit the target");
    }

    #[test]
    fn dht_score_increases_with_depth() {
        let g = triangle();
        let params = DhtParams::paper_default();
        let h2 = forward_dht(&g, &params, NodeId(0), NodeId(1), 2);
        let h4 = forward_dht(&g, &params, NodeId(0), NodeId(1), 4);
        let h8 = forward_dht(&g, &params, NodeId(0), NodeId(1), 8);
        assert!(h2 <= h4 + 1e-12);
        assert!(h4 <= h8 + 1e-12);
    }

    #[test]
    fn dht_score_is_bounded_by_params_range() {
        let g = triangle();
        let params = DhtParams::paper_default();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u == v {
                    continue;
                }
                let h = forward_dht(&g, &params, NodeId(u), NodeId(v), 8);
                assert!(h >= params.min_score() - 1e-12);
                assert!(h <= params.max_score() + 1e-12);
            }
        }
    }

    #[test]
    fn incremental_walk_matches_batch_run() {
        let g = triangle();
        let mut w = AbsorbingWalk::new(&g, NodeId(0), NodeId(1));
        let first_two = vec![w.step(), w.step()];
        let rest = w.run(2);
        let batch = hitting_probabilities(&g, NodeId(0), NodeId(1), 4);
        assert!((first_two[0] - batch[0]).abs() < 1e-12);
        assert!((first_two[1] - batch[1]).abs() < 1e-12);
        assert!((rest[0] - batch[2]).abs() < 1e-12);
        assert!((rest[1] - batch[3]).abs() < 1e-12);
        assert_eq!(w.steps_taken(), 4);
    }

    #[test]
    fn reach_probabilities_sum_to_one_each_step_on_closed_graph() {
        let g = triangle();
        let reach = reach_probabilities(&g, NodeId(0), 5);
        for step in &reach {
            let sum: f64 = step.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reach_dominates_first_hit() {
        // Lemma 3: P_i(u,v) <= S_i(u,v).
        let g = triangle();
        let hits = hitting_probabilities(&g, NodeId(0), NodeId(1), 6);
        let reach = reach_probabilities(&g, NodeId(0), 6);
        for i in 0..6 {
            assert!(hits[i] <= reach[i][1] + 1e-12);
        }
    }

    #[test]
    fn weighted_edges_bias_the_first_step() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let hits_to_1 = hitting_probabilities(&g, NodeId(0), NodeId(1), 1);
        let hits_to_2 = hitting_probabilities(&g, NodeId(0), NodeId(2), 1);
        assert!((hits_to_1[0] - 0.75).abs() < 1e-12);
        assert!((hits_to_2[0] - 0.25).abs() < 1e-12);
    }
}

//! # dht-walks
//!
//! Discounted hitting time (DHT) measures and the random-walk engines that
//! evaluate them.
//!
//! The paper (Section V) unifies the two published DHT variants into one
//! *general form* (Definition 5):
//!
//! ```text
//! h(u,v)   = α · Σ_{i≥1}   λ^i · P_i(u,v) + β
//! h_d(u,v) = α · Σ_{i=1..d} λ^i · P_i(u,v) + β
//! ```
//!
//! where `P_i(u,v)` is the probability that a random walker starting at `u`
//! *first* hits `v` at exactly step `i`, `λ ∈ (0,1)` is the decay factor and
//! `α ≠ 0`, `β` are real coefficients.  Lemma 1 picks the truncation depth
//! `d` so that `|h − h_d| ≤ ε`.
//!
//! This crate provides:
//!
//! * [`DhtParams`] — the general form plus the `DHT_e` and `DHT_λ`
//!   parameterisations and the Lemma-1 depth selection;
//! * [`forward`] — forward *absorbing* walks that compute `P_i(u,v)` for a
//!   fixed source `u` and target `v` (used by F-BJ / F-IDJ);
//! * [`backward`] — backward walks (`backWalk` in the paper) that compute
//!   `P_i(·,q)` for **all** sources at once for a fixed target `q` (used by
//!   B-BJ / B-IDJ);
//! * [`bounds`] — the `X_l⁺` tail bound and the tighter `Y_l⁺(P,q)` bound of
//!   Theorem 1, which drive the pruning of B-IDJ-X and B-IDJ-Y;
//! * [`exact`] — small-graph oracles (path enumeration, dense all-pairs
//!   tables) used to validate the walk engines in tests;
//! * [`frontier`] — the sparse-frontier propagation kernel all of the above
//!   run on: reusable [`WalkScratch`] buffers (pooled via [`ScratchPool`]),
//!   frontier tracking with a push/pull switch to dense sweeps once the
//!   frontier saturates, and the [`WalkEngine`] knob selecting between the
//!   dense reference engine, the sparse one, and the per-graph calibrated
//!   `Auto` mode;
//! * [`cache`] — graph-lifetime query state: the [`QueryCtx`] session
//!   context with its pooled scratches, byte-budgeted LRU caches of backward
//!   DHT columns (session-private [`ColumnCache`] or the cross-session,
//!   lock-striped [`SharedColumnCache`]) and lazily built Y-bound tables,
//!   which the join layers of `dht-core` / `dht-measures` and the
//!   `dht-engine` sessions run through.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backward;
pub mod bounds;
pub mod cache;
pub mod exact;
pub mod forward;
pub mod frontier;
pub mod params;

pub use backward::BackwardWalk;
pub use bounds::{x_upper_bound, YBoundTable};
pub use cache::{
    column_bytes, CacheStats, ColumnCache, QueryCtx, SharedColumnCache, SharedYTableStore,
};
pub use forward::AbsorbingWalk;
pub use frontier::{ScratchPool, WalkEngine, WalkScratch};
pub use params::{DhtParams, ParamsError};
// Re-exported so the join layers can record trace phases without taking a
// direct `dht-obs` dependency.
pub use dht_obs::{Phase, SpanGuard, Trace};

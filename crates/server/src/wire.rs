//! The wire encoding of answers: one line per response, **bit-exact**.
//!
//! Scores travel as the 16-hex-digit IEEE-754 bit pattern of their `f64`
//! (`f64::to_bits`), not as a decimal rendering — so a response line is a
//! lossless function of the in-process [`EngineOutput`], and "the server
//! answers bit-identically to `Session::run`" is checkable by comparing
//! **strings**.  That is exactly what the loopback parity proptest and
//! `dht loadgen --graph/--sets` verification do.
//!
//! ```text
//! TWOWAY 2 4:17:3fe5a00000000000 9:17:3fe0000000000000
//! NWAY 1 3,9,12:3fd5550000000000
//! ```

use dht_engine::EngineOutput;

/// Encodes an answer as its single-line wire payload (without the leading
/// `OK `): `TWOWAY n left:right:bits ...` or `NWAY n a,b,..:bits ...`.
pub fn encode_output(output: &EngineOutput) -> String {
    match output {
        EngineOutput::TwoWay(out) => {
            let mut line = format!("TWOWAY {}", out.pairs.len());
            for pair in &out.pairs {
                line.push_str(&format!(
                    " {}:{}:{:016x}",
                    pair.left.0,
                    pair.right.0,
                    pair.score.to_bits()
                ));
            }
            line
        }
        EngineOutput::NWay(out) => {
            let mut line = format!("NWAY {}", out.answers.len());
            for answer in &out.answers {
                let nodes: Vec<String> =
                    answer.nodes.iter().map(|node| node.0.to_string()).collect();
                line.push_str(&format!(
                    " {}:{:016x}",
                    nodes.join(","),
                    answer.score.to_bits()
                ));
            }
            line
        }
    }
}

/// Whether a response line is the server's typed queue-full rejection
/// (`ERR BUSY …`) — re-sendable after a backoff.
pub fn is_busy(response: &str) -> bool {
    response.starts_with("ERR BUSY")
}

/// Whether a response line is the server's typed rate-limit rejection
/// (`ERR QUOTA …`) — re-sendable after the hinted retry-after delay.
pub fn is_quota(response: &str) -> bool {
    response.starts_with("ERR QUOTA")
}

/// Whether a response line reports an expired request deadline
/// (`ERR DEADLINE …`) — the query was never executed.
pub fn is_deadline(response: &str) -> bool {
    response.starts_with("ERR DEADLINE")
}

/// Whether a response line is the router's typed backend-failure report
/// (`ERR SHARD <name> unavailable …`) — the query reached the router but
/// a backend holding part of its answer was down.
pub fn is_shard(response: &str) -> bool {
    response.starts_with("ERR SHARD")
}

/// Extracts the deterministic retry-after hint from an `ERR QUOTA` line
/// (`… retry after <ms> ms`); `None` on any other line.
pub fn retry_after_ms(response: &str) -> Option<u64> {
    if !is_quota(response) {
        return None;
    }
    let (_, tail) = response.split_once("retry after ")?;
    tail.split_whitespace().next()?.parse().ok()
}

/// Strips the `#`-comment and surrounding whitespace from a protocol /
/// query-file line; `None` when nothing remains.  Shared by the server's
/// connection reader and the load generator, so both skip exactly the
/// lines the query-file parser skips.
pub fn strip_line(raw: &str) -> Option<&str> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_core::twoway::TwoWayAlgorithm;
    use dht_engine::Engine;
    use dht_graph::{GraphBuilder, NodeId, NodeSet};

    #[test]
    fn encoding_is_bit_exact_and_stable() {
        let mut b = GraphBuilder::with_nodes(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let engine = Engine::new(b.build().unwrap());
        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        let q = NodeSet::new("Q", [NodeId(3), NodeId(4)]);
        let out = engine
            .session()
            .two_way(TwoWayAlgorithm::BackwardBasic, &p, &q, 2);
        let line = encode_output(&dht_engine::EngineOutput::TwoWay(out.clone()));
        assert!(line.starts_with("TWOWAY 2 "), "{line}");
        // Round-trip the bit patterns: the encoding loses nothing.
        for (field, pair) in line.split(' ').skip(2).zip(out.pairs.iter()) {
            let bits = field.rsplit(':').next().unwrap();
            let score = f64::from_bits(u64::from_str_radix(bits, 16).unwrap());
            assert!(score == pair.score, "bit-exact score survives the wire");
        }
        // Identical runs encode identically (the string is the parity key).
        let again = engine
            .session()
            .two_way(TwoWayAlgorithm::BackwardBasic, &p, &q, 2);
        assert_eq!(
            line,
            encode_output(&dht_engine::EngineOutput::TwoWay(again))
        );
    }

    #[test]
    fn typed_rejections_classify_and_quota_hints_parse() {
        assert!(is_busy(
            "ERR BUSY interactive queue full (4 queued, capacity 4); re-send later"
        ));
        assert!(!is_busy("ERR QUOTA rate limit exceeded"));
        assert!(is_quota(
            "ERR QUOTA rate limit exceeded (50/s, burst 8); retry after 17 ms"
        ));
        assert!(is_deadline("ERR DEADLINE budget of 5 ms exhausted"));
        assert!(!is_deadline("OK TWOWAY 0"));
        assert!(is_shard("ERR SHARD shard-1 unavailable; retry later"));
        assert!(!is_shard("ERR BUSY interactive queue full"));
        assert_eq!(
            retry_after_ms("ERR QUOTA rate limit exceeded (50/s, burst 8); retry after 17 ms"),
            Some(17)
        );
        assert_eq!(retry_after_ms("ERR BUSY queue full; re-send later"), None);
        assert_eq!(retry_after_ms("ERR QUOTA malformed hint"), None);
    }

    #[test]
    fn comments_and_blanks_strip_like_the_query_file_parser() {
        assert_eq!(strip_line("P Q 3 # hot pair"), Some("P Q 3"));
        assert_eq!(strip_line("   \t"), None);
        assert_eq!(strip_line("# all comment"), None);
        assert_eq!(strip_line("nway chain P Q"), Some("nway chain P Q"));
    }
}

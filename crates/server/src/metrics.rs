//! Per-request latency tracking and serving counters, surfaced over the
//! wire by the `STATS` verb and the full `METRICS` exposition dump.
//!
//! Everything lives on a [`dht_obs::Registry`]: counters and latency
//! histograms update lock-free on the hot path, and `STATS` is now a
//! *view* over the registry — its `p50/p90/p99/max` fields read the exact
//! log₂-bucket histograms ([`dht_obs::Histogram`]) instead of the old
//! bounded sampling reservoir, so percentiles count **every** request
//! with no sampling bias (at the histograms' factor-2 bucket resolution).
//! Latencies are tracked in three histograms: one global and one per
//! priority class — so `STATS` can show that interactive p99 stays
//! bounded while batch p99 balloons under a flood, which is the whole
//! point of the two-level queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dht_core::queryline::Priority;
use dht_obs::{Counter, Gauge, Histogram, Registry};
use dht_walks::CacheStats;

/// Build identification reported by `STATS` (`build=`): the crate version,
/// which the workspace pins to the same value `dht --version` prints — so
/// fleet operators (and the router's backend health lines) can tell
/// mixed-version backends apart.
pub const BUILD_ID: &str = env!("CARGO_PKG_VERSION");

/// Minimum interval between slow-query log lines (bounded-rate: a storm
/// of over-budget queries must not turn stderr into the bottleneck).
const SLOW_LOG_INTERVAL: Duration = Duration::from_millis(250);

/// `p`-th percentile (0 ≤ p ≤ 1) of an ascending-sorted sample, `0.0` when
/// empty — the same convention `dht querystream` reports.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

/// Registry handles for one registered graph's sampled (set-at-scrape)
/// gauges: shared-cache state and planner decisions.
#[derive(Debug)]
pub(crate) struct GraphGauges {
    /// Served requests against this graph (`dht_graph_served_total`).
    pub(crate) served: Arc<Counter>,
    /// Shared column-cache hits / misses / evictions.
    pub(crate) cache_hits: Arc<Gauge>,
    /// See [`GraphGauges::cache_hits`].
    pub(crate) cache_misses: Arc<Gauge>,
    /// See [`GraphGauges::cache_hits`].
    pub(crate) cache_evictions: Arc<Gauge>,
    /// Shared Y-table hits / misses.
    pub(crate) y_hits: Arc<Gauge>,
    /// See [`GraphGauges::y_hits`].
    pub(crate) y_misses: Arc<Gauge>,
    /// Configured column-cache byte budget.
    pub(crate) cache_bytes: Arc<Gauge>,
    /// Planner `Auto` decisions per algorithm slot, in
    /// `dht_engine::PlanCounters::SLOTS` order.
    pub(crate) plan_chosen: Vec<Arc<Gauge>>,
    /// `(plans made, candidates costed)` gauges.
    pub(crate) plans: Arc<Gauge>,
    /// See [`GraphGauges::plans`].
    pub(crate) plan_candidates: Arc<Gauge>,
}

/// What the server measures while running; shared by every worker and
/// connection thread.  All counters/histograms are registry handles, so
/// `METRICS` renders them without any snapshot plumbing.
#[derive(Debug)]
pub(crate) struct Metrics {
    registry: Registry,
    interactive_served: Arc<Counter>,
    batch_served: Arc<Counter>,
    rejected: Arc<Counter>,
    quota_rejected: Arc<Counter>,
    expired: Arc<Counter>,
    dropped: Arc<Counter>,
    traced: Arc<Counter>,
    slow_logged: Arc<Counter>,
    connections_accepted: Arc<Counter>,
    connections_closed: Arc<Counter>,
    latencies: Arc<Histogram>,
    interactive_latencies: Arc<Histogram>,
    batch_latencies: Arc<Histogram>,
    // Set-at-scrape gauges (sampled from live structures on STATS/METRICS).
    interactive_depth: Arc<Gauge>,
    batch_depth: Arc<Gauge>,
    interactive_capacity: Arc<Gauge>,
    batch_capacity: Arc<Gauge>,
    connections: Arc<Gauge>,
    workers_gauge: Arc<Gauge>,
    uptime: Arc<Gauge>,
    worker_column_hits: Arc<Gauge>,
    worker_column_misses: Arc<Gauge>,
    worker_y_hits: Arc<Gauge>,
    worker_y_misses: Arc<Gauge>,
    pub(crate) graphs: Vec<GraphGauges>,
    /// Per-worker `(column cache, (y hits, y misses))` snapshots, refreshed
    /// by each worker after every batch — so `STATS` can report cache hit
    /// rates without reaching into live sessions (meaningful for private
    /// caches too, where the engine has no global counters).
    worker_caches: Mutex<Vec<(CacheStats, (u64, u64))>>,
    /// When the server started, for the `uptime_ms=` field.
    started: Instant,
    /// Milliseconds-since-start of the last slow-query log line (the
    /// bounded-rate gate).
    last_slow_log_ms: AtomicU64,
}

impl Metrics {
    pub(crate) fn new(workers: usize, graph_names: &[&str]) -> Self {
        let registry = Registry::new();
        let interactive_served = registry.counter_with(
            "dht_requests_served_total",
            "Query requests answered (successfully or with an EXEC error).",
            &[("class", "interactive")],
        );
        let batch_served = registry.counter_with(
            "dht_requests_served_total",
            "Query requests answered (successfully or with an EXEC error).",
            &[("class", "batch")],
        );
        let reject_help = "Query requests refused before execution, by reason.";
        let rejected = registry.counter_with(
            "dht_requests_rejected_total",
            reject_help,
            &[("reason", "busy")],
        );
        let quota_rejected = registry.counter_with(
            "dht_requests_rejected_total",
            reject_help,
            &[("reason", "quota")],
        );
        let expired = registry.counter_with(
            "dht_requests_rejected_total",
            reject_help,
            &[("reason", "deadline")],
        );
        let dropped = registry.counter(
            "dht_responses_dropped_total",
            "Responses dropped (and queued requests skipped) for dead connections.",
        );
        let traced = registry.counter(
            "dht_traced_requests_total",
            "Requests answered with per-query trace spans enabled.",
        );
        let slow_logged = registry.counter(
            "dht_slow_queries_total",
            "Served requests over the --slow-ms budget (logged at bounded rate).",
        );
        let connections_accepted = registry.counter(
            "dht_connections_accepted_total",
            "Connections accepted by the event loop.",
        );
        let connections_closed = registry.counter(
            "dht_connections_closed_total",
            "Connections closed (gracefully or dropped as dead).",
        );
        let latency_help = "Per-request latency, receive to response ready.";
        let latencies = registry.histogram_with(
            "dht_request_latency_seconds",
            latency_help,
            &[("class", "all")],
        );
        let interactive_latencies = registry.histogram_with(
            "dht_request_latency_seconds",
            latency_help,
            &[("class", "interactive")],
        );
        let batch_latencies = registry.histogram_with(
            "dht_request_latency_seconds",
            latency_help,
            &[("class", "batch")],
        );
        let depth_help = "Requests queued at scrape time.";
        let interactive_depth =
            registry.gauge_with("dht_queue_depth", depth_help, &[("class", "interactive")]);
        let batch_depth = registry.gauge_with("dht_queue_depth", depth_help, &[("class", "batch")]);
        let cap_help = "Configured queue capacity.";
        let interactive_capacity =
            registry.gauge_with("dht_queue_capacity", cap_help, &[("class", "interactive")]);
        let batch_capacity =
            registry.gauge_with("dht_queue_capacity", cap_help, &[("class", "batch")]);
        let connections = registry.gauge(
            "dht_connections",
            "Connections currently registered with the event loop.",
        );
        let workers_gauge = registry.gauge("dht_workers", "Worker (session) threads.");
        workers_gauge.set(workers as f64);
        let uptime = registry.gauge("dht_uptime_seconds", "Seconds since the server started.");
        let cache_help = "Worker-session column cache counters (summed across workers).";
        let worker_column_hits =
            registry.gauge_with("dht_column_cache", cache_help, &[("event", "hit")]);
        let worker_column_misses =
            registry.gauge_with("dht_column_cache", cache_help, &[("event", "miss")]);
        let y_help = "Worker-session Y-bound-table counters (summed across workers).";
        let worker_y_hits = registry.gauge_with("dht_y_table", y_help, &[("event", "hit")]);
        let worker_y_misses = registry.gauge_with("dht_y_table", y_help, &[("event", "miss")]);
        let build_info = registry.gauge_with(
            "dht_build_info",
            "Constant 1; the version label carries the build id.",
            &[("version", BUILD_ID)],
        );
        build_info.set(1.0);
        let names: Vec<&str> = if graph_names.is_empty() {
            vec!["default"]
        } else {
            graph_names.to_vec()
        };
        let graphs = names
            .iter()
            .map(|name| GraphGauges {
                served: registry.counter_with(
                    "dht_graph_served_total",
                    "Served requests per registered graph.",
                    &[("graph", name)],
                ),
                cache_hits: registry.gauge_with(
                    "dht_shared_cache",
                    "Cross-session column-cache counters per graph.",
                    &[("graph", name), ("event", "hit")],
                ),
                cache_misses: registry.gauge_with(
                    "dht_shared_cache",
                    "Cross-session column-cache counters per graph.",
                    &[("graph", name), ("event", "miss")],
                ),
                cache_evictions: registry.gauge_with(
                    "dht_shared_cache",
                    "Cross-session column-cache counters per graph.",
                    &[("graph", name), ("event", "eviction")],
                ),
                y_hits: registry.gauge_with(
                    "dht_shared_y_table",
                    "Cross-session Y-bound-table counters per graph.",
                    &[("graph", name), ("event", "hit")],
                ),
                y_misses: registry.gauge_with(
                    "dht_shared_y_table",
                    "Cross-session Y-bound-table counters per graph.",
                    &[("graph", name), ("event", "miss")],
                ),
                cache_bytes: registry.gauge_with(
                    "dht_cache_budget_bytes",
                    "Configured column-cache byte budget per graph.",
                    &[("graph", name)],
                ),
                plan_chosen: dht_engine::PlanCounters::SLOTS
                    .iter()
                    .map(|slot| {
                        registry.gauge_with(
                            "dht_plan_chosen",
                            "Planner Auto decisions per algorithm (sampled at scrape).",
                            &[("graph", name), ("algorithm", slot)],
                        )
                    })
                    .collect(),
                plans: registry.gauge_with(
                    "dht_plans",
                    "Auto plans made per graph (sampled at scrape).",
                    &[("graph", name)],
                ),
                plan_candidates: registry.gauge_with(
                    "dht_plan_candidates",
                    "Candidate algorithms costed by Auto plans (sampled at scrape).",
                    &[("graph", name)],
                ),
            })
            .collect();
        Metrics {
            registry,
            interactive_served,
            batch_served,
            rejected,
            quota_rejected,
            expired,
            dropped,
            traced,
            slow_logged,
            connections_accepted,
            connections_closed,
            latencies,
            interactive_latencies,
            batch_latencies,
            interactive_depth,
            batch_depth,
            interactive_capacity,
            batch_capacity,
            connections,
            workers_gauge,
            uptime,
            worker_column_hits,
            worker_column_misses,
            worker_y_hits,
            worker_y_misses,
            graphs,
            worker_caches: Mutex::new(vec![Default::default(); workers]),
            started: Instant::now(),
            last_slow_log_ms: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_served(&self, latency: Duration, class: Priority, graph: usize) {
        if let Some(gauges) = self.graphs.get(graph) {
            gauges.served.inc();
        }
        self.latencies.observe(latency);
        let (counter, histogram) = match class {
            Priority::Interactive => (&self.interactive_served, &self.interactive_latencies),
            Priority::Batch => (&self.batch_served, &self.batch_latencies),
        };
        counter.inc();
        histogram.observe(latency);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.inc();
    }

    pub(crate) fn record_quota_rejected(&self) {
        self.quota_rejected.inc();
    }

    pub(crate) fn record_expired(&self) {
        self.expired.inc();
    }

    pub(crate) fn record_dropped(&self, count: u64) {
        self.dropped.add(count);
    }

    pub(crate) fn record_traced(&self) {
        self.traced.inc();
    }

    pub(crate) fn record_connection_opened(&self) {
        self.connections_accepted.inc();
    }

    pub(crate) fn record_connection_closed(&self) {
        self.connections_closed.inc();
    }

    /// Counts a served request that blew the `--slow-ms` budget; returns
    /// `true` when the caller should emit a log line (at most one per
    /// [`SLOW_LOG_INTERVAL`], so a storm of slow queries cannot turn
    /// stderr into the bottleneck).
    pub(crate) fn record_slow(&self) -> bool {
        self.slow_logged.inc();
        let now_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_slow_log_ms.load(Ordering::Relaxed);
        // now_ms == 0 (a slow query in the server's first millisecond)
        // loses the race against the initial value; accept one suppressed
        // line over an extra sentinel.
        if now_ms.saturating_sub(last) < SLOW_LOG_INTERVAL.as_millis() as u64 && last != 0 {
            return false;
        }
        self.last_slow_log_ms
            .compare_exchange(last, now_ms.max(1), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    pub(crate) fn store_worker_caches(
        &self,
        worker: usize,
        columns: CacheStats,
        y_tables: (u64, u64),
    ) {
        let mut caches = self.worker_caches.lock().expect("metrics lock poisoned");
        if let Some(slot) = caches.get_mut(worker) {
            *slot = (columns, y_tables);
        }
    }

    /// Sums the per-worker cache snapshots.
    fn worker_cache_totals(&self) -> (CacheStats, (u64, u64), usize) {
        let caches = self.worker_caches.lock().expect("metrics lock poisoned");
        let mut columns = CacheStats::default();
        let (mut y_hits, mut y_misses) = (0u64, 0u64);
        for (cache, (hits, misses)) in caches.iter() {
            columns = columns.merged(*cache);
            y_hits += hits;
            y_misses += misses;
        }
        (columns, (y_hits, y_misses), caches.len())
    }

    /// Refreshes every set-at-scrape gauge from the live queue/connection
    /// state, then renders the full text exposition (ending `# EOF`).
    /// Per-graph gauges are the caller's job (the server samples its
    /// engines before calling this).
    pub(crate) fn render_exposition(
        &self,
        interactive_depth: usize,
        batch_depth: usize,
        queue_capacity: usize,
        batch_queue_capacity: usize,
        connections: usize,
    ) -> String {
        self.interactive_depth.set(interactive_depth as f64);
        self.batch_depth.set(batch_depth as f64);
        self.interactive_capacity.set(queue_capacity as f64);
        self.batch_capacity.set(batch_queue_capacity as f64);
        self.connections.set(connections as f64);
        self.uptime.set(self.started.elapsed().as_secs_f64());
        let (columns, (y_hits, y_misses), workers) = self.worker_cache_totals();
        self.workers_gauge.set(workers as f64);
        self.worker_column_hits.set(columns.hits as f64);
        self.worker_column_misses.set(columns.misses as f64);
        self.worker_y_hits.set(y_hits as f64);
        self.worker_y_misses.set(y_misses as f64);
        self.registry.render()
    }

    pub(crate) fn snapshot(
        &self,
        interactive_depth: usize,
        batch_depth: usize,
        queue_capacity: usize,
        batch_queue_capacity: usize,
        connections: usize,
    ) -> StatsSnapshot {
        let (columns, (y_hits, y_misses), workers) = self.worker_cache_totals();
        let interactive_served = self.interactive_served.get();
        let batch_served = self.batch_served.get();
        StatsSnapshot {
            served: interactive_served + batch_served,
            rejected: self.rejected.get(),
            quota_rejected: self.quota_rejected.get(),
            expired: self.expired.get(),
            dropped: self.dropped.get(),
            interactive_served,
            batch_served,
            queue_depth: interactive_depth + batch_depth,
            interactive_depth,
            batch_depth,
            queue_capacity,
            batch_queue_capacity,
            workers,
            connections,
            p50_ms: self.latencies.quantile_ms(0.50),
            p90_ms: self.latencies.quantile_ms(0.90),
            p99_ms: self.latencies.quantile_ms(0.99),
            max_ms: self.latencies.quantile_ms(1.0),
            interactive_p99_ms: self.interactive_latencies.quantile_ms(0.99),
            batch_p99_ms: self.batch_latencies.quantile_ms(0.99),
            column_hits: columns.hits,
            column_misses: columns.misses,
            y_hits,
            y_misses,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            build: BUILD_ID.to_string(),
            graph_served: self
                .graphs
                .iter()
                .map(|gauges| gauges.served.get())
                .collect(),
        }
    }
}

/// A point-in-time view of the server's counters — what `STATS` serialises
/// and [`crate::Server::shutdown`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Query requests answered (successfully or with an `EXEC` error).
    pub served: u64,
    /// Query requests rejected with `BUSY` because their class was full.
    pub rejected: u64,
    /// Query requests refused with `ERR QUOTA` by per-connection rate
    /// limiting.
    pub quota_rejected: u64,
    /// Requests answered `ERR DEADLINE` because their budget ran out in
    /// the queue (never executed).
    pub expired: u64,
    /// Response lines dropped because the client had disconnected (plus
    /// queued requests skipped for dead connections).
    pub dropped: u64,
    /// Served requests in the interactive class.
    pub interactive_served: u64,
    /// Served requests in the batch class.
    pub batch_served: u64,
    /// Requests queued at snapshot time, both classes combined.
    pub queue_depth: usize,
    /// Requests queued in the interactive class at snapshot time.
    pub interactive_depth: usize,
    /// Requests queued in the batch class at snapshot time.
    pub batch_depth: usize,
    /// Configured interactive-class queue capacity.
    pub queue_capacity: usize,
    /// Configured batch-class queue capacity.
    pub batch_queue_capacity: usize,
    /// Worker (session) count.
    pub workers: usize,
    /// Connections currently registered with the event loop at snapshot
    /// time (accepted and not yet closed).
    pub connections: usize,
    /// Median per-request latency, receive → response ready, in ms
    /// (estimated from the exact log₂-bucket histogram).
    pub p50_ms: f64,
    /// 90th-percentile latency in ms.
    pub p90_ms: f64,
    /// 99th-percentile latency in ms.
    pub p99_ms: f64,
    /// Upper envelope of the slowest request's histogram bucket, in ms.
    pub max_ms: f64,
    /// 99th-percentile latency of interactive-class requests, in ms.
    pub interactive_p99_ms: f64,
    /// 99th-percentile latency of batch-class requests, in ms.
    pub batch_p99_ms: f64,
    /// Backward-column cache hits summed over the worker sessions.
    pub column_hits: u64,
    /// Backward-column cache misses summed over the worker sessions.
    pub column_misses: u64,
    /// Y-bound-table hits summed over the worker sessions.
    pub y_hits: u64,
    /// Y-bound-table misses summed over the worker sessions.
    pub y_misses: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Build identification ([`BUILD_ID`] — the `dht --version` version).
    pub build: String,
    /// Served requests per registered graph, in registration order (one
    /// entry, equal to `served`, on a single-graph server).
    pub graph_served: Vec<u64>,
}

impl StatsSnapshot {
    /// Fraction of column lookups served from cache (0 when none).
    pub fn column_hit_rate(&self) -> f64 {
        let total = self.column_hits + self.column_misses;
        if total == 0 {
            0.0
        } else {
            self.column_hits as f64 / total as f64
        }
    }

    /// The single-line `STATS` payload (without the leading `OK `).
    pub fn wire_line(&self) -> String {
        format!(
            "STATS served={} rejected={} queue_depth={} queue_capacity={} workers={} \
             p50_ms={:.4} p90_ms={:.4} p99_ms={:.4} max_ms={:.4} \
             column_hits={} column_misses={} column_hit_rate={:.4} y_hits={} y_misses={} \
             quota_rejected={} expired={} dropped={} \
             interactive_served={} batch_served={} \
             interactive_p99_ms={:.4} batch_p99_ms={:.4} batch_queue_capacity={} \
             interactive_depth={} batch_depth={} connections={} \
             uptime_ms={} build={}",
            self.served,
            self.rejected,
            self.queue_depth,
            self.queue_capacity,
            self.workers,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.column_hits,
            self.column_misses,
            self.column_hit_rate(),
            self.y_hits,
            self.y_misses,
            self.quota_rejected,
            self.expired,
            self.dropped,
            self.interactive_served,
            self.batch_served,
            self.interactive_p99_ms,
            self.batch_p99_ms,
            self.batch_queue_capacity,
            self.interactive_depth,
            self.batch_depth,
            self.connections,
            self.uptime_ms,
            self.build,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_percentiles_and_counters() {
        let metrics = Metrics::new(2, &["default"]);
        for ms in [1.0f64, 2.0, 3.0, 4.0] {
            metrics.record_served(Duration::from_secs_f64(ms / 1e3), Priority::Interactive, 0);
        }
        metrics.record_rejected();
        metrics.store_worker_caches(
            0,
            CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
            },
            (2, 1),
        );
        metrics.store_worker_caches(
            1,
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
            },
            (0, 1),
        );
        let snap = metrics.snapshot(3, 2, 16, 16, 7);
        assert_eq!(snap.served, 4);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 5, "combined depth is the class sum");
        assert_eq!(snap.interactive_depth, 3);
        assert_eq!(snap.batch_depth, 2);
        assert_eq!(snap.workers, 2);
        // Histogram percentiles land inside the log₂ bucket of the true
        // value — a factor-2 envelope, not an exact order statistic.
        assert!(snap.p50_ms >= 1.0 && snap.p50_ms <= 4.1, "{}", snap.p50_ms);
        assert!(snap.max_ms >= 4.0 && snap.max_ms <= 8.2, "{}", snap.max_ms);
        assert!(snap.p50_ms <= snap.p90_ms && snap.p90_ms <= snap.p99_ms);
        assert_eq!((snap.column_hits, snap.column_misses), (4, 2));
        assert_eq!((snap.y_hits, snap.y_misses), (2, 2));
        assert!((snap.column_hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(snap.connections, 7);
        assert_eq!(snap.graph_served, vec![4], "single-graph count = served");
        let line = snap.wire_line();
        assert!(line.starts_with("STATS served=4 rejected=1"), "{line}");
        assert!(line.contains("p99_ms="), "{line}");
        assert!(line.contains("column_hit_rate=0.6667"), "{line}");
        assert!(line.contains("connections=7"), "{line}");
        assert!(line.contains("uptime_ms="), "{line}");
        assert!(line.contains(&format!("build={BUILD_ID}")), "{line}");
    }

    #[test]
    fn per_graph_served_counters_split_by_registration_index() {
        let metrics = Metrics::new(1, &["a", "b", "c"]);
        let ms = Duration::from_millis(1);
        metrics.record_served(ms, Priority::Interactive, 0);
        metrics.record_served(ms, Priority::Interactive, 2);
        metrics.record_served(ms, Priority::Batch, 2);
        // An out-of-range graph index still counts globally.
        metrics.record_served(ms, Priority::Interactive, 9);
        let snap = metrics.snapshot(0, 0, 8, 8, 0);
        assert_eq!(snap.served, 4);
        assert_eq!(snap.graph_served, vec![1, 0, 2]);
        assert!(snap.uptime_ms < 60_000, "uptime is measured, not garbage");
    }

    #[test]
    fn per_class_counters_and_percentiles_are_split() {
        let metrics = Metrics::new(1, &["default"]);
        for ms in [1.0f64, 2.0] {
            metrics.record_served(Duration::from_secs_f64(ms / 1e3), Priority::Interactive, 0);
        }
        for ms in [50.0f64, 60.0, 70.0] {
            metrics.record_served(Duration::from_secs_f64(ms / 1e3), Priority::Batch, 0);
        }
        metrics.record_quota_rejected();
        metrics.record_quota_rejected();
        metrics.record_expired();
        metrics.record_dropped(3);
        let snap = metrics.snapshot(0, 0, 8, 4, 0);
        assert_eq!(snap.served, 5, "global count spans both classes");
        assert_eq!(snap.interactive_served, 2);
        assert_eq!(snap.batch_served, 3);
        assert_eq!(snap.quota_rejected, 2);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.batch_queue_capacity, 4);
        assert!(
            snap.interactive_p99_ms < 5.0 && snap.batch_p99_ms > 50.0,
            "class percentiles must not mix: interactive {} batch {}",
            snap.interactive_p99_ms,
            snap.batch_p99_ms
        );
        let line = snap.wire_line();
        assert!(line.contains("quota_rejected=2"), "{line}");
        assert!(line.contains("expired=1"), "{line}");
        assert!(line.contains("dropped=3"), "{line}");
        assert!(line.contains("interactive_served=2"), "{line}");
        assert!(line.contains("batch_served=3"), "{line}");
        assert!(line.contains("interactive_p99_ms="), "{line}");
        assert!(line.contains("batch_p99_ms="), "{line}");
        assert!(line.contains("interactive_depth=0"), "{line}");
        assert!(line.contains("batch_depth=0"), "{line}");
    }

    #[test]
    fn exposition_carries_every_required_family_and_eof() {
        let metrics = Metrics::new(2, &["default", "web"]);
        metrics.record_served(Duration::from_millis(2), Priority::Interactive, 0);
        metrics.record_connection_opened();
        metrics.record_traced();
        let text = metrics.render_exposition(1, 0, 16, 8, 3);
        for family in [
            "dht_requests_served_total",
            "dht_requests_rejected_total",
            "dht_responses_dropped_total",
            "dht_request_latency_seconds",
            "dht_queue_depth",
            "dht_queue_capacity",
            "dht_connections",
            "dht_connections_accepted_total",
            "dht_workers",
            "dht_uptime_seconds",
            "dht_graph_served_total",
            "dht_plan_chosen",
            "dht_build_info",
            "dht_traced_requests_total",
            "dht_slow_queries_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "{family} missing"
            );
        }
        assert!(
            text.contains("dht_requests_served_total{class=\"interactive\"} 1"),
            "{text}"
        );
        assert!(text.contains("dht_queue_depth{class=\"interactive\"} 1"));
        assert!(text.contains("dht_connections 3"));
        assert!(text.contains("dht_graph_served_total{graph=\"web\"} 0"));
        assert!(text.contains("dht_request_latency_seconds_count{class=\"all\"} 1"));
        assert!(text.contains("dht_traced_requests_total 1"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn slow_query_logging_is_bounded_rate() {
        let metrics = Metrics::new(1, &["default"]);
        assert!(metrics.record_slow(), "first slow query logs");
        // Immediately after, the gate is closed (interval not elapsed).
        assert!(!metrics.record_slow());
        assert!(!metrics.record_slow());
        // Counter still counts every slow query, logged or not.
        let text = metrics.render_exposition(0, 0, 1, 1, 0);
        assert!(text.contains("dht_slow_queries_total 3"), "{text}");
    }

    #[test]
    fn percentiles_match_the_querystream_convention() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sample, 0.0), 1.0);
        assert_eq!(percentile(&sample, 0.5), 3.0);
        assert_eq!(percentile(&sample, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}

//! Per-request latency tracking and serving counters, surfaced over the
//! wire by the `STATS` verb.
//!
//! Latencies are tracked in **three** reservoirs: one global (the
//! `p50/p90/p99/max` fields, unchanged from before the QoS layer) and one
//! per priority class — so `STATS` can show that interactive p99 stays
//! bounded while batch p99 balloons under a flood, which is the whole
//! point of the two-level queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dht_core::queryline::Priority;
use dht_walks::CacheStats;

/// Build identification reported by `STATS` (`build=`): the crate version,
/// which the workspace pins to the same value `dht --version` prints — so
/// fleet operators (and the router's backend health lines) can tell
/// mixed-version backends apart.
pub const BUILD_ID: &str = env!("CARGO_PKG_VERSION");

/// Ring capacity of the latency reservoir: enough to make p99 meaningful
/// under sustained load while bounding memory to ~512 KiB of samples.
const RESERVOIR_CAPACITY: usize = 1 << 16;

/// `p`-th percentile (0 ≤ p ≤ 1) of an ascending-sorted sample, `0.0` when
/// empty — the same convention `dht querystream` reports.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

/// Bounded latency reservoir: keeps the most recent
/// [`RESERVOIR_CAPACITY`] samples in a ring.
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<f64>,
    next: usize,
}

impl Reservoir {
    fn record(&mut self, latency_ms: f64) {
        if self.samples.len() < RESERVOIR_CAPACITY {
            self.samples.push(latency_ms);
        } else {
            self.samples[self.next] = latency_ms;
            self.next = (self.next + 1) % RESERVOIR_CAPACITY;
        }
    }

    fn sorted(&self) -> Vec<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted
    }
}

/// What the server measures while running; shared by every worker and
/// connection thread.
#[derive(Debug)]
pub(crate) struct Metrics {
    served: AtomicU64,
    rejected: AtomicU64,
    quota_rejected: AtomicU64,
    expired: AtomicU64,
    dropped: AtomicU64,
    interactive_served: AtomicU64,
    batch_served: AtomicU64,
    latencies: Mutex<Reservoir>,
    interactive_latencies: Mutex<Reservoir>,
    batch_latencies: Mutex<Reservoir>,
    /// Per-worker `(column cache, (y hits, y misses))` snapshots, refreshed
    /// by each worker after every batch — so `STATS` can report cache hit
    /// rates without reaching into live sessions (meaningful for private
    /// caches too, where the engine has no global counters).
    worker_caches: Mutex<Vec<(CacheStats, (u64, u64))>>,
    /// Served requests per registered graph (registration order) — the
    /// multi-graph server's `STATS` per-graph blocks read these.
    graph_served: Vec<AtomicU64>,
    /// When the server started, for the `uptime_ms=` field.
    started: Instant,
}

impl Metrics {
    pub(crate) fn new(workers: usize, graphs: usize) -> Self {
        Metrics {
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            interactive_served: AtomicU64::new(0),
            batch_served: AtomicU64::new(0),
            latencies: Mutex::new(Reservoir::default()),
            interactive_latencies: Mutex::new(Reservoir::default()),
            batch_latencies: Mutex::new(Reservoir::default()),
            worker_caches: Mutex::new(vec![Default::default(); workers]),
            graph_served: (0..graphs.max(1)).map(|_| AtomicU64::new(0)).collect(),
            started: Instant::now(),
        }
    }

    pub(crate) fn record_served(&self, latency: Duration, class: Priority, graph: usize) {
        self.served.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = self.graph_served.get(graph) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let latency_ms = latency.as_secs_f64() * 1e3;
        self.latencies
            .lock()
            .expect("metrics lock poisoned")
            .record(latency_ms);
        let (counter, reservoir) = match class {
            Priority::Interactive => (&self.interactive_served, &self.interactive_latencies),
            Priority::Batch => (&self.batch_served, &self.batch_latencies),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        reservoir
            .lock()
            .expect("metrics lock poisoned")
            .record(latency_ms);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_quota_rejected(&self) {
        self.quota_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped(&self, count: u64) {
        self.dropped.fetch_add(count, Ordering::Relaxed);
    }

    pub(crate) fn store_worker_caches(
        &self,
        worker: usize,
        columns: CacheStats,
        y_tables: (u64, u64),
    ) {
        let mut caches = self.worker_caches.lock().expect("metrics lock poisoned");
        if let Some(slot) = caches.get_mut(worker) {
            *slot = (columns, y_tables);
        }
    }

    pub(crate) fn snapshot(
        &self,
        interactive_depth: usize,
        batch_depth: usize,
        queue_capacity: usize,
        batch_queue_capacity: usize,
        connections: usize,
    ) -> StatsSnapshot {
        let sorted = self
            .latencies
            .lock()
            .expect("metrics lock poisoned")
            .sorted();
        let interactive = self
            .interactive_latencies
            .lock()
            .expect("metrics lock poisoned")
            .sorted();
        let batch = self
            .batch_latencies
            .lock()
            .expect("metrics lock poisoned")
            .sorted();
        let caches = self.worker_caches.lock().expect("metrics lock poisoned");
        let mut columns = CacheStats::default();
        let (mut y_hits, mut y_misses) = (0u64, 0u64);
        for (cache, (hits, misses)) in caches.iter() {
            columns = columns.merged(*cache);
            y_hits += hits;
            y_misses += misses;
        }
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            interactive_served: self.interactive_served.load(Ordering::Relaxed),
            batch_served: self.batch_served.load(Ordering::Relaxed),
            queue_depth: interactive_depth + batch_depth,
            interactive_depth,
            batch_depth,
            queue_capacity,
            batch_queue_capacity,
            workers: caches.len(),
            connections,
            p50_ms: percentile(&sorted, 0.50),
            p90_ms: percentile(&sorted, 0.90),
            p99_ms: percentile(&sorted, 0.99),
            max_ms: sorted.last().copied().unwrap_or(0.0),
            interactive_p99_ms: percentile(&interactive, 0.99),
            batch_p99_ms: percentile(&batch, 0.99),
            column_hits: columns.hits,
            column_misses: columns.misses,
            y_hits,
            y_misses,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            build: BUILD_ID.to_string(),
            graph_served: self
                .graph_served
                .iter()
                .map(|counter| counter.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time view of the server's counters — what `STATS` serialises
/// and [`crate::Server::shutdown`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Query requests answered (successfully or with an `EXEC` error).
    pub served: u64,
    /// Query requests rejected with `BUSY` because their class was full.
    pub rejected: u64,
    /// Query requests refused with `ERR QUOTA` by per-connection rate
    /// limiting.
    pub quota_rejected: u64,
    /// Requests answered `ERR DEADLINE` because their budget ran out in
    /// the queue (never executed).
    pub expired: u64,
    /// Response lines dropped because the client had disconnected (plus
    /// queued requests skipped for dead connections).
    pub dropped: u64,
    /// Served requests in the interactive class.
    pub interactive_served: u64,
    /// Served requests in the batch class.
    pub batch_served: u64,
    /// Requests queued at snapshot time, both classes combined.
    pub queue_depth: usize,
    /// Requests queued in the interactive class at snapshot time.
    pub interactive_depth: usize,
    /// Requests queued in the batch class at snapshot time.
    pub batch_depth: usize,
    /// Configured interactive-class queue capacity.
    pub queue_capacity: usize,
    /// Configured batch-class queue capacity.
    pub batch_queue_capacity: usize,
    /// Worker (session) count.
    pub workers: usize,
    /// Connections currently registered with the event loop at snapshot
    /// time (accepted and not yet closed).
    pub connections: usize,
    /// Median per-request latency, receive → response ready, in ms.
    pub p50_ms: f64,
    /// 90th-percentile latency in ms.
    pub p90_ms: f64,
    /// 99th-percentile latency in ms.
    pub p99_ms: f64,
    /// Worst latency in the reservoir, in ms.
    pub max_ms: f64,
    /// 99th-percentile latency of interactive-class requests, in ms.
    pub interactive_p99_ms: f64,
    /// 99th-percentile latency of batch-class requests, in ms.
    pub batch_p99_ms: f64,
    /// Backward-column cache hits summed over the worker sessions.
    pub column_hits: u64,
    /// Backward-column cache misses summed over the worker sessions.
    pub column_misses: u64,
    /// Y-bound-table hits summed over the worker sessions.
    pub y_hits: u64,
    /// Y-bound-table misses summed over the worker sessions.
    pub y_misses: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Build identification ([`BUILD_ID`] — the `dht --version` version).
    pub build: String,
    /// Served requests per registered graph, in registration order (one
    /// entry, equal to `served`, on a single-graph server).
    pub graph_served: Vec<u64>,
}

impl StatsSnapshot {
    /// Fraction of column lookups served from cache (0 when none).
    pub fn column_hit_rate(&self) -> f64 {
        let total = self.column_hits + self.column_misses;
        if total == 0 {
            0.0
        } else {
            self.column_hits as f64 / total as f64
        }
    }

    /// The single-line `STATS` payload (without the leading `OK `).
    pub fn wire_line(&self) -> String {
        format!(
            "STATS served={} rejected={} queue_depth={} queue_capacity={} workers={} \
             p50_ms={:.4} p90_ms={:.4} p99_ms={:.4} max_ms={:.4} \
             column_hits={} column_misses={} column_hit_rate={:.4} y_hits={} y_misses={} \
             quota_rejected={} expired={} dropped={} \
             interactive_served={} batch_served={} \
             interactive_p99_ms={:.4} batch_p99_ms={:.4} batch_queue_capacity={} \
             interactive_depth={} batch_depth={} connections={} \
             uptime_ms={} build={}",
            self.served,
            self.rejected,
            self.queue_depth,
            self.queue_capacity,
            self.workers,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.column_hits,
            self.column_misses,
            self.column_hit_rate(),
            self.y_hits,
            self.y_misses,
            self.quota_rejected,
            self.expired,
            self.dropped,
            self.interactive_served,
            self.batch_served,
            self.interactive_p99_ms,
            self.batch_p99_ms,
            self.batch_queue_capacity,
            self.interactive_depth,
            self.batch_depth,
            self.connections,
            self.uptime_ms,
            self.build,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_percentiles_and_counters() {
        let metrics = Metrics::new(2, 1);
        for ms in [1.0f64, 2.0, 3.0, 4.0] {
            metrics.record_served(Duration::from_secs_f64(ms / 1e3), Priority::Interactive, 0);
        }
        metrics.record_rejected();
        metrics.store_worker_caches(
            0,
            CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
            },
            (2, 1),
        );
        metrics.store_worker_caches(
            1,
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
            },
            (0, 1),
        );
        let snap = metrics.snapshot(3, 2, 16, 16, 7);
        assert_eq!(snap.served, 4);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 5, "combined depth is the class sum");
        assert_eq!(snap.interactive_depth, 3);
        assert_eq!(snap.batch_depth, 2);
        assert_eq!(snap.workers, 2);
        assert!((snap.p50_ms - 3.0).abs() < 0.5, "{}", snap.p50_ms);
        assert!((snap.max_ms - 4.0).abs() < 0.5, "{}", snap.max_ms);
        assert_eq!((snap.column_hits, snap.column_misses), (4, 2));
        assert_eq!((snap.y_hits, snap.y_misses), (2, 2));
        assert!((snap.column_hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(snap.connections, 7);
        assert_eq!(snap.graph_served, vec![4], "single-graph count = served");
        let line = snap.wire_line();
        assert!(line.starts_with("STATS served=4 rejected=1"), "{line}");
        assert!(line.contains("p99_ms="), "{line}");
        assert!(line.contains("column_hit_rate=0.6667"), "{line}");
        assert!(line.contains("connections=7"), "{line}");
        assert!(line.contains("uptime_ms="), "{line}");
        assert!(line.contains(&format!("build={BUILD_ID}")), "{line}");
    }

    #[test]
    fn per_graph_served_counters_split_by_registration_index() {
        let metrics = Metrics::new(1, 3);
        let ms = Duration::from_millis(1);
        metrics.record_served(ms, Priority::Interactive, 0);
        metrics.record_served(ms, Priority::Interactive, 2);
        metrics.record_served(ms, Priority::Batch, 2);
        // An out-of-range graph index still counts globally.
        metrics.record_served(ms, Priority::Interactive, 9);
        let snap = metrics.snapshot(0, 0, 8, 8, 0);
        assert_eq!(snap.served, 4);
        assert_eq!(snap.graph_served, vec![1, 0, 2]);
        assert!(snap.uptime_ms < 60_000, "uptime is measured, not garbage");
    }

    #[test]
    fn per_class_counters_and_percentiles_are_split() {
        let metrics = Metrics::new(1, 1);
        for ms in [1.0f64, 2.0] {
            metrics.record_served(Duration::from_secs_f64(ms / 1e3), Priority::Interactive, 0);
        }
        for ms in [50.0f64, 60.0, 70.0] {
            metrics.record_served(Duration::from_secs_f64(ms / 1e3), Priority::Batch, 0);
        }
        metrics.record_quota_rejected();
        metrics.record_quota_rejected();
        metrics.record_expired();
        metrics.record_dropped(3);
        let snap = metrics.snapshot(0, 0, 8, 4, 0);
        assert_eq!(snap.served, 5, "global count spans both classes");
        assert_eq!(snap.interactive_served, 2);
        assert_eq!(snap.batch_served, 3);
        assert_eq!(snap.quota_rejected, 2);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.batch_queue_capacity, 4);
        assert!(
            snap.interactive_p99_ms < 3.0 && snap.batch_p99_ms > 60.0,
            "class percentiles must not mix: interactive {} batch {}",
            snap.interactive_p99_ms,
            snap.batch_p99_ms
        );
        let line = snap.wire_line();
        assert!(line.contains("quota_rejected=2"), "{line}");
        assert!(line.contains("expired=1"), "{line}");
        assert!(line.contains("dropped=3"), "{line}");
        assert!(line.contains("interactive_served=2"), "{line}");
        assert!(line.contains("batch_served=3"), "{line}");
        assert!(line.contains("interactive_p99_ms="), "{line}");
        assert!(line.contains("batch_p99_ms="), "{line}");
        assert!(line.contains("interactive_depth=0"), "{line}");
        assert!(line.contains("batch_depth=0"), "{line}");
    }

    #[test]
    fn reservoir_overwrites_oldest_beyond_capacity() {
        let mut reservoir = Reservoir::default();
        for i in 0..(RESERVOIR_CAPACITY + 10) {
            reservoir.record(i as f64);
        }
        assert_eq!(reservoir.samples.len(), RESERVOIR_CAPACITY);
        assert_eq!(reservoir.samples[0], RESERVOIR_CAPACITY as f64);
        assert_eq!(reservoir.samples[10], 10.0, "later slots untouched");
    }

    #[test]
    fn percentiles_match_the_querystream_convention() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sample, 0.0), 1.0);
        assert_eq!(percentile(&sample, 0.5), 3.0);
        assert_eq!(percentile(&sample, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}

//! The event-driven connection front end: one poll thread multiplexing
//! every client socket, so an idle connection costs a buffer rather than
//! two OS threads.
//!
//! ## Shape
//!
//! A single **event thread** owns the listener, a self-wake token and a
//! [`Conn`] state machine per registered connection, and drives them all
//! with level-triggered [`dht_poll::poll`]:
//!
//! * **readable** — nonblocking reads append to the connection's raw line
//!   buffer; complete lines run the same pipeline the thread-per-connection
//!   reader did (64 KiB content cap, UTF-8 check, comment stripping,
//!   token-bucket quota before parse, control verbs inline, queries into
//!   the bounded queue);
//! * **writable** — responses park in a per-connection reorder buffer
//!   keyed by request sequence number; in-order lines append to an output
//!   buffer that is flushed as far as the socket accepts, with the partial
//!   remainder retried on the next writable event.  A *continuous* stall
//!   past [`WRITE_STALL_LIMIT`] marks the connection dead, exactly like
//!   the old dedicated writer did;
//! * **wake token** — workers finish requests on their own threads and
//!   hand `(connection, seq, line)` completions over a channel; a write to
//!   the wake token's socket pair interrupts the poll so responses flush
//!   immediately instead of at the next 20 ms tick.
//!
//! The worker pool, queue, QoS and wire grammar are untouched: this module
//! replaces only who *transports* bytes, never what they say.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use dht_poll::{poll, PollFd, POLLIN, POLLOUT};

use crate::qos::TokenBucket;
use crate::{
    dispatch_line, oversized_line_error, wire, ConnectionState, ServerShared, MAX_LINE_BYTES,
    POLL_INTERVAL, WRITE_STALL_LIMIT,
};

/// After shutdown is observed, how long a connection's read side stays
/// open with no new bytes before it is considered drained.  This is the
/// event-loop analogue of the old blocking reader's read-timeout-then-exit
/// behaviour: lines already in flight behind a `SHUTDOWN` verb still get
/// their typed responses, idle connections close promptly.
const SHUTDOWN_READ_GRACE: Duration = Duration::from_millis(40);

/// Connections accepted per readable-listener event before yielding back
/// to the loop (level-triggered poll re-reports a non-empty backlog, so
/// this bounds latency under an accept storm without losing anyone).
const ACCEPT_BURST: usize = 256;

/// Scratch read size, and how many reads one readable event may issue
/// before yielding — fairness against a connection that floods faster
/// than the loop can drain.
const READ_CHUNK: usize = 16 * 1024;
const READS_PER_EVENT: usize = 4;

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(unix)]
fn raw_listener_fd(listener: &TcpListener) -> i32 {
    use std::os::fd::AsRawFd;
    listener.as_raw_fd()
}

// On non-Unix targets `poll` reports `Unsupported` and the loop degrades
// to timed ticks that optimistically try every socket (nonblocking I/O
// makes the spurious attempts harmless), so descriptors are never used.
#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    -1
}

#[cfg(not(unix))]
fn raw_listener_fd(_listener: &TcpListener) -> i32 {
    -1
}

/// Self-wake token: a connected loopback socket pair whose read end sits
/// in the poll set.  Workers (and [`ServerShared::begin_shutdown`]) call
/// [`Waker::wake`] to interrupt a sleeping poll; the flag collapses wake
/// storms into one pending byte.
pub(crate) struct Waker {
    pending: AtomicBool,
    tx: TcpStream,
}

impl Waker {
    /// Builds the pair, returning the waker and the read end to poll.
    pub(crate) fn new() -> std::io::Result<(Arc<Waker>, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let ours = tx.local_addr()?;
        // Accept until our own connect arrives: a foreign connect racing
        // for the ephemeral port must not become the wake channel.
        let rx = loop {
            let (stream, peer) = listener.accept()?;
            if peer == ours {
                break stream;
            }
        };
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true).ok();
        Ok((
            Arc::new(Waker {
                pending: AtomicBool::new(false),
                tx,
            }),
            rx,
        ))
    }

    /// Interrupts the poll (idempotent until the loop clears the flag).
    pub(crate) fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            let _ = (&self.tx).write(&[1u8]);
        }
    }

    fn clear(&self) {
        self.pending.store(false, Ordering::Release);
    }
}

/// One finished request: which connection, which sequence slot, what line.
pub(crate) struct Completion {
    conn: u64,
    seq: u64,
    line: String,
}

/// What a queued [`crate::Request`] holds to deliver its answer: workers
/// call [`ReplyHandle::send`] and the event thread routes the completion
/// into the connection's reorder buffer.
#[derive(Clone)]
pub(crate) struct ReplyHandle {
    conn: u64,
    completions: mpsc::Sender<Completion>,
    waker: Arc<Waker>,
}

impl ReplyHandle {
    /// Hands a finished response line to the event thread (best-effort:
    /// after the loop exits, completions for dead connections vanish).
    pub(crate) fn send(&self, seq: u64, line: String) {
        if self
            .completions
            .send(Completion {
                conn: self.conn,
                seq,
                line,
            })
            .is_ok()
        {
            self.waker.wake();
        }
    }
}

/// Per-connection state machine — the entire per-client cost of an idle
/// connection (the two dedicated stacks of the old design are gone).
struct Conn {
    stream: TcpStream,
    /// Liveness flag shared with queued requests (workers skip dead ones).
    state: Arc<ConnectionState>,
    /// Prototype reply handle, cloned into each queued request.
    reply: ReplyHandle,
    bucket: Option<TokenBucket>,
    /// This connection's current graph index (`USE` reassigns it; every
    /// connection starts on graph 0, the first registered).
    graph: usize,
    /// Bytes of the current (incomplete) request line.
    raw: Vec<u8>,
    /// Next request ordinal (sequence numbers key response reordering).
    seq: u64,
    /// Requests handed to workers whose completions are still pending.
    inflight: usize,
    /// Out-of-order responses waiting for their turn.
    parked: BTreeMap<u64, String>,
    /// The sequence number the next written response must carry.
    next_write_seq: u64,
    /// In-order response bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// How far into `outbuf` the socket has accepted.
    out_pos: usize,
    /// Complete lines in `outbuf` (drop accounting when the peer dies).
    outbuf_lines: u64,
    /// Start of the current *continuous* write stall, if any.
    stall_since: Option<Instant>,
    /// No more request bytes will be read (EOF, read error, oversize
    /// discard finished, or post-shutdown grace expired).
    read_done: bool,
    /// An oversized line was answered: remaining input is drained and
    /// discarded so the close does not RST the error line away.
    discard_input: bool,
    /// Hard deadline for the discard drain.
    discard_deadline: Instant,
    /// The last read attempt hit `WouldBlock` (receive buffer empty).
    drained: bool,
    /// When bytes last arrived (drives the post-shutdown read grace).
    last_read: Instant,
}

impl Conn {
    fn out_pending(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }

    /// Parks a response and moves every now-in-order line to the output
    /// buffer.
    fn deliver(&mut self, seq: u64, line: String) {
        self.parked.insert(seq, line);
        while let Some(line) = self.parked.remove(&self.next_write_seq) {
            self.outbuf.extend_from_slice(line.as_bytes());
            self.outbuf.push(b'\n');
            self.outbuf_lines += 1;
            self.next_write_seq += 1;
        }
    }

    /// Writes as much buffered output as the socket accepts.  Returns
    /// `false` when the peer is gone (write error / zero-length write).
    fn try_flush(&mut self) -> bool {
        while self.out_pending() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => return false,
                Ok(written) => {
                    self.out_pos += written;
                    self.stall_since = None;
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    self.stall_since.get_or_insert_with(Instant::now);
                    return true;
                }
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.outbuf.clear();
        self.out_pos = 0;
        self.outbuf_lines = 0;
        self.stall_since = None;
        true
    }

    /// Undelivered response lines at death, for `STATS dropped=`.
    fn undelivered(&self) -> u64 {
        self.outbuf_lines + self.parked.len() as u64
    }

    /// Whether every admitted request has been answered and flushed, so
    /// the connection can close once reading is over.
    fn settled(&self) -> bool {
        self.inflight == 0 && self.parked.is_empty() && !self.out_pending()
    }
}

/// Runs the front end until shutdown completes: accept, read, dispatch,
/// reorder, flush — all on this thread; only query execution happens
/// elsewhere (the worker pool).
pub(crate) fn event_loop(
    shared: Arc<ServerShared>,
    listener: TcpListener,
    wake_rx: TcpStream,
    completions_tx: mpsc::Sender<Completion>,
    completions: mpsc::Receiver<Completion>,
) {
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut ids: Vec<u64> = Vec::new();
    let mut to_close: Vec<(u64, bool)> = Vec::new();
    let wake_fd = raw_fd(&wake_rx);
    let mut wake_rx = wake_rx;
    loop {
        let shutting_down = shared.shutting_down();
        if shutting_down {
            // Dropping the listener refuses new connections immediately.
            listener = None;
        }
        // Assemble the level-triggered interest set.
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(wake_fd, POLLIN));
        let listener_slot = listener.as_ref().map(|l| {
            fds.push(PollFd::new(raw_listener_fd(l), POLLIN));
            fds.len() - 1
        });
        let base = fds.len();
        ids.clear();
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if !conn.read_done {
                events |= POLLIN;
            }
            if conn.out_pending() {
                events |= POLLOUT;
            }
            if events != 0 {
                ids.push(id);
                fds.push(PollFd::new(raw_fd(&conn.stream), events));
            }
        }
        match poll(&mut fds, POLL_INTERVAL.as_millis() as i32) {
            Ok(_) => {}
            Err(_) => {
                // No working poll (non-Unix, or a transient failure):
                // degrade to timed ticks that optimistically try every
                // socket — nonblocking I/O makes spurious tries harmless.
                std::thread::sleep(POLL_INTERVAL / 4);
                for fd in fds.iter_mut() {
                    fd.revents = fd.events;
                }
            }
        }
        let now = Instant::now();
        to_close.clear();
        // 1. Wake token: clear the flag *before* draining, so a wake
        //    racing this tick writes a fresh byte for the next poll.
        if fds[0].ready(POLLIN) {
            shared.waker.clear();
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        // 2. Worker completions (drained every tick; try_iter is cheap).
        for completion in completions.try_iter() {
            match conns.get_mut(&completion.conn) {
                Some(conn) => {
                    conn.inflight = conn.inflight.saturating_sub(1);
                    conn.deliver(completion.seq, completion.line);
                    if !conn.try_flush() {
                        to_close.push((completion.conn, true));
                    }
                }
                // The connection died before its answer was ready.
                None => shared.metrics.record_dropped(1),
            }
        }
        // 3. New connections.
        if let (Some(slot), Some(l)) = (listener_slot, listener.as_ref()) {
            if fds[slot].ready(POLLIN) {
                for _ in 0..ACCEPT_BURST {
                    match l.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            stream.set_nodelay(true).ok();
                            let id = next_id;
                            next_id += 1;
                            conns.insert(
                                id,
                                Conn {
                                    stream,
                                    state: ConnectionState::new(),
                                    reply: ReplyHandle {
                                        conn: id,
                                        completions: completions_tx.clone(),
                                        waker: shared.waker.clone(),
                                    },
                                    bucket: TokenBucket::new(
                                        shared.config.rate,
                                        shared.config.burst,
                                        now,
                                    ),
                                    graph: 0,
                                    raw: Vec::new(),
                                    seq: 0,
                                    inflight: 0,
                                    parked: BTreeMap::new(),
                                    next_write_seq: 0,
                                    outbuf: Vec::new(),
                                    out_pos: 0,
                                    outbuf_lines: 0,
                                    stall_since: None,
                                    read_done: false,
                                    discard_input: false,
                                    discard_deadline: now,
                                    drained: false,
                                    last_read: now,
                                },
                            );
                            shared
                                .live_connections
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            shared.metrics.record_connection_opened();
                        }
                        Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }
        // 4. Per-connection readiness.
        for (slot, &id) in fds[base..].iter().zip(&ids) {
            if slot.revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            let mut ok = true;
            if slot.ready(POLLOUT) && conn.out_pending() {
                ok = conn.try_flush();
            }
            if ok && slot.ready(POLLIN) && !conn.read_done {
                handle_readable(&shared, conn, &mut scratch);
                // Responses produced inline (control verbs, typed
                // refusals) should not wait for the next writable event.
                ok = conn.try_flush();
            }
            if !ok {
                to_close.push((id, true));
            }
        }
        // 5. Sweep: write stalls, shutdown read grace, close eligibility.
        for (&id, conn) in conns.iter_mut() {
            if conn.out_pending() {
                if let Some(since) = conn.stall_since {
                    if now.duration_since(since) >= WRITE_STALL_LIMIT {
                        to_close.push((id, true));
                        continue;
                    }
                }
            }
            if shutting_down && !conn.read_done && !conn.discard_input {
                // The grace mirrors the old reader's timeout-then-exit:
                // bytes already in flight are still served, after which
                // the read side is considered closed (a partial line at
                // the cut is discarded, as before).
                if now.duration_since(conn.last_read) >= SHUTDOWN_READ_GRACE {
                    conn.read_done = true;
                    conn.raw.clear();
                }
            }
            if conn.discard_input {
                if conn.settled() && (conn.drained || now >= conn.discard_deadline) {
                    to_close.push((id, false));
                }
            } else if conn.read_done && conn.settled() {
                to_close.push((id, false));
            }
        }
        // 6. Closures (deduplicated: a connection may be flagged twice).
        to_close.sort_unstable();
        to_close.dedup();
        for &(id, dead) in &to_close {
            let Some(conn) = conns.remove(&id) else {
                continue;
            };
            if dead {
                // Workers skip requests of dead connections (counting
                // each), and completions already in flight fall into the
                // unknown-connection arm above — so only the responses
                // this loop was still holding are counted here.
                conn.state.mark_dead();
                let undelivered = conn.undelivered();
                if undelivered > 0 {
                    shared.metrics.record_dropped(undelivered);
                }
            }
            shared
                .live_connections
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            shared.metrics.record_connection_closed();
        }
        if shutting_down && conns.is_empty() {
            // Workers may still be draining dead connections' requests;
            // their completions find no connection and are counted by the
            // worker-side skip path.  Nothing left to transport.
            return;
        }
    }
}

/// Consumes whatever the socket has: appends to the raw line buffer,
/// completes lines through the dispatch pipeline, and handles EOF, the
/// 64 KiB content cap and the oversize discard mode.
fn handle_readable(shared: &Arc<ServerShared>, conn: &mut Conn, scratch: &mut [u8]) {
    for _ in 0..READS_PER_EVENT {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // EOF: a final unterminated line is still served, exactly
                // like the blocking reader's `Ok(0)` path did.
                if !conn.discard_input && !conn.raw.is_empty() {
                    let line = std::mem::take(&mut conn.raw);
                    process_line(shared, conn, &line);
                }
                conn.raw.clear();
                conn.read_done = true;
                return;
            }
            Ok(count) => {
                conn.last_read = Instant::now();
                conn.drained = false;
                if !conn.discard_input {
                    ingest(shared, conn, &scratch[..count]);
                }
                // In discard mode the bytes are dropped on the floor; the
                // loop keeps reading so the close below does not RST the
                // already-buffered error line away.
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                conn.drained = true;
                return;
            }
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // A read error ends the request stream; responses already
                // in flight still deliver (the write path decides death).
                conn.raw.clear();
                conn.read_done = true;
                return;
            }
        }
    }
}

/// Splits an arriving chunk into lines against the connection's partial
/// buffer, enforcing the content cap ([`MAX_LINE_BYTES`], terminator
/// excluded — a terminated line of exactly the cap is served).
fn ingest(shared: &Arc<ServerShared>, conn: &mut Conn, mut chunk: &[u8]) {
    while !chunk.is_empty() {
        match chunk.iter().position(|&byte| byte == b'\n') {
            Some(newline) => {
                if conn.raw.len() + newline > MAX_LINE_BYTES {
                    oversize(conn);
                    return;
                }
                conn.raw.extend_from_slice(&chunk[..newline]);
                let line = std::mem::take(&mut conn.raw);
                process_line(shared, conn, &line);
                // Reuse the allocation for the next partial line.
                conn.raw = line;
                conn.raw.clear();
                chunk = &chunk[newline + 1..];
            }
            None => {
                if conn.raw.len() + chunk.len() > MAX_LINE_BYTES {
                    oversize(conn);
                    return;
                }
                conn.raw.extend_from_slice(chunk);
                return;
            }
        }
    }
}

/// Answers the one oversized-line error and switches the connection to
/// drain-and-discard: input is swallowed (briefly, bounded by a deadline)
/// so closing does not RST the error line out of the peer's hands.
fn oversize(conn: &mut Conn) {
    // The error takes the next sequence slot, so it is written after
    // every already-admitted response — and nothing follows it.
    conn.deliver(conn.seq, oversized_line_error());
    conn.discard_input = true;
    conn.discard_deadline = Instant::now() + 8 * POLL_INTERVAL;
    conn.drained = false;
    conn.raw = Vec::new();
}

/// Runs one complete request line through the protocol pipeline.
fn process_line(shared: &Arc<ServerShared>, conn: &mut Conn, bytes: &[u8]) {
    match std::str::from_utf8(bytes) {
        Ok(text) => {
            // Comments and blank lines get no response and no sequence
            // number; every other line consumes one.
            if let Some(line) = wire::strip_line(text) {
                let this_seq = conn.seq;
                conn.seq += 1;
                let response = dispatch_line(
                    shared,
                    line,
                    this_seq,
                    &conn.reply,
                    &conn.state,
                    &mut conn.bucket,
                    &mut conn.graph,
                );
                match response {
                    Some(line) => conn.deliver(this_seq, line),
                    None => conn.inflight += 1, // a worker will reply
                }
            }
        }
        Err(_) => {
            let this_seq = conn.seq;
            conn.seq += 1;
            conn.deliver(
                this_seq,
                "ERR PARSE request line is not valid UTF-8".to_string(),
            );
        }
    }
}

//! # dht-server
//!
//! A hermetic TCP front end for the query engine: one long-lived
//! [`dht_engine::Engine`] per served graph, a pool of warm
//! [`dht_engine::Session`]s answering for any number of concurrent
//! clients, and a line protocol that is exactly the `dht querystream`
//! query language plus three control verbs.  Everything is `std::net` +
//! `std::thread` — no async runtime, no registry dependencies — matching
//! the workspace's hermetic-build rule.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──TCP──▶ event thread ──────────────▶ bounded queue
//!                   (poll(2) readiness loop:         │ try_push
//!                    accept, per-connection          ▼ pop_batch
//!                    line reader + reorder       worker pool
//!                    buffer + partial-write      (one Session each,
//!                    flush)  ◀── wake token ◀──  shared engine cache)
//! ```
//!
//! * **Event thread** — one thread multiplexes the listener and *every*
//!   connection with level-triggered `poll(2)` (via the hermetic
//!   [`dht_poll`] shim): nonblocking sockets, a per-connection state
//!   machine for line assembly and response reordering, and a self-wake
//!   socket pair that lets workers interrupt the poll the moment an
//!   answer is ready.  An idle connection costs one buffer, not two OS
//!   thread stacks, so thousands of concurrent clients are practical
//!   (`event.rs` holds the loop; live fan-in shows as `STATS
//!   connections=`).
//! * **Bounded two-level request queue** — the backpressure and
//!   scheduling point: readers never block; when the request's priority
//!   class (*interactive* by default, *batch* via the `PRIO batch` line
//!   prefix) is at capacity the request is rejected *immediately* with a
//!   typed `ERR BUSY` line, so overload degrades into fast rejections
//!   instead of unbounded memory growth.  Each class has its own
//!   capacity and workers drain in strict priority order, so a batch
//!   flood can never exhaust interactive admission nor delay interactive
//!   requests behind queued batch work.  Clients re-send rejected queries
//!   (the load generator does this automatically), and answers are
//!   unaffected — re-running a query is always bit-identical.
//! * **Per-connection rate limiting** — with `--rate` on, each connection
//!   owns a token bucket ([`ServerConfig::rate`] tokens/s, burst
//!   [`ServerConfig::burst`]); a query line arriving to an empty bucket
//!   is refused `ERR QUOTA` with a deterministic retry-after hint, before
//!   it is even parsed.  Control verbs are exempt, so throttled clients
//!   can still probe the server.
//! * **Request deadlines** — a `DEADLINE <ms>` line prefix bounds how
//!   long the request may wait; the deadline is enforced **at dequeue
//!   time**, so an expired request answers `ERR DEADLINE` without ever
//!   burning a worker session on an answer the client stopped waiting
//!   for.
//! * **Worker pool** — `workers` threads, each owning one warm `Session`
//!   over the shared engine, so concurrent clients warm each other's
//!   backward columns and Y-bound tables exactly as in-process sessions
//!   do.  Workers pop **micro-batches** (up to `batch` requests per
//!   dequeue), amortising queue synchronisation across several answers
//!   from one warm session.
//! * **Ordered, readiness-driven writes** — responses arrive from
//!   whichever worker answered, tagged with the request's per-connection
//!   sequence number, and park in a reorder buffer until their turn; in-
//!   order lines move to a per-connection output buffer that is flushed
//!   as far as the socket accepts, with the partial remainder retried on
//!   the next writable event.  A client that disconnects (or stops
//!   reading for longer than the write-stall limit) has its connection
//!   marked dead: pending responses are dropped (counted in
//!   `STATS dropped=`) and workers skip its still-queued requests instead
//!   of executing answers nobody reads.
//! * **Graceful shutdown** — a shutdown flag (raised by the `SHUTDOWN`
//!   verb or [`Server::shutdown`]) closes the listener, lets workers
//!   drain the queue, flushes and closes every connection (idle ones
//!   after a short read grace) and joins all threads.
//!
//! ## Protocol
//!
//! One request per line; every request gets exactly one response line
//! (blank lines and `#` comments are ignored).  Requests:
//!
//! ```text
//! PING                     → OK PONG
//! STATS                    → OK STATS served=… p50_ms=… (see StatsSnapshot::wire_line)
//! METRICS                  → OK METRICS + the full metrics exposition, ending `# EOF`
//! USE <graph>              → OK USE <graph>  (select this connection's graph)
//! SETS                     → OK SETS <name…> (the current graph's set names)
//! SHUTDOWN                 → OK BYE (then graceful drain)
//! EXPLAIN <query line>     → OK PLAN <plan>     (planned, not executed)
//! <query line>             → OK TWOWAY …  |  OK NWAY …   (see wire)
//! ```
//!
//! where `<query line>` is the shared `dht_core::queryline` language
//! (`LEFT RIGHT [k] [ALGORITHM]` / `nway SHAPE S1 … [k] [ALGO] [AGG]`),
//! optionally prefixed with QoS / namespace directives in any order:
//!
//! ```text
//! DEADLINE 250 P Q 3           — answer within 250 ms or ERR DEADLINE
//! PRIO batch P Q 3             — schedule in the batch (low) class
//! DEADLINE 40 PRIO batch P Q   — both
//! @yeast P Q 3                 — answer against graph `yeast` (this line only)
//! TRACE P Q 3                  — prepend a `# trace:` phase-timing comment
//! ```
//!
//! A `TRACE`d answer arrives as **two lines in one response unit**: a
//! `# trace: total_ms=… parse_ms=… join_ms=…` comment followed by the
//! ordinary answer line.  The comment carries scheduling metadata only —
//! the answer line is bit-identical with and without the prefix.
//!
//! ## Multi-graph serving
//!
//! A server started with [`Server::start_registry`] hosts **N named
//! graphs behind one port**: a [`dht_engine::GraphRegistry`] arbitrates
//! one global cache budget across per-graph engines, each worker holds
//! one warm session *per graph*, and connections pick their graph with
//! the `USE <graph>` verb (sticky) or the `@<graph>` line prefix (that
//! line only).  Graph selection is pure routing: the same query line
//! answers bit-identically whether the graph was reached by `USE`, by
//! `@<graph>`, or by being the only graph of a single-graph server.
//! `STATS` reports per-graph blocks (`graph.<name>.served=` …) next to
//! the global counters.
//!
//! Error responses are typed: `ERR BUSY …` (the request's class is full),
//! `ERR QUOTA …` (rate limit, with a `retry after <ms> ms` hint),
//! `ERR DEADLINE …` (budget exhausted while queued; never executed),
//! `ERR PARSE …` (malformed line, with the offending token), `ERR EXEC …`
//! (execution failure).  A request line that is not valid UTF-8 answers `ERR PARSE`;
//! one still unterminated past 64 KiB gets one `ERR PARSE` and the
//! connection is dropped.  Scores travel as exact `f64` bit patterns ([`wire`]), so
//! responses are **bit-identical** to in-process [`dht_engine::Session`]
//! answers at any worker count, cache mode and rejection schedule — the
//! repository's loopback parity proptest pins this.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod loadgen;
pub mod metrics;
pub mod wire;

mod event;
mod qos;
mod queue;

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dht_core::queryline::{self, ParseOptions, Priority};
use dht_core::QuerySpec;
use dht_engine::{Engine, GraphRegistry};
use dht_graph::NodeSet;

pub use metrics::StatsSnapshot;

use metrics::Metrics;
use qos::TokenBucket;
use queue::RequestQueue;

/// Default weighted-dequeue ratio: interactive pops served per waiting
/// batch pop (see [`ServerConfig::batch_weight`]).
pub const DEFAULT_BATCH_WEIGHT: u32 = queue::DEFAULT_BATCH_WEIGHT;

/// Construction-time knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// TCP port to bind on `127.0.0.1` (`0` picks an ephemeral port; read
    /// it back with [`Server::local_addr`]).
    pub port: u16,
    /// Worker sessions answering queries (≥ 1).
    pub workers: usize,
    /// Bounded **interactive-class** queue capacity; interactive pushes
    /// beyond it are rejected with `ERR BUSY` (≥ 1).
    pub queue_capacity: usize,
    /// Bounded **batch-class** queue capacity (`PRIO batch` requests);
    /// independent of the interactive capacity, so batch floods cannot
    /// exhaust interactive admission (≥ 1).
    pub batch_queue_capacity: usize,
    /// Maximum requests a worker dequeues per batch (≥ 1).
    pub batch: usize,
    /// Per-connection rate limit in query lines per second; `0` disables
    /// rate limiting (the default).
    pub rate: u32,
    /// Token-bucket burst capacity per connection (clamped to ≥ 1 when
    /// `rate` is on): a connection may send this many lines back-to-back
    /// before the rate applies.
    pub burst: u32,
    /// Weighted-dequeue ratio: interactive requests popped per waiting
    /// batch request (clamped to ≥ 1).  `7` means sustained interactive
    /// load still lets one batch request through every 7 pops instead of
    /// starving the class forever.
    pub batch_weight: u32,
    /// Server-side default deadline (ms) applied to **interactive** lines
    /// that carry no `DEADLINE` prefix; `0` (the default) applies none.
    pub default_deadline_interactive_ms: u64,
    /// Server-side default deadline (ms) applied to **batch** lines that
    /// carry no `DEADLINE` prefix; `0` (the default) applies none.
    pub default_deadline_batch_ms: u64,
    /// Slow-query budget in milliseconds: a served request slower than
    /// this (receive → response ready) is counted in
    /// `dht_slow_queries_total` and logged to stderr with its full span
    /// breakdown, plan and cache residency — at a bounded rate, so a
    /// storm of slow queries cannot make logging the bottleneck.  `0`
    /// (the default) disables the log.  A non-zero budget enables trace
    /// spans on every request (two clock reads per phase; answers are
    /// bit-identical either way).
    pub slow_ms: u64,
}

impl Default for ServerConfig {
    /// Ephemeral port, 2 workers, 128-deep queues per class, micro-batches
    /// of 8, no rate limit, 7:1 interactive:batch dequeue, no default
    /// deadlines.
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 2,
            queue_capacity: 128,
            batch_queue_capacity: 128,
            batch: 8,
            rate: 0,
            burst: 32,
            batch_weight: DEFAULT_BATCH_WEIGHT,
            default_deadline_interactive_ms: 0,
            default_deadline_batch_ms: 0,
            slow_ms: 0,
        }
    }
}

impl ServerConfig {
    /// Returns a copy with a different port.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Returns a copy with a different worker count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns a copy with a different queue capacity (minimum 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Returns a copy with a different batch-class queue capacity
    /// (minimum 1).
    pub fn with_batch_queue_capacity(mut self, capacity: usize) -> Self {
        self.batch_queue_capacity = capacity.max(1);
        self
    }

    /// Returns a copy with a different micro-batch bound (minimum 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Returns a copy with a per-connection rate limit (`0` disables).
    pub fn with_rate(mut self, rate: u32) -> Self {
        self.rate = rate;
        self
    }

    /// Returns a copy with a different token-bucket burst capacity.
    pub fn with_burst(mut self, burst: u32) -> Self {
        self.burst = burst;
        self
    }

    /// Returns a copy with a different weighted-dequeue ratio (minimum 1).
    pub fn with_batch_weight(mut self, weight: u32) -> Self {
        self.batch_weight = weight.max(1);
        self
    }

    /// Returns a copy with a server-side default deadline for interactive
    /// lines without a `DEADLINE` prefix (`0` applies none).
    pub fn with_default_deadline_interactive(mut self, ms: u64) -> Self {
        self.default_deadline_interactive_ms = ms;
        self
    }

    /// Returns a copy with a server-side default deadline for batch lines
    /// without a `DEADLINE` prefix (`0` applies none).
    pub fn with_default_deadline_batch(mut self, ms: u64) -> Self {
        self.default_deadline_batch_ms = ms;
        self
    }

    /// Returns a copy with a slow-query budget in ms (`0` disables the
    /// slow-query log).
    pub fn with_slow_ms(mut self, ms: u64) -> Self {
        self.slow_ms = ms;
        self
    }

    /// The configured default deadline for `class`, if any.
    fn default_deadline(&self, class: Priority) -> Option<Duration> {
        let ms = match class {
            Priority::Interactive => self.default_deadline_interactive_ms,
            Priority::Batch => self.default_deadline_batch_ms,
        };
        (ms > 0).then(|| Duration::from_millis(ms))
    }
}

/// How often blocked loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Longest request line (terminator excluded) the connection reader will
/// buffer.  A line still unterminated past this is a protocol violation
/// (or a runaway sender): the reader answers with a typed `ERR PARSE` and
/// drops the connection rather than growing the buffer without bound.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// The one response an oversized line gets before its connection closes.
fn oversized_line_error() -> String {
    format!("ERR PARSE line exceeds {MAX_LINE_BYTES} bytes")
}

/// How long the event loop tolerates a *continuous* write stall on one
/// connection (a client that stopped reading while the kernel send buffer
/// is full) before declaring the connection dead and dropping its
/// responses.  Long enough that a merely-slow reader on loopback never
/// trips it; short enough that a never-reading hostile client cannot hold
/// the flush path (and therefore [`Server::join`]) hostage.
const WRITE_STALL_LIMIT: Duration = Duration::from_millis(750);

/// Liveness flag shared by one connection's event-loop state machine and
/// its queued requests.  The event loop flips it off when the client is
/// gone (write error) or has stalled past [`WRITE_STALL_LIMIT`]; workers
/// then skip the connection's queued requests.
struct ConnectionState {
    alive: AtomicBool,
}

impl ConnectionState {
    fn new() -> Arc<ConnectionState> {
        Arc::new(ConnectionState {
            alive: AtomicBool::new(true),
        })
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
    }
}

/// One queued query request.
struct Request {
    /// Per-connection sequence number (response-ordering key).
    seq: u64,
    spec: QuerySpec,
    /// Registry index of the graph the request runs against.
    graph: usize,
    /// `EXPLAIN` requests are planned, not executed.
    explain: bool,
    /// When the reader received the line (latency includes queue wait).
    received: Instant,
    /// Wait budget from the `DEADLINE <ms>` prefix (or the class's
    /// server-side default), checked at dequeue.
    deadline: Option<Duration>,
    /// Scheduling class from the `PRIO <class>` prefix.
    class: Priority,
    /// `TRACE` line prefix: prepend a `# trace:` phase-breakdown comment
    /// to the answer.
    trace: bool,
    /// Event-thread time from receive to enqueue (the trace's Parse
    /// phase; only read when tracing).
    parse_time: Duration,
    /// The owning connection's liveness flag.
    conn: Arc<ConnectionState>,
    reply: event::ReplyHandle,
}

/// State shared by the event thread, workers and [`Server`] handle.
struct ServerShared {
    registry: GraphRegistry,
    /// Node sets per registered graph (parallel to the registry).
    sets: Vec<Vec<NodeSet>>,
    parse: ParseOptions,
    config: ServerConfig,
    queue: RequestQueue<Request>,
    metrics: Metrics,
    shutdown: AtomicBool,
    /// Connections currently registered with the event loop (what
    /// `STATS connections=` reports).
    live_connections: AtomicUsize,
    /// Interrupts the event loop's poll (worker completions, shutdown).
    waker: Arc<event::Waker>,
}

impl ServerShared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Closing the queue (flag inside the queue lock) makes admission
        // race-free against worker exit: a request either got in before
        // the close — and a worker will drain it — or its push refuses.
        self.queue.close();
        // A sleeping poll must notice the flag now, not a tick later.
        self.waker.wake();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        let (interactive_depth, batch_depth) = self.queue.depths();
        self.metrics.snapshot(
            interactive_depth,
            batch_depth,
            self.queue.capacity(Priority::Interactive),
            self.queue.capacity(Priority::Batch),
            self.live_connections.load(Ordering::Relaxed),
        )
    }

    /// The registered graph names, for error messages.
    fn graph_names(&self) -> String {
        self.registry
            .iter()
            .map(|(name, _)| name)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The full `STATS` payload: the snapshot's wire line plus the
    /// serving-policy fields and one block per registered graph — all
    /// **appended** after the snapshot fields, so existing consumers keep
    /// parsing by prefix.
    fn stats_line(&self) -> String {
        let snapshot = self.stats();
        let mut line = snapshot.wire_line();
        line.push_str(&format!(
            " default_deadline_interactive={} default_deadline_batch={} graphs={}",
            self.config.default_deadline_interactive_ms,
            self.config.default_deadline_batch_ms,
            self.registry.len(),
        ));
        for (index, (name, engine)) in self.registry.iter().enumerate() {
            let served = snapshot.graph_served.get(index).copied().unwrap_or(0);
            let cache = engine.shared_cache_stats().unwrap_or_default();
            line.push_str(&format!(
                " graph.{name}.served={served} graph.{name}.cache_hits={} \
                 graph.{name}.cache_misses={} graph.{name}.cache_bytes={}",
                cache.hits,
                cache.misses,
                engine.config().cache_bytes,
            ));
        }
        line
    }

    /// The `METRICS` payload: samples the per-graph engine gauges (shared
    /// caches, planner decisions), refreshes the queue/connection gauges
    /// and renders the full text exposition.  The trailing newline is
    /// trimmed because the reply path appends exactly one — the response
    /// still ends with the `# EOF` sentinel line scrapers read until.
    fn metrics_text(&self) -> String {
        for (index, (_, engine)) in self.registry.iter().enumerate() {
            let Some(gauges) = self.metrics.graphs.get(index) else {
                continue;
            };
            let cache = engine.shared_cache_stats().unwrap_or_default();
            gauges.cache_hits.set(cache.hits as f64);
            gauges.cache_misses.set(cache.misses as f64);
            gauges.cache_evictions.set(cache.evictions as f64);
            let (y_hits, y_misses) = engine
                .shared_y_tables()
                .map(|store| store.stats())
                .unwrap_or_default();
            gauges.y_hits.set(y_hits as f64);
            gauges.y_misses.set(y_misses as f64);
            gauges.cache_bytes.set(engine.config().cache_bytes as f64);
            let counters = engine.plan_counters();
            for (gauge, (_, count)) in gauges.plan_chosen.iter().zip(counters.chosen_counts()) {
                gauge.set(count as f64);
            }
            let (plans, candidates) = counters.totals();
            gauges.plans.set(plans as f64);
            gauges.plan_candidates.set(candidates as f64);
        }
        let (interactive_depth, batch_depth) = self.queue.depths();
        let text = self.metrics.render_exposition(
            interactive_depth,
            batch_depth,
            self.queue.capacity(Priority::Interactive),
            self.queue.capacity(Priority::Batch),
            self.live_connections.load(Ordering::Relaxed),
        );
        text.trim_end_matches('\n').to_string()
    }
}

/// A running query server bound to a loopback address.
///
/// The handle is the shutdown path: [`Server::shutdown`] (or a client's
/// `SHUTDOWN` verb followed by [`Server::join`]) drains the queue, joins
/// every thread and returns the final [`StatsSnapshot`].
///
/// ```no_run
/// use dht_engine::Engine;
/// use dht_graph::{GraphBuilder, NodeId, NodeSet};
/// use dht_server::{Server, ServerConfig};
///
/// let mut b = GraphBuilder::with_nodes(4);
/// b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
/// b.add_undirected_edge(NodeId(1), NodeId(2), 1.0).unwrap();
/// b.add_undirected_edge(NodeId(2), NodeId(3), 1.0).unwrap();
/// let engine = Engine::new(b.build().unwrap());
/// let sets = vec![
///     NodeSet::new("P", [NodeId(0), NodeId(1)]),
///     NodeSet::new("Q", [NodeId(2), NodeId(3)]),
/// ];
/// let server = Server::start(engine, sets, Default::default(), ServerConfig::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// let report = server.shutdown();
/// assert_eq!(report.served, 0);
/// ```
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the event and worker threads
    /// serving a **single graph** named `default`.  `sets` are the node
    /// sets query lines may name; `parse` carries the stream defaults
    /// (`k`, default algorithm, `m`) — use `ParseOptions::default()` for
    /// the `dht querystream` defaults.  Sugar over
    /// [`Server::start_registry`].
    ///
    /// # Errors
    /// Fails when the port cannot be bound or the event loop's self-wake
    /// socket pair cannot be set up.
    pub fn start(
        engine: Engine,
        sets: Vec<NodeSet>,
        parse: ParseOptions,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_registry(
            GraphRegistry::from_engines(vec![("default".to_string(), engine)]),
            vec![sets],
            parse,
            config,
        )
    }

    /// Binds `127.0.0.1:port` and starts the event and worker threads
    /// serving **every graph of `registry`** behind one port.  `sets[i]`
    /// are the node sets queryable against graph `i`; connections start
    /// on graph `0` and switch with `USE <graph>` or a per-line
    /// `@<graph>` prefix.
    ///
    /// # Errors
    /// Fails when the registry is empty, `sets` is not parallel to it, a
    /// graph name is malformed or duplicated, the port cannot be bound,
    /// or the event loop's self-wake socket pair cannot be set up.
    pub fn start_registry(
        registry: GraphRegistry,
        sets: Vec<Vec<NodeSet>>,
        parse: ParseOptions,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let invalid =
            |message: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, message);
        if registry.is_empty() {
            return Err(invalid("a server needs at least one graph".to_string()));
        }
        if sets.len() != registry.len() {
            return Err(invalid(format!(
                "got node sets for {} graphs but the registry holds {}",
                sets.len(),
                registry.len()
            )));
        }
        for (index, (name, _)) in registry.iter().enumerate() {
            if !queryline::is_valid_graph_name(name) {
                return Err(invalid(format!("invalid graph name '{name}'")));
            }
            if registry.index_of(name) != Some(index) {
                return Err(invalid(format!("duplicate graph name '{name}'")));
            }
        }
        // Serving thousands of connections needs more descriptors than the
        // common 1024 soft limit; lift it best-effort (a refusal just means
        // accepts start failing at the old limit, which the event loop
        // tolerates).
        let _ = dht_poll::raise_nofile_limit(16 * 1024);
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            batch_queue_capacity: config.batch_queue_capacity.max(1),
            batch: config.batch.max(1),
            batch_weight: config.batch_weight.max(1),
            ..config
        };
        let (waker, wake_rx) = event::Waker::new()?;
        let (completions_tx, completions_rx) = mpsc::channel();
        let graph_names: Vec<&str> = registry.iter().map(|(name, _)| name).collect();
        let metrics = Metrics::new(config.workers, &graph_names);
        let shared = Arc::new(ServerShared {
            registry,
            sets,
            parse,
            config,
            queue: RequestQueue::new(config.queue_capacity, config.batch_queue_capacity)
                .with_batch_weight(config.batch_weight),
            metrics,
            shutdown: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            waker,
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        let event = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                event::event_loop(shared, listener, wake_rx, completions_tx, completions_rx)
            })
        };
        Ok(Server {
            shared,
            addr,
            event: Some(event),
            workers,
        })
    }

    /// The bound loopback address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time view of the serving counters (what `STATS` reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Whether shutdown has been requested (by [`Server::shutdown`] or a
    /// client's `SHUTDOWN` verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Raises the shutdown flag without waiting (SIGTERM-equivalent); pair
    /// with [`Server::join`].
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until shutdown is requested — by [`Server::begin_shutdown`]
    /// or a client's `SHUTDOWN` verb — then drains the queue, joins every
    /// thread and returns the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        while !self.shared.shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
        // The event thread exits once every connection has been flushed
        // and closed (which needs workers to finish in-flight requests —
        // they keep running regardless of join order); workers exit once
        // the closed queue is drained, answering every admitted request.
        if let Some(event) = self.event.take() {
            event.join().expect("event thread panicked");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        self.shared.stats()
    }

    /// Graceful shutdown: raise the flag, drain, join, report.
    pub fn shutdown(self) -> StatsSnapshot {
        self.shared.begin_shutdown();
        self.join()
    }
}

/// Handles one request line: control verbs answer inline (returning the
/// response), query lines pass the rate limiter, parse, and enqueue into
/// their priority class (returning `None` unless refused or malformed).
/// Called by the event thread; `reply` is the connection's completion
/// route, cloned into the queued request; `graph` is the connection's
/// sticky current-graph index (`USE` reassigns it, `@<graph>` overrides
/// it for one line).
fn dispatch_line(
    shared: &Arc<ServerShared>,
    line: &str,
    seq: u64,
    reply: &event::ReplyHandle,
    conn: &Arc<ConnectionState>,
    bucket: &mut Option<TokenBucket>,
    graph: &mut usize,
) -> Option<String> {
    let received = Instant::now();
    let verb = line.split_whitespace().next().unwrap_or("");
    if verb.eq_ignore_ascii_case("ping") {
        return Some("OK PONG".to_string());
    }
    if verb.eq_ignore_ascii_case("stats") {
        return Some(format!("OK {}", shared.stats_line()));
    }
    if verb.eq_ignore_ascii_case("metrics") {
        // The full registry exposition.  Multi-line, but still ONE
        // response unit: the reply path delivers the whole string through
        // the reorder buffer atomically, so pipelined responses cannot
        // interleave with it.  Scrapers read lines until `# EOF`.
        return Some(format!("OK METRICS\n{}", shared.metrics_text()));
    }
    if verb.eq_ignore_ascii_case("use") {
        // Graph selection is a control verb (quota-exempt, answered
        // inline): switching namespaces must work on a throttled
        // connection too.
        let name = line[verb.len()..].trim();
        return Some(match shared.registry.index_of(name) {
            Some(index) => {
                *graph = index;
                format!("OK USE {name}")
            }
            None if name.is_empty() => {
                "ERR PARSE USE needs a graph name (`USE <graph>`)".to_string()
            }
            None => format!(
                "ERR PARSE unknown graph '{name}' (available graphs: {})",
                shared.graph_names()
            ),
        });
    }
    if verb.eq_ignore_ascii_case("sets") {
        // The current graph's queryable set names, in catalogue order —
        // how a router learns which shard aliases a backend holds.
        let names = shared.sets[*graph]
            .iter()
            .map(NodeSet::name)
            .collect::<Vec<_>>()
            .join(" ");
        return Some(format!("OK SETS {names}").trim_end().to_string());
    }
    if verb.eq_ignore_ascii_case("shutdown") {
        shared.begin_shutdown();
        return Some("OK BYE".to_string());
    }
    // Rate limiting sits before the parse: refusing a flood must stay
    // cheaper than parsing it.  Control verbs above are exempt, so a
    // throttled client can still PING / STATS / SHUTDOWN.
    if let Some(bucket) = bucket.as_mut() {
        if let Err(retry_after_ms) = bucket.try_acquire_at(received) {
            shared.metrics.record_quota_rejected();
            return Some(format!(
                "ERR QUOTA rate limit exceeded ({}/s, burst {}); retry after {} ms",
                shared.config.rate,
                shared.config.burst.max(1),
                retry_after_ms
            ));
        }
    }
    let (explain, query_line) = match verb.eq_ignore_ascii_case("explain") {
        true => (true, line[verb.len()..].trim_start()),
        false => (false, line),
    };
    // Line numbers over the wire are the connection's 1-based request
    // ordinal, so `ERR PARSE query line 3: …` points at the third request.
    let line_no = seq as usize + 1;
    // The `@<graph>` prefix is resolved BEFORE the full parse: set names
    // only mean something against a specific graph's catalogue, so the
    // namespace must be known first.
    let effective_graph = match queryline::split_query_line(query_line, line_no) {
        Ok(Some((prefixes, _))) => match prefixes.graph {
            Some(name) => match shared.registry.index_of(&name) {
                Some(index) => index,
                None => {
                    return Some(format!(
                        "ERR PARSE query line {line_no}: unknown graph '{name}' \
                         (available graphs: {})",
                        shared.graph_names()
                    ))
                }
            },
            None => *graph,
        },
        // Empty line / parse error: fall through so `parse_query_line`
        // produces its canonical diagnostic below.
        _ => *graph,
    };
    let parsed = match queryline::parse_query_line(
        query_line,
        &shared.sets[effective_graph],
        &shared.parse,
        line_no,
    ) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            return Some(format!(
                "ERR PARSE query line {line_no}: EXPLAIN needs a query line"
            ))
        }
        Err(error) => return Some(format!("ERR PARSE {error}")),
    };
    let class = parsed.priority;
    // Lines carrying no DEADLINE prefix inherit the server's per-class
    // default (0 = none); an explicit prefix always wins.
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| shared.config.default_deadline(class));
    let request = Request {
        seq,
        spec: parsed.spec,
        explain,
        received,
        deadline,
        class,
        graph: effective_graph,
        trace: parsed.trace,
        parse_time: received.elapsed(),
        conn: conn.clone(),
        reply: reply.clone(),
    };
    match shared.queue.try_push(request, class) {
        Ok(()) => None, // a worker will reply
        Err(queue::PushRefused::Full(_)) => {
            shared.metrics.record_rejected();
            Some(format!(
                "ERR BUSY {} queue full ({} queued, capacity {}); re-send later",
                class.name(),
                shared.queue.depth(class),
                shared.queue.capacity(class)
            ))
        }
        // The queue closed for shutdown: no worker will ever pop again,
        // so the request must be refused here instead of admitted and
        // orphaned (which would hang this connection's writer forever).
        Err(queue::PushRefused::Closed(_)) => {
            shared.metrics.record_rejected();
            Some("ERR BUSY server shutting down; connection closing".to_string())
        }
    }
}

/// One worker: one warm session **per registered graph**, answering
/// micro-batches until the queue drains after shutdown.  Requests carry
/// their graph index, so a worker serves the whole registry without
/// tearing sessions down between graphs.
fn worker_loop(shared: &Arc<ServerShared>, index: usize) {
    let mut sessions: Vec<_> = (0..shared.registry.len())
        .map(|graph| shared.registry.engine(graph).session())
        .collect();
    loop {
        let batch = shared.queue.pop_batch(shared.config.batch);
        if batch.is_empty() {
            return; // queue closed + drained
        }
        for request in batch {
            // A dead connection's requests are skipped, not executed:
            // nobody will ever read the answer.
            if !request.conn.is_alive() {
                shared.metrics.record_dropped(1);
                continue;
            }
            // Deadlines are enforced at dequeue: a request whose wait
            // budget ran out in the queue answers a typed line without
            // burning this session on an answer the client gave up on.
            let waited = request.received.elapsed();
            if let Some(deadline) = request.deadline {
                if waited > deadline {
                    shared.metrics.record_expired();
                    let expired = format!(
                        "ERR DEADLINE budget of {} ms exhausted ({} ms queued); not executed",
                        deadline.as_millis(),
                        waited.as_millis()
                    );
                    request.reply.send(request.seq, expired);
                    continue;
                }
            }
            let session = &mut sessions[request.graph];
            // Tracing is per-request (`TRACE` prefix) or server-wide when
            // a slow-query budget is set — the slow log needs spans for
            // every request because it cannot know in advance which one
            // will blow the budget.  Off, the spans cost one branch each.
            let tracing = request.trace || shared.config.slow_ms > 0;
            if tracing {
                session.set_trace_enabled(true);
                let trace = session.trace();
                trace.add(dht_walks::Phase::Parse, request.parse_time);
                trace.add(
                    dht_walks::Phase::QueueWait,
                    waited.saturating_sub(request.parse_time),
                );
            }
            let mut response = if request.explain {
                match session.explain(&request.spec) {
                    Ok(plan) => format!("OK PLAN {plan}"),
                    Err(error) => format!("ERR EXEC {error}"),
                }
            } else {
                match session.run(&request.spec) {
                    Ok(output) => {
                        let span = session.trace().span(dht_walks::Phase::Serialize);
                        let encoded = wire::encode_output(&output);
                        drop(span);
                        format!("OK {encoded}")
                    }
                    Err(error) => format!("ERR EXEC {error}"),
                }
            };
            let latency = request.received.elapsed();
            shared
                .metrics
                .record_served(latency, request.class, request.graph);
            if tracing {
                let total_ms = latency.as_secs_f64() * 1e3;
                let comment = session.trace().render_comment(total_ms);
                if request.trace {
                    // The comment and the answer travel as ONE response
                    // unit so the reorder buffer cannot interleave another
                    // request's answer between them.
                    shared.metrics.record_traced();
                    response = format!("{comment}\n{response}");
                }
                let slow_ms = shared.config.slow_ms;
                if slow_ms > 0 && total_ms > slow_ms as f64 && shared.metrics.record_slow() {
                    let graph_name = shared
                        .registry
                        .iter()
                        .nth(request.graph)
                        .map(|(name, _)| name)
                        .unwrap_or("?");
                    let columns = session.cache_stats();
                    let (y_hits, y_misses) = session.y_table_stats();
                    // Re-planning for the log happens after the comment is
                    // rendered, so the logged spans cover the query alone.
                    let plan = match session.explain(&request.spec) {
                        Ok(plan) => plan.to_string(),
                        Err(error) => format!("unavailable: {error}"),
                    };
                    eprintln!(
                        "SLOW worker={index} graph={graph_name} class={} seq={} \
                         latency_ms={total_ms:.3} budget_ms={slow_ms} plan `{plan}` \
                         columns[hits={} misses={} evictions={}] \
                         y_tables[hits={} misses={}]\n  {comment}",
                        request.class.name(),
                        request.seq,
                        columns.hits,
                        columns.misses,
                        columns.evictions,
                        y_hits,
                        y_misses,
                    );
                }
                session.reset_trace();
                session.set_trace_enabled(false);
            }
            // The connection may be gone; in-flight answers are best-effort.
            request.reply.send(request.seq, response);
        }
        // Worker-level cache telemetry aggregates across every graph's
        // session: the per-worker row answers "is this worker's cache
        // warm", not "which graph warmed it" (STATS per-graph blocks
        // answer that from the shared caches).
        let mut cache = dht_walks::CacheStats::default();
        let mut y_tables = (0u64, 0u64);
        for session in &sessions {
            cache = cache.merged(session.cache_stats());
            let (y_hits, y_misses) = session.y_table_stats();
            y_tables.0 += y_hits;
            y_tables.1 += y_misses;
        }
        shared.metrics.store_worker_caches(index, cache, y_tables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::{GraphBuilder, NodeId};
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;

    fn fixture() -> (Engine, Vec<NodeSet>) {
        let mut b = GraphBuilder::with_nodes(10);
        for (u, v) in [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (5, 9),
            (4, 5),
        ] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let engine = Engine::new(b.build().unwrap());
        let sets = vec![
            NodeSet::new("P", (0..5).map(NodeId)),
            NodeSet::new("Q", (5..10).map(NodeId)),
        ];
        (engine, sets)
    }

    fn start_fixture(config: ServerConfig) -> Server {
        let (engine, sets) = fixture();
        Server::start(engine, sets, ParseOptions::default(), config).expect("bind loopback")
    }

    /// Sends `lines` on one connection and reads one response per line.
    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").expect("send");
            writer.flush().expect("flush");
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            responses.push(response.trim_end().to_string());
        }
        responses
    }

    #[test]
    fn control_verbs_answer_inline() {
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        let responses = roundtrip(addr, &["PING", "ping", "STATS"]);
        assert_eq!(responses[0], "OK PONG");
        assert_eq!(responses[1], "OK PONG", "verbs are case-insensitive");
        assert!(
            responses[2].starts_with("OK STATS served=0"),
            "{responses:?}"
        );
        assert!(responses[2].contains("workers=2"), "{responses:?}");
        server.shutdown();
    }

    #[test]
    fn stats_reports_live_connections_from_the_event_loop() {
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        // The querying connection counts itself.
        let first = roundtrip(addr, &["STATS"]);
        assert!(first[0].contains(" connections=1"), "{first:?}");
        // Wait out the close of the first connection so the next count is
        // deterministic.
        while server.stats().connections != 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // A parked idle connection is visible to a later querying one.
        let parked = TcpStream::connect(addr).expect("connect");
        let second = roundtrip(addr, &["STATS"]);
        assert!(second[0].contains(" connections=2"), "{second:?}");
        drop(parked);
        assert!(server.stats().connections >= 1, "handle-side view works");
        // After shutdown every connection has been closed and deregistered.
        let report = server.shutdown();
        assert_eq!(report.connections, 0, "{report:?}");
    }

    #[test]
    fn queries_answer_bit_identically_to_in_process_sessions() {
        let server = start_fixture(ServerConfig::default().with_workers(3));
        let addr = server.local_addr();
        let lines = ["P Q 3", "Q P 2 b-bj", "P Q 3", "nway chain P Q 2 ap min"];
        let responses = roundtrip(addr, &lines);

        let (engine, sets) = fixture();
        let options = ParseOptions::default();
        for (index, (line, response)) in lines.iter().zip(&responses).enumerate() {
            let spec = queryline::parse_query_line(line, &sets, &options, index + 1)
                .unwrap()
                .unwrap()
                .spec;
            let expected = engine.session().run(&spec).unwrap();
            assert_eq!(
                response,
                &format!("OK {}", wire::encode_output(&expected)),
                "request {index}"
            );
        }
        // Pipelined responses keep request order on a second connection.
        assert_eq!(roundtrip(addr, &lines), responses);
        let report = server.shutdown();
        assert_eq!(report.served, 2 * lines.len() as u64);
        assert_eq!(report.rejected, 0);
        assert!(report.column_hits > 0, "repeats must hit the shared cache");
    }

    #[test]
    fn slow_senders_keep_partial_lines_across_read_timeouts() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // One request delivered in chunks with pauses well past the
        // reader's poll interval: the prefix consumed by a timed-out read
        // must survive until the newline arrives.  The second request
        // splits a multi-byte UTF-8 character ('é' in a trailing comment)
        // across the stall, which `read_line` would roll back entirely.
        let chunked: [&[&[u8]]; 2] = [&[b"P ", b"Q ", b"3\n"], &[b"P Q 3 # caf\xC3", b"\xA9\n"]];
        for chunks in chunked {
            for chunk in chunks {
                writer.write_all(chunk).expect("send chunk");
                writer.flush().expect("flush");
                std::thread::sleep(3 * POLL_INTERVAL);
            }
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            assert!(response.starts_with("OK TWOWAY"), "{response:?}");
        }
        // A final request with no trailing newline is still served at EOF.
        writer.write_all(b"PING").expect("send final");
        writer.flush().expect("flush");
        std::thread::sleep(3 * POLL_INTERVAL);
        writer
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut last = String::new();
        reader.read_line(&mut last).expect("receive final");
        assert_eq!(last.trim_end(), "OK PONG");
        server.shutdown();
    }

    #[test]
    fn oversized_unterminated_lines_get_one_error_then_disconnect() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // The cap is on content, terminator excluded: a terminated line of
        // exactly MAX_LINE_BYTES (padded with stripped whitespace) serves.
        let mut boundary = b"PING".to_vec();
        boundary.resize(MAX_LINE_BYTES, b' ');
        boundary.push(b'\n');
        writer.write_all(&boundary).expect("send boundary line");
        writer.flush().expect("flush");
        let mut pong = String::new();
        reader.read_line(&mut pong).expect("receive pong");
        assert_eq!(pong.trim_end(), "OK PONG");
        // A newline-less flood past MAX_LINE_BYTES must not buffer
        // forever: the server answers once and closes the connection.
        writer
            .write_all(&vec![b'a'; MAX_LINE_BYTES + 1024])
            .expect("send flood");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        assert_eq!(response.trim_end(), oversized_line_error());
        let closed = reader.read_line(&mut response).expect("read at EOF");
        assert_eq!(closed, 0, "connection must be dropped after the error");
        server.shutdown();
    }

    #[test]
    fn newline_less_drip_feed_is_capped_not_buffered_forever() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // Chunks arriving faster than the read timeout keep `read` from
        // ever timing out; the `take` budget must still cap the line.
        let chunk = vec![b'a'; 16 * 1024];
        let error = std::thread::spawn(move || {
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            response
        });
        for _ in 0..8 {
            if writer.write_all(&chunk).is_err() {
                break; // server already dropped us — that's the point
            }
            let _ = writer.flush();
            std::thread::sleep(POLL_INTERVAL / 4);
        }
        let response = error.join().expect("reader thread");
        assert_eq!(response.trim_end(), oversized_line_error());
        server.shutdown();
    }

    #[test]
    fn invalid_utf8_lines_get_a_typed_parse_error() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // A stray invalid byte (not a timeout-split multi-byte character)
        // answers a typed error and the connection keeps serving.
        writer.write_all(b"P\xFF Q 3\nPING\n").expect("send");
        writer.flush().expect("flush");
        let mut first = String::new();
        reader.read_line(&mut first).expect("receive error");
        assert_eq!(
            first.trim_end(),
            "ERR PARSE request line is not valid UTF-8"
        );
        let mut second = String::new();
        reader.read_line(&mut second).expect("receive pong");
        assert_eq!(second.trim_end(), "OK PONG");
        server.shutdown();
    }

    #[test]
    fn explain_returns_a_plan_without_executing() {
        let server = start_fixture(ServerConfig::default());
        let responses = roundtrip(
            server.local_addr(),
            &["EXPLAIN P Q 3 auto", "EXPLAIN", "explain nway chain P Q 2"],
        );
        assert!(responses[0].starts_with("OK PLAN choose "), "{responses:?}");
        assert!(responses[0].contains("auto"), "{responses:?}");
        assert!(
            responses[1].starts_with("ERR PARSE"),
            "bare EXPLAIN is malformed: {responses:?}"
        );
        assert!(responses[2].starts_with("OK PLAN "), "{responses:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_typed_parse_errors_with_request_ordinals() {
        let server = start_fixture(ServerConfig::default());
        let responses = roundtrip(
            server.local_addr(),
            &["P Z 3", "P Q 0", "P Q 3 b-idj-z", "P Q 3   # still fine"],
        );
        assert!(
            responses[0].starts_with("ERR PARSE query line 1:"),
            "{responses:?}"
        );
        assert!(
            responses[0].contains("unknown node set 'Z'"),
            "{responses:?}"
        );
        assert!(responses[1].contains("query line 2"), "{responses:?}");
        assert!(responses[2].contains("'b-idj-z'"), "{responses:?}");
        assert!(
            responses[3].starts_with("OK TWOWAY"),
            "a parse error must not poison the connection: {responses:?}"
        );
        server.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy_and_resends_succeed() {
        // Worker count 1, queue capacity 1, batch 1: a pipelined burst must
        // overflow and the rejected lines re-send cleanly.
        let server = start_fixture(
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_batch(1),
        );
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 16usize;
        for _ in 0..burst {
            writeln!(writer, "P Q 3").unwrap();
        }
        writer.flush().unwrap();
        let mut ok = Vec::new();
        let mut busy = 0usize;
        for _ in 0..burst {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end().to_string();
            if response.starts_with("ERR BUSY") {
                busy += 1;
            } else {
                assert!(response.starts_with("OK TWOWAY"), "{response}");
                ok.push(response);
            }
        }
        assert!(
            busy > 0,
            "a 16-deep pipelined burst must overflow capacity 1"
        );
        // Re-send every rejected query: all succeed with identical answers.
        for _ in 0..busy {
            loop {
                writeln!(writer, "P Q 3").unwrap();
                writer.flush().unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                let response = response.trim_end().to_string();
                if response.starts_with("ERR BUSY") {
                    continue;
                }
                assert_eq!(response, ok[0], "re-sent answers are bit-identical");
                break;
            }
        }
        drop(writer);
        let report = server.shutdown();
        assert_eq!(report.served + report.rejected, report.served + busy as u64);
        assert_eq!(report.served as usize, burst, "every unique query answered");
    }

    #[test]
    fn late_queries_racing_shutdown_are_answered_or_refused_never_orphaned() {
        // Regression: queries pipelined right behind SHUTDOWN must either
        // be admitted before the queue closes (a worker then drains them)
        // or be refused with a typed line — never admitted-and-orphaned,
        // which would hang the connection writer and Server::join forever.
        let server = start_fixture(ServerConfig::default().with_workers(1));
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "SHUTDOWN").unwrap();
        let late = 8usize;
        for _ in 0..late {
            writeln!(writer, "P Q 3").unwrap();
        }
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert_eq!(response.trim_end(), "OK BYE");
        for index in 0..late {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end();
            assert!(
                response.starts_with("OK TWOWAY") || response.starts_with("ERR BUSY"),
                "late query {index} got: {response}"
            );
        }
        // The join must complete (this is where the pre-fix server hung).
        let report = server.join();
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn qos_prefixes_never_change_answers() {
        let server = start_fixture(ServerConfig::default());
        let responses = roundtrip(
            server.local_addr(),
            &[
                "P Q 3",
                "DEADLINE 60000 P Q 3",
                "PRIO batch P Q 3",
                "deadline 60000 prio interactive P Q 3",
                "PRIO urgent P Q 3",
            ],
        );
        assert!(responses[0].starts_with("OK TWOWAY"), "{responses:?}");
        for qos in &responses[1..4] {
            assert_eq!(
                qos, &responses[0],
                "a QoS prefix must not change the answer"
            );
        }
        assert!(responses[4].contains("bad token 'urgent'"), "{responses:?}");
        let report = server.shutdown();
        assert_eq!(report.interactive_served, 3);
        assert_eq!(report.batch_served, 1);
    }

    #[test]
    fn rate_limited_connections_get_typed_quota_with_honest_hints() {
        let server = start_fixture(ServerConfig::default().with_rate(10).with_burst(2));
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 10usize;
        for _ in 0..burst {
            writeln!(writer, "P Q 3").unwrap();
        }
        // Control verbs are exempt: a throttled client can still probe.
        writeln!(writer, "PING").unwrap();
        writer.flush().unwrap();
        let mut served = 0usize;
        let mut quota = 0usize;
        for _ in 0..burst {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end();
            if wire::is_quota(response) {
                quota += 1;
                let hint = wire::retry_after_ms(response).expect("hint parses");
                assert!((1..=1000).contains(&hint), "10/s refills within 100 ms");
            } else {
                assert!(response.starts_with("OK TWOWAY"), "{response}");
                served += 1;
            }
        }
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        assert_eq!(pong.trim_end(), "OK PONG");
        assert!(quota > 0, "a 10-deep burst must overrun burst capacity 2");
        assert_eq!(served + quota, burst);
        // Honouring the hint succeeds: one more token accrues in ≤ 100 ms.
        std::thread::sleep(Duration::from_millis(120));
        writeln!(writer, "P Q 3").unwrap();
        writer.flush().unwrap();
        let mut retry = String::new();
        reader.read_line(&mut retry).unwrap();
        assert!(retry.starts_with("OK TWOWAY"), "{retry}");
        let report = server.shutdown();
        assert_eq!(report.quota_rejected, quota as u64);
        assert_eq!(report.rejected, 0, "quota refusals are not BUSY refusals");
    }

    #[test]
    fn expired_deadlines_answer_typed_lines_without_execution() {
        // One worker and a deep pipelined burst of 1 ms budgets: the tail
        // of the queue must wait longer than its budget and expire.  (The
        // queue is sized to admit the whole burst, so every line gets
        // either an answer or a deadline expiry — never a BUSY.)
        let server = start_fixture(
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(512),
        );
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 512usize;
        for _ in 0..burst {
            writeln!(writer, "DEADLINE 1 nway chain P Q 3 ap min").unwrap();
        }
        writer.flush().unwrap();
        let mut served = Vec::new();
        let mut expired = 0usize;
        for _ in 0..burst {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end().to_string();
            if wire::is_deadline(&response) {
                assert!(response.contains("budget of 1 ms"), "{response}");
                assert!(response.contains("not executed"), "{response}");
                expired += 1;
            } else {
                assert!(response.starts_with("OK NWAY"), "{response}");
                served.push(response);
            }
        }
        assert!(
            expired > 0,
            "a 64-deep queue on one worker must expire 1 ms budgets"
        );
        assert!(
            !served.is_empty(),
            "the queue head is served before its budget runs out"
        );
        // A comfortable budget on the now-idle server always serves.
        writeln!(writer, "DEADLINE 60000 P Q 3").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.starts_with("OK TWOWAY"), "{response}");
        let report = server.shutdown();
        assert_eq!(report.expired, expired as u64);
        assert_eq!(report.served, served.len() as u64 + 1);
    }

    #[test]
    fn batch_floods_cannot_exhaust_interactive_admission() {
        // Batch class: capacity 1.  Interactive: default 128.  A pipelined
        // batch flood must hit `ERR BUSY batch` while interactive requests
        // sail through unrejected on the same connection.
        let server = start_fixture(
            ServerConfig::default()
                .with_workers(1)
                .with_batch_queue_capacity(1)
                .with_batch(1),
        );
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 24usize;
        for _ in 0..burst {
            writeln!(writer, "PRIO batch P Q 3").unwrap();
        }
        for _ in 0..4 {
            writeln!(writer, "P Q 3").unwrap();
        }
        writer.flush().unwrap();
        let mut batch_busy = 0usize;
        for index in 0..burst {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end();
            if response.starts_with("ERR BUSY batch") {
                batch_busy += 1;
            } else {
                assert!(
                    response.starts_with("OK TWOWAY"),
                    "batch {index}: {response}"
                );
            }
        }
        assert!(
            batch_busy > 0,
            "a 24-deep batch burst must overflow capacity 1"
        );
        for index in 0..4 {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            assert!(
                response.starts_with("OK TWOWAY"),
                "interactive {index} must never be rejected: {}",
                response.trim_end()
            );
        }
        let report = server.shutdown();
        assert_eq!(report.rejected, batch_busy as u64);
        assert_eq!(report.interactive_served, 4);
    }

    #[test]
    fn disconnected_clients_have_pending_responses_dropped_not_blocking() {
        // A client bursts queries and slams the connection shut without
        // reading: workers must not block handing results to the dead
        // connection, drops must be counted, and shutdown must not hang.
        let server = start_fixture(ServerConfig::default().with_workers(1).with_batch(1));
        let addr = server.local_addr();
        {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
            for _ in 0..64 {
                writeln!(writer, "nway chain P Q 3 ap min").unwrap();
            }
            writer.flush().unwrap();
            // Dropping both halves closes with every response unread; the
            // server's next write gets a connection-reset error.
        }
        // A well-behaved connection keeps working while the dead one is
        // cleaned up, and shutdown drains everything without hanging.
        let responses = roundtrip(addr, &["P Q 3"]);
        assert!(responses[0].starts_with("OK TWOWAY"), "{responses:?}");
        let report = server.shutdown();
        assert_eq!(report.queue_depth, 0, "drained despite the dead client");
        assert!(
            report.dropped > 0,
            "dropped responses must be counted: {report:?}"
        );
        assert!(
            report.served >= 1,
            "the live connection was served: {report:?}"
        );
    }

    #[test]
    fn shutdown_during_overload_answers_or_refuses_every_request_and_joins() {
        // SHUTDOWN while the queue is full and hostile clients are
        // attached: every queued request drains or is refused with a
        // typed line, and join() returns without leaking threads.
        let server = start_fixture(
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(4)
                .with_batch_queue_capacity(2)
                .with_batch(1),
        );
        let addr = server.local_addr();
        // Hostile 1: a never-read client with a pipelined backlog.
        let never_read = TcpStream::connect(addr).expect("connect");
        let mut never_read_writer = BufWriter::new(never_read.try_clone().expect("clone"));
        for _ in 0..32 {
            writeln!(never_read_writer, "PRIO batch P Q 3").unwrap();
        }
        never_read_writer.flush().unwrap();
        // Hostile 2: a disconnect-mid-flight client.
        {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
            for _ in 0..16 {
                writeln!(writer, "nway chain P Q 3 ap min").unwrap();
            }
            writer.flush().unwrap();
        }
        // The well-behaved client pipelines queries behind a SHUTDOWN and
        // must get one typed line per request.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let late = 12usize;
        for _ in 0..(late / 2) {
            writeln!(writer, "P Q 3").unwrap();
        }
        writeln!(writer, "SHUTDOWN").unwrap();
        for _ in 0..(late / 2) {
            writeln!(writer, "DEADLINE 1000 P Q 3").unwrap();
        }
        writer.flush().unwrap();
        let mut bye = 0usize;
        for index in 0..=late {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end();
            if response == "OK BYE" {
                bye += 1;
                continue;
            }
            assert!(
                response.starts_with("OK TWOWAY")
                    || response.starts_with("ERR BUSY")
                    || response.starts_with("ERR DEADLINE"),
                "request {index} must get a typed line, got: {response}"
            );
        }
        assert_eq!(bye, 1, "exactly one SHUTDOWN acknowledgement");
        // No RST'd responses: EOF arrives only after every line above.
        let mut eof_probe = String::new();
        assert_eq!(reader.read_line(&mut eof_probe).unwrap(), 0, "clean close");
        drop(never_read_writer);
        drop(never_read);
        // The join is the satellite's point: it must return despite the
        // full queue, the dead client and the never-read backlog.
        let report = server.join();
        assert_eq!(report.queue_depth, 0, "nothing left queued: {report:?}");
    }

    #[test]
    fn partial_writes_resume_until_every_response_is_delivered_in_order() {
        // Readiness-loop edge case: the client pipelines enough STATS
        // requests that the responses (~400 bytes each) overrun the
        // kernel's loopback buffering while it is not reading, forcing the
        // event loop through the partial-write path (outbuf flushed as far
        // as the socket accepts, remainder retried on POLLOUT).  Every
        // response must still arrive intact and in request order.
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 30_000usize;
        for _ in 0..burst {
            writeln!(writer, "STATS").unwrap();
        }
        writer.flush().unwrap();
        // Let the server stuff the socket until it blocks (well under the
        // write-stall limit, so the connection must not be marked dead).
        std::thread::sleep(WRITE_STALL_LIMIT / 4);
        let mut response = String::new();
        for index in 0..burst {
            response.clear();
            reader.read_line(&mut response).expect("receive");
            assert!(
                response.starts_with("OK STATS served=0"),
                "response {index} arrived corrupt or out of order: {response:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn request_line_split_across_many_tiny_reads_is_reassembled() {
        // Readiness-loop edge case: one request line delivered in dozens
        // of fragments, each landing in its own readable event (every
        // fragment is followed by a WouldBlock read).  The per-connection
        // raw buffer must reassemble the line — including a multi-byte
        // UTF-8 character split across fragments — exactly once.
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let line = "P Q 3   # caf\u{e9} caf\u{e9} caf\u{e9}\n".as_bytes();
        for chunk in line.chunks(1) {
            writer.write_all(chunk).expect("send byte");
            writer.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        assert!(response.starts_with("OK TWOWAY"), "{response:?}");
        // The fragments formed one request, not several.
        let responses = roundtrip(server.local_addr(), &["STATS"]);
        assert!(responses[0].contains(" served=1 "), "{responses:?}");
        server.shutdown();
    }

    #[test]
    fn hundreds_of_idle_connections_close_cleanly_on_shutdown() {
        // Readiness-loop edge case: graceful SHUTDOWN with hundreds of
        // idle registered connections.  The old thread-per-connection
        // design parked two stacks on each; the event loop holds one
        // buffer per connection and must flush-and-close all of them
        // (EOF, not RST) without stalling the join.
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        let idle: Vec<TcpStream> = (0..300)
            .map(|index| {
                TcpStream::connect(addr).unwrap_or_else(|error| panic!("connect {index}: {error}"))
            })
            .collect();
        // Wait until the event loop has registered every connection.
        while server.stats().connections < idle.len() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let responses = roundtrip(addr, &["SHUTDOWN"]);
        assert_eq!(responses[0], "OK BYE");
        let report = server.join();
        assert_eq!(report.connections, 0, "{report:?}");
        // Every idle connection was closed cleanly: EOF, no reset error.
        for (index, stream) in idle.into_iter().enumerate() {
            let mut probe = String::new();
            let mut reader = BufReader::new(stream);
            let read = reader
                .read_line(&mut probe)
                .unwrap_or_else(|error| panic!("idle connection {index}: {error}"));
            assert_eq!(read, 0, "idle connection {index} got bytes: {probe:?}");
        }
    }

    /// Two named graphs with deliberately different structure but the
    /// same set names, so `P Q 3` answers differently per graph and any
    /// routing mistake shows up as a wrong (still well-formed) answer.
    fn registry_fixture() -> (GraphRegistry, Vec<Vec<NodeSet>>) {
        let (ring_engine, ring_sets) = fixture();
        let mut b = GraphBuilder::with_nodes(8);
        for (u, v, w) in [
            (0u32, 1u32, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 2.0),
            (4, 5, 1.0),
            (5, 6, 2.0),
            (6, 7, 1.0),
        ] {
            b.add_undirected_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        let path_engine = Engine::new(b.build().unwrap());
        let path_sets = vec![
            NodeSet::new("P", (0..3).map(NodeId)),
            NodeSet::new("Q", (5..8).map(NodeId)),
            NodeSet::new("MID", [NodeId(3), NodeId(4)]),
        ];
        let registry = GraphRegistry::from_engines(vec![
            ("ring".to_string(), ring_engine),
            ("path".to_string(), path_engine),
        ]);
        (registry, vec![ring_sets, path_sets])
    }

    /// The bit-exact in-process answer for `line` against registry graph
    /// `graph` of [`registry_fixture`].
    fn registry_expected(graph: usize, line: &str) -> String {
        let (registry, sets) = registry_fixture();
        let spec = queryline::parse_query_line(line, &sets[graph], &ParseOptions::default(), 1)
            .unwrap()
            .unwrap()
            .spec;
        let output = registry.engine(graph).session().run(&spec).unwrap();
        format!("OK {}", wire::encode_output(&output))
    }

    #[test]
    fn use_and_graph_prefix_select_graphs_without_changing_answers() {
        let (registry, sets) = registry_fixture();
        let server = Server::start_registry(
            registry,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let ring = registry_expected(0, "P Q 3");
        let path = registry_expected(1, "P Q 3");
        assert_ne!(ring, path, "the fixture graphs must answer differently");
        let responses = roundtrip(
            addr,
            &[
                "P Q 3",       // connections start on graph 0
                "USE path",    // sticky switch
                "P Q 3",       // now answered by `path`
                "@ring P Q 3", // one-line override, answers like graph 0
                "P Q 3",       // the override was not sticky
                "@path P Q 3", // explicit prefix for the current graph
                "USE ring",    // switch back
                "P Q 3",
            ],
        );
        assert_eq!(responses[0], ring);
        assert_eq!(responses[1], "OK USE path");
        assert_eq!(responses[2], path);
        assert_eq!(responses[3], ring, "@ring overrides USE for one line");
        assert_eq!(responses[4], path, "@<graph> must not be sticky");
        assert_eq!(responses[5], path);
        assert_eq!(responses[6], "OK USE ring");
        assert_eq!(responses[7], ring);
        // A fresh connection starts on graph 0 regardless of other
        // connections' USE state.
        assert_eq!(roundtrip(addr, &["P Q 3"]), vec![ring.clone()]);
        // Unknown graphs answer typed errors listing what is available.
        let errors = roundtrip(addr, &["USE nope", "@nope P Q 3", "USE", "P Q 3"]);
        assert_eq!(
            errors[0],
            "ERR PARSE unknown graph 'nope' (available graphs: ring, path)"
        );
        assert!(
            errors[1].starts_with("ERR PARSE query line 2: unknown graph 'nope'"),
            "{errors:?}"
        );
        assert!(
            errors[1].contains("available graphs: ring, path"),
            "{errors:?}"
        );
        assert_eq!(
            errors[2],
            "ERR PARSE USE needs a graph name (`USE <graph>`)"
        );
        assert_eq!(errors[3], ring, "errors leave the selection untouched");
        // SETS lists the *current* graph's catalogue.
        let catalogues = roundtrip(addr, &["SETS", "USE path", "SETS"]);
        assert_eq!(catalogues[0], "OK SETS P Q");
        assert_eq!(catalogues[2], "OK SETS P Q MID");
        server.shutdown();
    }

    #[test]
    fn stats_reports_per_graph_blocks_and_build_info() {
        let (registry, sets) = registry_fixture();
        let server = Server::start_registry(
            registry,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let responses = roundtrip(addr, &["P Q 3", "P Q 2", "@path P Q 3", "STATS"]);
        let stats = &responses[3];
        assert!(stats.contains(" graphs=2"), "{stats}");
        assert!(stats.contains(" graph.ring.served=2"), "{stats}");
        assert!(stats.contains(" graph.path.served=1"), "{stats}");
        assert!(stats.contains(" graph.ring.cache_bytes="), "{stats}");
        assert!(stats.contains(" graph.path.cache_hits="), "{stats}");
        assert!(stats.contains(" uptime_ms="), "{stats}");
        assert!(
            stats.contains(&format!(" build={}", metrics::BUILD_ID)),
            "{stats}"
        );
        assert!(
            stats.contains(" default_deadline_interactive=0 default_deadline_batch=0"),
            "{stats}"
        );
        server.shutdown();
    }

    #[test]
    fn single_graph_servers_register_as_default() {
        // `Server::start` is registry sugar: one graph named `default`,
        // reachable explicitly by name and listed in STATS.
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        let responses = roundtrip(
            addr,
            &["USE default", "@default P Q 3", "P Q 3", "SETS", "STATS"],
        );
        assert_eq!(responses[0], "OK USE default");
        assert!(responses[1].starts_with("OK TWOWAY"), "{responses:?}");
        assert_eq!(responses[1], responses[2]);
        assert_eq!(responses[3], "OK SETS P Q");
        assert!(responses[4].contains(" graphs=1"), "{responses:?}");
        assert!(
            responses[4].contains(" graph.default.served=2"),
            "{responses:?}"
        );
        server.shutdown();
    }

    #[test]
    fn default_deadlines_apply_only_to_unprefixed_lines() {
        // A 1 ms server-side default on one worker with a deep pipelined
        // burst: plain lines inherit the default and the queue tail
        // expires, while lines carrying an explicit comfortable DEADLINE
        // prefix override the default and always serve.
        let server = start_fixture(
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(512)
                .with_default_deadline_interactive(1),
        );
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 256usize;
        for index in 0..burst {
            if index % 2 == 0 {
                writeln!(writer, "nway chain P Q 3 ap min").unwrap();
            } else {
                writeln!(writer, "DEADLINE 60000 nway chain P Q 3 ap min").unwrap();
            }
        }
        writer.flush().unwrap();
        let mut expired = 0usize;
        for index in 0..burst {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end();
            if index % 2 == 1 {
                assert!(
                    response.starts_with("OK NWAY"),
                    "explicit DEADLINE overrides the default: {response}"
                );
            } else if wire::is_deadline(response) {
                assert!(response.contains("budget of 1 ms"), "{response}");
                expired += 1;
            } else {
                assert!(response.starts_with("OK NWAY"), "{response}");
            }
        }
        assert!(
            expired > 0,
            "a deep queue on one worker must expire inherited 1 ms budgets"
        );
        // The configured defaults are visible in STATS.
        let stats = roundtrip(addr, &["STATS"]);
        assert!(
            stats[0].contains(" default_deadline_interactive=1 default_deadline_batch=0"),
            "{stats:?}"
        );
        let report = server.shutdown();
        assert_eq!(report.expired, expired as u64);
    }

    #[test]
    fn start_registry_rejects_malformed_registries() {
        let bad_name = GraphRegistry::from_engines(vec![("no spaces".to_string(), {
            let mut b = GraphBuilder::with_nodes(2);
            b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
            Engine::new(b.build().unwrap())
        })]);
        assert!(Server::start_registry(
            bad_name,
            vec![Vec::new()],
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .is_err());
        let (registry, _) = registry_fixture();
        assert!(
            Server::start_registry(
                registry,
                vec![Vec::new()], // one catalogue for two graphs
                ParseOptions::default(),
                ServerConfig::default(),
            )
            .is_err(),
            "sets must be per-graph"
        );
    }

    /// Reads one `METRICS` response: the `OK METRICS` head plus every
    /// line through the `# EOF` sentinel.
    fn read_metrics(reader: &mut impl BufRead) -> String {
        let mut text = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("receive metrics line");
            assert!(!line.is_empty(), "EOF before the # EOF sentinel:\n{text}");
            let done = line.trim_end() == "# EOF";
            text.push_str(&line);
            if done {
                return text;
            }
        }
    }

    #[test]
    fn metrics_verb_exposes_the_registry_over_the_wire() {
        let (registry, sets) = registry_fixture();
        let server = Server::start_registry(
            registry,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        // Answer the queries first (their responses are read back, so the
        // served counters are recorded before the scrape is dispatched —
        // METRICS answers inline on the event thread).
        let answers = roundtrip(addr, &["P Q 3 auto", "@path P Q 3 auto"]);
        assert!(
            answers.iter().all(|a| a.starts_with("OK TWOWAY")),
            "{answers:?}"
        );
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        // Pipeline a request behind the scrape: the multi-line response
        // must come through the reorder buffer as one unit, in order.
        writeln!(writer, "METRICS\nPING").unwrap();
        writer.flush().unwrap();
        let mut head = String::new();
        reader.read_line(&mut head).unwrap();
        assert_eq!(head.trim_end(), "OK METRICS");
        let text = read_metrics(&mut reader);
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        assert_eq!(pong.trim_end(), "OK PONG", "scrapes must not eat answers");
        for family in [
            "dht_requests_served_total",
            "dht_requests_rejected_total",
            "dht_responses_dropped_total",
            "dht_request_latency_seconds",
            "dht_queue_depth",
            "dht_connections",
            "dht_graph_served_total",
            "dht_plan_chosen",
            "dht_build_info",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "{family} missing"
            );
        }
        assert!(
            text.contains("dht_requests_served_total{class=\"interactive\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("dht_graph_served_total{graph=\"ring\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dht_graph_served_total{graph=\"path\"} 1"),
            "{text}"
        );
        assert!(text.contains("dht_responses_dropped_total 0"), "{text}");
        assert!(
            text.contains("dht_request_latency_seconds_count{class=\"all\"} 2"),
            "{text}"
        );
        // Both queries planned through Auto: the planner gauges are live.
        assert!(
            text.contains("dht_plans{graph=\"ring\"} 1")
                && text.contains("dht_plans{graph=\"path\"} 1"),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn trace_prefix_returns_a_span_comment_before_an_identical_answer() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "P Q 3\nTRACE P Q 3\nTRACE nway chain P Q 2 ap min").unwrap();
        writer.flush().unwrap();
        let mut plain = String::new();
        reader.read_line(&mut plain).unwrap();
        assert!(plain.starts_with("OK TWOWAY"), "{plain}");
        let mut comment = String::new();
        reader.read_line(&mut comment).unwrap();
        assert!(comment.starts_with("# trace: total_ms="), "{comment}");
        assert!(comment.contains(" parse_ms="), "{comment}");
        assert!(comment.contains(" queue_ms="), "{comment}");
        assert!(comment.contains(" join_ms="), "{comment}");
        assert!(comment.contains(" serialize_ms="), "{comment}");
        let mut traced = String::new();
        reader.read_line(&mut traced).unwrap();
        assert_eq!(
            traced, plain,
            "the TRACE prefix must never perturb the answer"
        );
        // N-way traces carry the same schema through a different path.
        let mut nway_comment = String::new();
        reader.read_line(&mut nway_comment).unwrap();
        assert!(
            nway_comment.starts_with("# trace: total_ms="),
            "{nway_comment}"
        );
        let mut nway = String::new();
        reader.read_line(&mut nway).unwrap();
        assert!(nway.starts_with("OK NWAY"), "{nway}");
        // The traced-request counter is visible in the exposition.
        writeln!(writer, "METRICS").unwrap();
        writer.flush().unwrap();
        let mut head = String::new();
        reader.read_line(&mut head).unwrap();
        assert_eq!(head.trim_end(), "OK METRICS");
        let text = read_metrics(&mut reader);
        assert!(text.contains("dht_traced_requests_total 2"), "{text}");
        let report = server.shutdown();
        assert_eq!(report.served, 3);
    }

    #[test]
    fn slow_query_budgets_enable_tracing_without_perturbing_answers() {
        // A 1 ms budget on a debug-build n-way join: tracing is live for
        // every request, yet answers are bit-identical to an untraced
        // server and untraced lines get no comment prepended.
        let baseline = start_fixture(ServerConfig::default());
        let expected = roundtrip(baseline.local_addr(), &["nway chain P Q 3 ap min", "P Q 3"]);
        baseline.shutdown();
        let server = start_fixture(ServerConfig::default().with_slow_ms(1));
        let responses = roundtrip(server.local_addr(), &["nway chain P Q 3 ap min", "P Q 3"]);
        assert_eq!(responses, expected, "slow-query tracing must be invisible");
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "METRICS").unwrap();
        writer.flush().unwrap();
        let mut head = String::new();
        reader.read_line(&mut head).unwrap();
        assert_eq!(head.trim_end(), "OK METRICS");
        let text = read_metrics(&mut reader);
        assert!(
            text.contains("# TYPE dht_slow_queries_total counter"),
            "{text}"
        );
        assert!(
            text.contains("dht_traced_requests_total 0"),
            "no TRACE prefix was sent: {text}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_verb_drains_and_exits_cleanly() {
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        let responses = roundtrip(addr, &["P Q 2", "SHUTDOWN"]);
        assert!(responses[0].starts_with("OK TWOWAY"), "{responses:?}");
        assert_eq!(responses[1], "OK BYE");
        assert!(server.is_shutting_down());
        let report = server.join();
        assert_eq!(report.served, 1);
        assert_eq!(report.queue_depth, 0, "queue drained before exit");
        // The listener is gone after shutdown.
        assert!(TcpStream::connect(addr).is_err());
    }
}

//! # dht-server
//!
//! A hermetic TCP front end for the query engine: one long-lived
//! [`dht_engine::Engine`] per served graph, a pool of warm
//! [`dht_engine::Session`]s answering for any number of concurrent
//! clients, and a line protocol that is exactly the `dht querystream`
//! query language plus three control verbs.  Everything is `std::net` +
//! `std::thread` — no async runtime, no registry dependencies — matching
//! the workspace's hermetic-build rule.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ per-connection reader ──▶ bounded queue
//!                                        │ PING/STATS          │ try_push
//!                                        ▼ (answered inline)   ▼ pop_batch
//!                               per-connection writer ◀── worker pool
//!                               (reorders by sequence)   (one Session each,
//!                                                         shared engine cache)
//! ```
//!
//! * **Acceptor thread** — accepts loopback connections and spawns one
//!   reader thread per connection.
//! * **Bounded request queue** — the backpressure point:
//!   readers never block; when the queue is full the request is rejected
//!   *immediately* with a typed `ERR BUSY` line, so overload degrades into
//!   fast rejections instead of unbounded memory growth.  Clients re-send
//!   rejected queries (the load generator does this automatically), and
//!   answers are unaffected — re-running a query is always bit-identical.
//! * **Worker pool** — `workers` threads, each owning one warm `Session`
//!   over the shared engine, so concurrent clients warm each other's
//!   backward columns and Y-bound tables exactly as in-process sessions
//!   do.  Workers pop **micro-batches** (up to `batch` requests per
//!   dequeue), amortising queue synchronisation across several answers
//!   from one warm session.
//! * **Per-connection writer** — responses arrive from whichever worker
//!   answered, tagged with the request's per-connection sequence number,
//!   and are written back **in request order** (a small reorder buffer),
//!   so a pipelining client matches responses to requests positionally.
//! * **Graceful shutdown** — a shutdown flag (raised by the `SHUTDOWN`
//!   verb or [`Server::shutdown`]) stops the acceptor, lets workers drain
//!   the queue, flushes every connection and joins all threads.
//!
//! ## Protocol
//!
//! One request per line; every request gets exactly one response line
//! (blank lines and `#` comments are ignored).  Requests:
//!
//! ```text
//! PING                     → OK PONG
//! STATS                    → OK STATS served=… p50_ms=… (see StatsSnapshot::wire_line)
//! SHUTDOWN                 → OK BYE (then graceful drain)
//! EXPLAIN <query line>     → OK PLAN <plan>     (planned, not executed)
//! <query line>             → OK TWOWAY …  |  OK NWAY …   (see wire)
//! ```
//!
//! where `<query line>` is the shared `dht_core::queryline` language
//! (`LEFT RIGHT [k] [ALGORITHM]` / `nway SHAPE S1 … [k] [ALGO] [AGG]`).
//! Error responses are typed: `ERR BUSY …` (queue full), `ERR PARSE …`
//! (malformed line, with the offending token), `ERR EXEC …` (execution
//! failure).  A request line that is not valid UTF-8 answers `ERR PARSE`;
//! one still unterminated past 64 KiB gets one `ERR PARSE` and the
//! connection is dropped.  Scores travel as exact `f64` bit patterns ([`wire`]), so
//! responses are **bit-identical** to in-process [`dht_engine::Session`]
//! answers at any worker count, cache mode and rejection schedule — the
//! repository's loopback parity proptest pins this.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod loadgen;
pub mod metrics;
pub mod wire;

mod queue;

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dht_core::queryline::{self, ParseOptions};
use dht_core::QuerySpec;
use dht_engine::Engine;
use dht_graph::NodeSet;

pub use metrics::StatsSnapshot;

use metrics::Metrics;
use queue::RequestQueue;

/// Construction-time knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// TCP port to bind on `127.0.0.1` (`0` picks an ephemeral port; read
    /// it back with [`Server::local_addr`]).
    pub port: u16,
    /// Worker sessions answering queries (≥ 1).
    pub workers: usize,
    /// Bounded request-queue capacity; pushes beyond it are rejected with
    /// `ERR BUSY` (≥ 1).
    pub queue_capacity: usize,
    /// Maximum requests a worker dequeues per batch (≥ 1).
    pub batch: usize,
}

impl Default for ServerConfig {
    /// Ephemeral port, 2 workers, a 128-deep queue, micro-batches of 8.
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 2,
            queue_capacity: 128,
            batch: 8,
        }
    }
}

impl ServerConfig {
    /// Returns a copy with a different port.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Returns a copy with a different worker count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns a copy with a different queue capacity (minimum 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Returns a copy with a different micro-batch bound (minimum 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

/// How often blocked loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Longest request line (terminator excluded) the connection reader will
/// buffer.  A line still unterminated past this is a protocol violation
/// (or a runaway sender): the reader answers with a typed `ERR PARSE` and
/// drops the connection rather than growing the buffer without bound.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// The one response an oversized line gets before its connection closes.
fn oversized_line_error() -> String {
    format!("ERR PARSE line exceeds {MAX_LINE_BYTES} bytes")
}

/// One queued query request.
struct Request {
    /// Per-connection sequence number (response-ordering key).
    seq: u64,
    spec: QuerySpec,
    /// `EXPLAIN` requests are planned, not executed.
    explain: bool,
    /// When the reader received the line (latency includes queue wait).
    received: Instant,
    reply: mpsc::Sender<(u64, String)>,
}

/// State shared by the acceptor, readers, workers and [`Server`] handle.
struct ServerShared {
    engine: Engine,
    sets: Vec<NodeSet>,
    parse: ParseOptions,
    config: ServerConfig,
    queue: RequestQueue<Request>,
    metrics: Metrics,
    shutdown: AtomicBool,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Closing the queue (flag inside the queue lock) makes admission
        // race-free against worker exit: a request either got in before
        // the close — and a worker will drain it — or its push refuses.
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.metrics
            .snapshot(self.queue.depth(), self.queue.capacity())
    }
}

/// A running query server bound to a loopback address.
///
/// The handle is the shutdown path: [`Server::shutdown`] (or a client's
/// `SHUTDOWN` verb followed by [`Server::join`]) drains the queue, joins
/// every thread and returns the final [`StatsSnapshot`].
///
/// ```no_run
/// use dht_engine::Engine;
/// use dht_graph::{GraphBuilder, NodeId, NodeSet};
/// use dht_server::{Server, ServerConfig};
///
/// let mut b = GraphBuilder::with_nodes(4);
/// b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
/// b.add_undirected_edge(NodeId(1), NodeId(2), 1.0).unwrap();
/// b.add_undirected_edge(NodeId(2), NodeId(3), 1.0).unwrap();
/// let engine = Engine::new(b.build().unwrap());
/// let sets = vec![
///     NodeSet::new("P", [NodeId(0), NodeId(1)]),
///     NodeSet::new("Q", [NodeId(2), NodeId(3)]),
/// ];
/// let server = Server::start(engine, sets, Default::default(), ServerConfig::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// let report = server.shutdown();
/// assert_eq!(report.served, 0);
/// ```
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the acceptor and worker threads.
    /// `sets` are the node sets query lines may name; `parse` carries the
    /// stream defaults (`k`, default algorithm, `m`) — use
    /// `ParseOptions::default()` for the `dht querystream` defaults.
    ///
    /// # Errors
    /// Fails when the port cannot be bound.
    pub fn start(
        engine: Engine,
        sets: Vec<NodeSet>,
        parse: ParseOptions,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            batch: config.batch.max(1),
            ..config
        };
        let shared = Arc::new(ServerShared {
            engine,
            sets,
            parse,
            config,
            queue: RequestQueue::new(config.queue_capacity),
            metrics: Metrics::new(config.workers),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound loopback address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time view of the serving counters (what `STATS` reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Whether shutdown has been requested (by [`Server::shutdown`] or a
    /// client's `SHUTDOWN` verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Raises the shutdown flag without waiting (SIGTERM-equivalent); pair
    /// with [`Server::join`].
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until shutdown is requested — by [`Server::begin_shutdown`]
    /// or a client's `SHUTDOWN` verb — then drains the queue, joins every
    /// thread and returns the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        while !self.shared.shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread panicked");
        }
        // Workers drain the queue (pop_batch returns empty only once the
        // shutdown flag is up AND the queue is empty), answering every
        // admitted request before exiting.
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        let connections = std::mem::take(
            &mut *self
                .shared
                .connections
                .lock()
                .expect("connection registry poisoned"),
        );
        for connection in connections {
            connection.join().expect("connection thread panicked");
        }
        self.shared.stats()
    }

    /// Graceful shutdown: raise the flag, drain, join, report.
    pub fn shutdown(self) -> StatsSnapshot {
        self.shared.begin_shutdown();
        self.join()
    }
}

/// Accepts connections until shutdown, spawning one reader per client.
fn accept_loop(shared: &Arc<ServerShared>, listener: TcpListener) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared_conn = shared.clone();
                let handle = std::thread::spawn(move || handle_connection(&shared_conn, stream));
                let mut connections = shared
                    .connections
                    .lock()
                    .expect("connection registry poisoned");
                // Sweep handles of connections that already hung up, so a
                // long-lived server under connection churn doesn't grow
                // the registry without bound (dropping a finished handle
                // just detaches the already-exited thread).
                connections.retain(|connection| !connection.is_finished());
                connections.push(handle);
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
}

/// Writes responses back to one client **in request order**: workers finish
/// out of order, so responses park in a reorder buffer keyed by sequence
/// number until their turn comes.  Exits when every sender (reader +
/// in-flight requests) has dropped.
fn writer_loop(stream: TcpStream, responses: &mpsc::Receiver<(u64, String)>) {
    let mut writer = BufWriter::new(stream);
    let mut next_seq = 0u64;
    let mut parked: BTreeMap<u64, String> = BTreeMap::new();
    while let Ok((seq, line)) = responses.recv() {
        parked.insert(seq, line);
        while let Some(line) = parked.remove(&next_seq) {
            if writeln!(writer, "{line}").is_err() {
                return; // client gone; drain silently
            }
            next_seq += 1;
        }
        if writer.flush().is_err() {
            return;
        }
    }
}

/// Reads one client's request lines, answering control verbs inline and
/// queueing query lines for the worker pool.
fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply, responses) = mpsc::channel::<(u64, String)>();
    let writer = std::thread::spawn(move || writer_loop(write_half, &responses));
    let mut reader = BufReader::new(stream);
    let mut raw = Vec::new();
    let mut seq = 0u64;
    let mut overflowed = false;
    loop {
        // A timed-out read has already appended the bytes it consumed to
        // `raw`, so the buffer is cleared only after a completed line is
        // dispatched — never on the timeout path, or a sender delivering
        // a line across a >POLL_INTERVAL gap would have the line's prefix
        // silently dropped.  (`read_line` would not do: its UTF-8 guard
        // rolls back every byte of a call that errors mid-character, so a
        // timeout splitting a multi-byte character loses consumed bytes;
        // raw bytes have no such rollback.)  The `take` bounds how much
        // one line can buffer even against a sender that drips newline-
        // less bytes fast enough to never hit the read timeout: once the
        // cap is exceeded the read returns and the length check below
        // answers once and drops the connection.
        let budget = (MAX_LINE_BYTES + 1 - raw.len()) as u64;
        let at_eof = match (&mut reader).take(budget).read_until(b'\n', &mut raw) {
            Ok(0) if raw.is_empty() => break, // client closed
            Ok(0) => true,                    // EOF right after a partial line
            Ok(_) => !raw.ends_with(b"\n"),   // EOF (or cap hit, checked below)
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        // The cap is on line *content* — the terminator doesn't count, so
        // a newline-terminated line of exactly MAX_LINE_BYTES is served.
        let line_len = raw.len() - usize::from(raw.ends_with(b"\n"));
        if line_len > MAX_LINE_BYTES {
            let _ = reply.send((seq, oversized_line_error()));
            overflowed = true;
            break;
        }
        // Comments / blank lines get no response (and no sequence
        // number); every other line — including one that is not valid
        // UTF-8 — consumes one.
        match std::str::from_utf8(&raw) {
            Ok(text) => {
                if let Some(line) = wire::strip_line(text) {
                    let this_seq = seq;
                    seq += 1;
                    let response = dispatch_line(shared, line, this_seq, &reply);
                    if let Some(line) = response {
                        if reply.send((this_seq, line)).is_err() {
                            break;
                        }
                    }
                }
            }
            Err(_) => {
                let this_seq = seq;
                seq += 1;
                let error = "ERR PARSE request line is not valid UTF-8".to_string();
                if reply.send((this_seq, error)).is_err() {
                    break;
                }
            }
        }
        raw.clear();
        if at_eof {
            break;
        }
    }
    drop(reply);
    writer.join().expect("connection writer panicked");
    if overflowed {
        discard_pending_input(&mut reader);
    }
}

/// Best-effort grace period after an oversized-line error: the client may
/// still be mid-flood, and closing a socket with unread bytes in the
/// kernel receive buffer sends RST — which can discard the error line
/// before the client reads it.  Briefly discard pending input (bounded by
/// a deadline) so the close is clean in the common case.
fn discard_pending_input(reader: &mut BufReader<TcpStream>) {
    let deadline = Instant::now() + 8 * POLL_INTERVAL;
    let mut scratch = [0u8; 4096];
    while Instant::now() < deadline {
        match reader.get_mut().read(&mut scratch) {
            Ok(0) => break, // client closed its sending half
            Ok(_) => {}
            // Receive buffer drained (read timeout): safe to close now.
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(_) => break,
        }
    }
}

/// Handles one request line: control verbs answer inline (returning the
/// response), query lines enqueue (returning `None` unless rejected or
/// malformed).
fn dispatch_line(
    shared: &Arc<ServerShared>,
    line: &str,
    seq: u64,
    reply: &mpsc::Sender<(u64, String)>,
) -> Option<String> {
    let received = Instant::now();
    let verb = line.split_whitespace().next().unwrap_or("");
    if verb.eq_ignore_ascii_case("ping") {
        return Some("OK PONG".to_string());
    }
    if verb.eq_ignore_ascii_case("stats") {
        return Some(format!("OK {}", shared.stats().wire_line()));
    }
    if verb.eq_ignore_ascii_case("shutdown") {
        shared.begin_shutdown();
        return Some("OK BYE".to_string());
    }
    let (explain, query_line) = match verb.eq_ignore_ascii_case("explain") {
        true => (true, line[verb.len()..].trim_start()),
        false => (false, line),
    };
    // Line numbers over the wire are the connection's 1-based request
    // ordinal, so `ERR PARSE query line 3: …` points at the third request.
    let line_no = seq as usize + 1;
    let spec = match queryline::parse_query_line(query_line, &shared.sets, &shared.parse, line_no) {
        Ok(Some(parsed)) => parsed.spec,
        Ok(None) => {
            return Some(format!(
                "ERR PARSE query line {line_no}: EXPLAIN needs a query line"
            ))
        }
        Err(error) => return Some(format!("ERR PARSE {error}")),
    };
    let request = Request {
        seq,
        spec,
        explain,
        received,
        reply: reply.clone(),
    };
    match shared.queue.try_push(request) {
        Ok(()) => None, // a worker will reply
        Err(queue::PushRefused::Full(_)) => {
            shared.metrics.record_rejected();
            Some(format!(
                "ERR BUSY queue full ({} queued, capacity {}); re-send later",
                shared.queue.depth(),
                shared.queue.capacity()
            ))
        }
        // The queue closed for shutdown: no worker will ever pop again,
        // so the request must be refused here instead of admitted and
        // orphaned (which would hang this connection's writer forever).
        Err(queue::PushRefused::Closed(_)) => {
            shared.metrics.record_rejected();
            Some("ERR BUSY server shutting down; connection closing".to_string())
        }
    }
}

/// One worker: a warm session answering micro-batches until the queue
/// drains after shutdown.
fn worker_loop(shared: &Arc<ServerShared>, index: usize) {
    let mut session = shared.engine.session();
    loop {
        let batch = shared.queue.pop_batch(shared.config.batch);
        if batch.is_empty() {
            return; // queue closed + drained
        }
        for request in batch {
            let response = if request.explain {
                match session.explain(&request.spec) {
                    Ok(plan) => format!("OK PLAN {plan}"),
                    Err(error) => format!("ERR EXEC {error}"),
                }
            } else {
                match session.run(&request.spec) {
                    Ok(output) => format!("OK {}", wire::encode_output(&output)),
                    Err(error) => format!("ERR EXEC {error}"),
                }
            };
            shared.metrics.record_served(request.received.elapsed());
            // The connection may be gone; in-flight answers are best-effort.
            let _ = request.reply.send((request.seq, response));
        }
        shared
            .metrics
            .store_worker_caches(index, session.cache_stats(), session.y_table_stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::{GraphBuilder, NodeId};

    fn fixture() -> (Engine, Vec<NodeSet>) {
        let mut b = GraphBuilder::with_nodes(10);
        for (u, v) in [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (5, 9),
            (4, 5),
        ] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let engine = Engine::new(b.build().unwrap());
        let sets = vec![
            NodeSet::new("P", (0..5).map(NodeId)),
            NodeSet::new("Q", (5..10).map(NodeId)),
        ];
        (engine, sets)
    }

    fn start_fixture(config: ServerConfig) -> Server {
        let (engine, sets) = fixture();
        Server::start(engine, sets, ParseOptions::default(), config).expect("bind loopback")
    }

    /// Sends `lines` on one connection and reads one response per line.
    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").expect("send");
            writer.flush().expect("flush");
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            responses.push(response.trim_end().to_string());
        }
        responses
    }

    #[test]
    fn control_verbs_answer_inline() {
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        let responses = roundtrip(addr, &["PING", "ping", "STATS"]);
        assert_eq!(responses[0], "OK PONG");
        assert_eq!(responses[1], "OK PONG", "verbs are case-insensitive");
        assert!(
            responses[2].starts_with("OK STATS served=0"),
            "{responses:?}"
        );
        assert!(responses[2].contains("workers=2"), "{responses:?}");
        server.shutdown();
    }

    #[test]
    fn queries_answer_bit_identically_to_in_process_sessions() {
        let server = start_fixture(ServerConfig::default().with_workers(3));
        let addr = server.local_addr();
        let lines = ["P Q 3", "Q P 2 b-bj", "P Q 3", "nway chain P Q 2 ap min"];
        let responses = roundtrip(addr, &lines);

        let (engine, sets) = fixture();
        let options = ParseOptions::default();
        for (index, (line, response)) in lines.iter().zip(&responses).enumerate() {
            let spec = queryline::parse_query_line(line, &sets, &options, index + 1)
                .unwrap()
                .unwrap()
                .spec;
            let expected = engine.session().run(&spec).unwrap();
            assert_eq!(
                response,
                &format!("OK {}", wire::encode_output(&expected)),
                "request {index}"
            );
        }
        // Pipelined responses keep request order on a second connection.
        assert_eq!(roundtrip(addr, &lines), responses);
        let report = server.shutdown();
        assert_eq!(report.served, 2 * lines.len() as u64);
        assert_eq!(report.rejected, 0);
        assert!(report.column_hits > 0, "repeats must hit the shared cache");
    }

    #[test]
    fn slow_senders_keep_partial_lines_across_read_timeouts() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // One request delivered in chunks with pauses well past the
        // reader's poll interval: the prefix consumed by a timed-out read
        // must survive until the newline arrives.  The second request
        // splits a multi-byte UTF-8 character ('é' in a trailing comment)
        // across the stall, which `read_line` would roll back entirely.
        let chunked: [&[&[u8]]; 2] = [&[b"P ", b"Q ", b"3\n"], &[b"P Q 3 # caf\xC3", b"\xA9\n"]];
        for chunks in chunked {
            for chunk in chunks {
                writer.write_all(chunk).expect("send chunk");
                writer.flush().expect("flush");
                std::thread::sleep(3 * POLL_INTERVAL);
            }
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            assert!(response.starts_with("OK TWOWAY"), "{response:?}");
        }
        // A final request with no trailing newline is still served at EOF.
        writer.write_all(b"PING").expect("send final");
        writer.flush().expect("flush");
        std::thread::sleep(3 * POLL_INTERVAL);
        writer
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut last = String::new();
        reader.read_line(&mut last).expect("receive final");
        assert_eq!(last.trim_end(), "OK PONG");
        server.shutdown();
    }

    #[test]
    fn oversized_unterminated_lines_get_one_error_then_disconnect() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // The cap is on content, terminator excluded: a terminated line of
        // exactly MAX_LINE_BYTES (padded with stripped whitespace) serves.
        let mut boundary = b"PING".to_vec();
        boundary.resize(MAX_LINE_BYTES, b' ');
        boundary.push(b'\n');
        writer.write_all(&boundary).expect("send boundary line");
        writer.flush().expect("flush");
        let mut pong = String::new();
        reader.read_line(&mut pong).expect("receive pong");
        assert_eq!(pong.trim_end(), "OK PONG");
        // A newline-less flood past MAX_LINE_BYTES must not buffer
        // forever: the server answers once and closes the connection.
        writer
            .write_all(&vec![b'a'; MAX_LINE_BYTES + 1024])
            .expect("send flood");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        assert_eq!(response.trim_end(), oversized_line_error());
        let closed = reader.read_line(&mut response).expect("read at EOF");
        assert_eq!(closed, 0, "connection must be dropped after the error");
        server.shutdown();
    }

    #[test]
    fn newline_less_drip_feed_is_capped_not_buffered_forever() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // Chunks arriving faster than the read timeout keep `read` from
        // ever timing out; the `take` budget must still cap the line.
        let chunk = vec![b'a'; 16 * 1024];
        let error = std::thread::spawn(move || {
            let mut response = String::new();
            reader.read_line(&mut response).expect("receive");
            response
        });
        for _ in 0..8 {
            if writer.write_all(&chunk).is_err() {
                break; // server already dropped us — that's the point
            }
            let _ = writer.flush();
            std::thread::sleep(POLL_INTERVAL / 4);
        }
        let response = error.join().expect("reader thread");
        assert_eq!(response.trim_end(), oversized_line_error());
        server.shutdown();
    }

    #[test]
    fn invalid_utf8_lines_get_a_typed_parse_error() {
        let server = start_fixture(ServerConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // A stray invalid byte (not a timeout-split multi-byte character)
        // answers a typed error and the connection keeps serving.
        writer.write_all(b"P\xFF Q 3\nPING\n").expect("send");
        writer.flush().expect("flush");
        let mut first = String::new();
        reader.read_line(&mut first).expect("receive error");
        assert_eq!(
            first.trim_end(),
            "ERR PARSE request line is not valid UTF-8"
        );
        let mut second = String::new();
        reader.read_line(&mut second).expect("receive pong");
        assert_eq!(second.trim_end(), "OK PONG");
        server.shutdown();
    }

    #[test]
    fn explain_returns_a_plan_without_executing() {
        let server = start_fixture(ServerConfig::default());
        let responses = roundtrip(
            server.local_addr(),
            &["EXPLAIN P Q 3 auto", "EXPLAIN", "explain nway chain P Q 2"],
        );
        assert!(responses[0].starts_with("OK PLAN choose "), "{responses:?}");
        assert!(responses[0].contains("auto"), "{responses:?}");
        assert!(
            responses[1].starts_with("ERR PARSE"),
            "bare EXPLAIN is malformed: {responses:?}"
        );
        assert!(responses[2].starts_with("OK PLAN "), "{responses:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_typed_parse_errors_with_request_ordinals() {
        let server = start_fixture(ServerConfig::default());
        let responses = roundtrip(
            server.local_addr(),
            &["P Z 3", "P Q 0", "P Q 3 b-idj-z", "P Q 3   # still fine"],
        );
        assert!(
            responses[0].starts_with("ERR PARSE query line 1:"),
            "{responses:?}"
        );
        assert!(
            responses[0].contains("unknown node set 'Z'"),
            "{responses:?}"
        );
        assert!(responses[1].contains("query line 2"), "{responses:?}");
        assert!(responses[2].contains("'b-idj-z'"), "{responses:?}");
        assert!(
            responses[3].starts_with("OK TWOWAY"),
            "a parse error must not poison the connection: {responses:?}"
        );
        server.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy_and_resends_succeed() {
        // Worker count 1, queue capacity 1, batch 1: a pipelined burst must
        // overflow and the rejected lines re-send cleanly.
        let server = start_fixture(
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_batch(1),
        );
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let burst = 16usize;
        for _ in 0..burst {
            writeln!(writer, "P Q 3").unwrap();
        }
        writer.flush().unwrap();
        let mut ok = Vec::new();
        let mut busy = 0usize;
        for _ in 0..burst {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end().to_string();
            if response.starts_with("ERR BUSY") {
                busy += 1;
            } else {
                assert!(response.starts_with("OK TWOWAY"), "{response}");
                ok.push(response);
            }
        }
        assert!(
            busy > 0,
            "a 16-deep pipelined burst must overflow capacity 1"
        );
        // Re-send every rejected query: all succeed with identical answers.
        for _ in 0..busy {
            loop {
                writeln!(writer, "P Q 3").unwrap();
                writer.flush().unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                let response = response.trim_end().to_string();
                if response.starts_with("ERR BUSY") {
                    continue;
                }
                assert_eq!(response, ok[0], "re-sent answers are bit-identical");
                break;
            }
        }
        drop(writer);
        let report = server.shutdown();
        assert_eq!(report.served + report.rejected, report.served + busy as u64);
        assert_eq!(report.served as usize, burst, "every unique query answered");
    }

    #[test]
    fn late_queries_racing_shutdown_are_answered_or_refused_never_orphaned() {
        // Regression: queries pipelined right behind SHUTDOWN must either
        // be admitted before the queue closes (a worker then drains them)
        // or be refused with a typed line — never admitted-and-orphaned,
        // which would hang the connection writer and Server::join forever.
        let server = start_fixture(ServerConfig::default().with_workers(1));
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "SHUTDOWN").unwrap();
        let late = 8usize;
        for _ in 0..late {
            writeln!(writer, "P Q 3").unwrap();
        }
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert_eq!(response.trim_end(), "OK BYE");
        for index in 0..late {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            let response = response.trim_end();
            assert!(
                response.starts_with("OK TWOWAY") || response.starts_with("ERR BUSY"),
                "late query {index} got: {response}"
            );
        }
        // The join must complete (this is where the pre-fix server hung).
        let report = server.join();
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn shutdown_verb_drains_and_exits_cleanly() {
        let server = start_fixture(ServerConfig::default());
        let addr = server.local_addr();
        let responses = roundtrip(addr, &["P Q 2", "SHUTDOWN"]);
        assert!(responses[0].starts_with("OK TWOWAY"), "{responses:?}");
        assert_eq!(responses[1], "OK BYE");
        assert!(server.is_shutting_down());
        let report = server.join();
        assert_eq!(report.served, 1);
        assert_eq!(report.queue_depth, 0, "queue drained before exit");
        // The listener is gone after shutdown.
        assert!(TcpStream::connect(addr).is_err());
    }
}

//! The bounded request queue between connection readers and session
//! workers — the server's backpressure point.
//!
//! Readers `try_push` and **never block**: when the queue is at capacity
//! the push fails and the reader answers the client with a typed
//! `ERR BUSY` line immediately, instead of letting an overload grow an
//! unbounded backlog (admission control).  Workers `pop_batch` up to a
//! micro-batch of requests at a time, so one dequeue under the lock feeds
//! several answers from one warm session.
//!
//! Shutdown is a queue-level `closed` flag kept **inside the mutex**, so
//! admission and worker exit cannot race: a request either gets in before
//! the queue closes (and a worker is then guaranteed to drain it) or its
//! push fails — there is no window where a request is admitted after the
//! last worker decided to exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a [`RequestQueue::try_push`] was refused; carries the request back.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushRefused<T> {
    /// The queue is at capacity — the caller should answer `ERR BUSY` and
    /// let the client re-send.
    Full(T),
    /// The queue has been closed for shutdown — no worker will ever pop
    /// again.
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with non-blocking producers and batch-popping
/// consumers that drain fully before observing close.
#[derive(Debug)]
pub(crate) struct RequestQueue<T> {
    inner: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> RequestQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        RequestQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests currently queued.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Enqueues without blocking; refuses (returning the request) when the
    /// queue is full or already closed for shutdown.
    pub(crate) fn try_push(&self, item: T) -> Result<(), PushRefused<T>> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushRefused::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushRefused::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one request is available, then drains up to
    /// `max` of them.  Returns an **empty** batch only when the queue has
    /// been closed **and** fully drained — the worker's signal to exit
    /// after finishing in-flight work (graceful drain).  Because `closed`
    /// lives under the same lock as the items, nothing can be admitted
    /// after the empty-and-closed observation.
    pub(crate) fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max.max(1));
                let batch: Vec<T> = state.items.drain(..take).collect();
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            // Bounded wait so a close raised with a racing notify is still
            // observed promptly.
            let (guard, _) = self
                .available
                .wait_timeout(state, Duration::from_millis(25))
                .expect("queue lock poisoned");
            state = guard;
        }
    }

    /// Closes the queue for shutdown: future pushes refuse with
    /// [`PushRefused::Closed`], and consumers exit once the remaining
    /// items drain.  Wakes every blocked consumer.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pushes_fail_at_capacity_and_batches_drain_in_order() {
        let queue = RequestQueue::new(3);
        assert_eq!(queue.capacity(), 3);
        for i in 0..3 {
            assert!(queue.try_push(i).is_ok());
        }
        assert_eq!(queue.try_push(99), Err(PushRefused::Full(99)));
        assert_eq!(queue.depth(), 3);
        assert_eq!(queue.pop_batch(2), vec![0, 1], "FIFO micro-batch");
        assert_eq!(queue.pop_batch(8), vec![2]);
        assert!(queue.try_push(4).is_ok(), "space freed");
    }

    #[test]
    fn close_drains_before_releasing_workers_and_refuses_late_pushes() {
        let queue = RequestQueue::new(8);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.close();
        // A push after close must fail even though there is capacity —
        // no worker is guaranteed to pop it (the shutdown-race fix).
        assert_eq!(queue.try_push(3), Err(PushRefused::Closed(3)));
        // In-flight work still comes out...
        assert_eq!(queue.pop_batch(1), vec![1]);
        assert_eq!(queue.pop_batch(4), vec![2]);
        // ...and only the empty queue signals exit.
        assert!(queue.pop_batch(4).is_empty());
    }

    #[test]
    fn blocked_consumers_observe_late_close() {
        let queue: Arc<RequestQueue<u32>> = Arc::new(RequestQueue::new(4));
        let handle = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop_batch(4))
        };
        std::thread::sleep(Duration::from_millis(40));
        queue.close();
        assert!(handle.join().unwrap().is_empty());
    }
}

//! The bounded **two-level priority queue** between connection readers and
//! session workers — the server's backpressure and scheduling point.
//!
//! Requests are admitted into one of two classes ([`Priority`]):
//! *interactive* (the default) and *batch* (`PRIO batch` lines).  Each
//! class has its **own capacity**, so a batch flood can exhaust only the
//! batch class — interactive admission is untouched, which is what keeps
//! well-behaved clients isolated from hostile floods.  Workers drain by a
//! **weighted priority pick**: interactive requests go first, but after
//! `batch_weight` consecutive interactive pops while batch work is
//! waiting, one batch request is served before the streak restarts —
//! sustained interactive load can no longer starve batch forever (strict
//! priority did).  The pick is deterministic, so scheduling is
//! reproducible in tests.
//!
//! Readers `try_push` and **never block**: when the request's class is at
//! capacity the push fails and the reader answers the client with a typed
//! `ERR BUSY` line immediately, instead of letting an overload grow an
//! unbounded backlog (admission control).  Workers `pop_batch` up to a
//! micro-batch of requests at a time, so one dequeue under the lock feeds
//! several answers from one warm session.
//!
//! Shutdown is a queue-level `closed` flag kept **inside the mutex**, so
//! admission and worker exit cannot race: a request either gets in before
//! the queue closes (and a worker is then guaranteed to drain it) or its
//! push fails — there is no window where a request is admitted after the
//! last worker decided to exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use dht_core::queryline::Priority;

/// Why a [`RequestQueue::try_push`] was refused; carries the request back.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushRefused<T> {
    /// The request's class is at capacity — the caller should answer
    /// `ERR BUSY` and let the client re-send.
    Full(T),
    /// The queue has been closed for shutdown — no worker will ever pop
    /// again.
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    /// Consecutive interactive pops while batch work was waiting; at
    /// `batch_weight` the next pick is a batch request.  Lives under the
    /// lock so the weighted schedule is exact across workers.
    interactive_streak: u32,
    closed: bool,
}

impl<T> QueueState<T> {
    fn class(&mut self, class: Priority) -> &mut VecDeque<T> {
        match class {
            Priority::Interactive => &mut self.interactive,
            Priority::Batch => &mut self.batch,
        }
    }
}

/// A bounded two-class MPMC queue with non-blocking producers and
/// weighted-priority batch-popping consumers that drain fully before
/// observing close.
#[derive(Debug)]
pub(crate) struct RequestQueue<T> {
    inner: Mutex<QueueState<T>>,
    available: Condvar,
    interactive_capacity: usize,
    batch_capacity: usize,
    batch_weight: u32,
}

/// Default interactive pops served per waiting batch pop (7:1).
pub(crate) const DEFAULT_BATCH_WEIGHT: u32 = 7;

impl<T> RequestQueue<T> {
    pub(crate) fn new(interactive_capacity: usize, batch_capacity: usize) -> Self {
        RequestQueue {
            inner: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                interactive_streak: 0,
                closed: false,
            }),
            available: Condvar::new(),
            interactive_capacity: interactive_capacity.max(1),
            batch_capacity: batch_capacity.max(1),
            batch_weight: DEFAULT_BATCH_WEIGHT,
        }
    }

    /// Sets the weighted-pick ratio: `weight` interactive pops are served
    /// per batch pop while both classes are non-empty (clamped to ≥ 1).
    pub(crate) fn with_batch_weight(mut self, weight: u32) -> Self {
        self.batch_weight = weight.max(1);
        self
    }

    /// The configured capacity of one class.
    pub(crate) fn capacity(&self, class: Priority) -> usize {
        match class {
            Priority::Interactive => self.interactive_capacity,
            Priority::Batch => self.batch_capacity,
        }
    }

    /// Number of requests currently queued in one class.
    pub(crate) fn depth(&self, class: Priority) -> usize {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        state.class(class).len()
    }

    /// Queued requests per class as `(interactive, batch)`, read under one
    /// lock so the pair is a consistent point-in-time view (the `STATS`
    /// snapshot reports both alongside their sum).
    pub(crate) fn depths(&self) -> (usize, usize) {
        let state = self.inner.lock().expect("queue lock poisoned");
        (state.interactive.len(), state.batch.len())
    }

    /// Enqueues into `class` without blocking; refuses (returning the
    /// request) when that class is at capacity or the queue is already
    /// closed for shutdown.  A full batch class never affects interactive
    /// admission, and vice versa.
    pub(crate) fn try_push(&self, item: T, class: Priority) -> Result<(), PushRefused<T>> {
        let capacity = self.capacity(class);
        let mut state = self.inner.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushRefused::Closed(item));
        }
        let items = state.class(class);
        if items.len() >= capacity {
            return Err(PushRefused::Full(item));
        }
        items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one request is available, then drains up to
    /// `max` of them by the **weighted priority pick**: interactive
    /// requests are served first (FIFO within the class), but once
    /// `batch_weight` consecutive interactive requests have been popped
    /// while batch work was waiting, one batch request is served and the
    /// streak restarts — so batch throughput is pinned at ≥ 1 per
    /// `batch_weight` interactive requests under sustained contention
    /// instead of starving.  The streak survives across micro-batches and
    /// workers (it lives under the queue lock), and resets whenever the
    /// batch class is empty, so uncontended interactive traffic never
    /// banks credit against future batch arrivals.  Returns an **empty**
    /// batch only when the queue has been closed **and** fully drained —
    /// the worker's signal to exit after finishing in-flight work
    /// (graceful drain).  Because `closed` lives under the same lock as
    /// the items, nothing can be admitted after the empty-and-closed
    /// observation.
    pub(crate) fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        loop {
            if !state.interactive.is_empty() || !state.batch.is_empty() {
                let max = max.max(1);
                let mut batch = Vec::with_capacity(max.min(8));
                while batch.len() < max {
                    let take_batch = !state.batch.is_empty()
                        && (state.interactive.is_empty()
                            || state.interactive_streak >= self.batch_weight);
                    if take_batch {
                        let item = state.batch.pop_front().expect("batch is non-empty");
                        state.interactive_streak = 0;
                        batch.push(item);
                    } else if let Some(item) = state.interactive.pop_front() {
                        if state.batch.is_empty() {
                            state.interactive_streak = 0;
                        } else {
                            state.interactive_streak += 1;
                        }
                        batch.push(item);
                    } else {
                        break;
                    }
                }
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            // Bounded wait so a close raised with a racing notify is still
            // observed promptly.
            let (guard, _) = self
                .available
                .wait_timeout(state, Duration::from_millis(25))
                .expect("queue lock poisoned");
            state = guard;
        }
    }

    /// Closes the queue for shutdown: future pushes refuse with
    /// [`PushRefused::Closed`], and consumers exit once the remaining
    /// items drain.  Wakes every blocked consumer.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const I: Priority = Priority::Interactive;
    const B: Priority = Priority::Batch;

    #[test]
    fn pushes_fail_at_capacity_and_batches_drain_in_order() {
        let queue = RequestQueue::new(3, 3);
        assert_eq!(queue.capacity(I), 3);
        for i in 0..3 {
            assert!(queue.try_push(i, I).is_ok());
        }
        assert_eq!(queue.try_push(99, I), Err(PushRefused::Full(99)));
        assert_eq!(queue.depth(I), 3);
        assert_eq!(queue.pop_batch(2), vec![0, 1], "FIFO micro-batch");
        assert_eq!(queue.pop_batch(8), vec![2]);
        assert!(queue.try_push(4, I).is_ok(), "space freed");
    }

    #[test]
    fn interactive_always_pops_before_batch() {
        let queue = RequestQueue::new(8, 8);
        queue.try_push(10, B).unwrap();
        queue.try_push(1, I).unwrap();
        queue.try_push(11, B).unwrap();
        queue.try_push(2, I).unwrap();
        // Below the batch weight the pick degenerates to strict priority:
        // both interactive items first (in FIFO order), then batch items
        // (in FIFO order).
        assert_eq!(queue.pop_batch(3), vec![1, 2, 10]);
        queue.try_push(3, I).unwrap();
        // A later interactive arrival still beats an older batch item.
        assert_eq!(queue.pop_batch(8), vec![3, 11]);
    }

    #[test]
    fn weighted_pick_prevents_batch_starvation() {
        // Weight 3: every fourth pop under contention is a batch request.
        let queue = RequestQueue::new(16, 16).with_batch_weight(3);
        for i in 0..10 {
            queue.try_push(i, I).unwrap();
        }
        queue.try_push(100, B).unwrap();
        queue.try_push(101, B).unwrap();
        assert_eq!(
            queue.pop_batch(12),
            vec![0, 1, 2, 100, 3, 4, 5, 101, 6, 7, 8, 9],
            "deterministic 3:1 interleave while both classes are non-empty"
        );

        // The streak is shared across micro-batches: two pops of 2 then 2
        // continue the same interleave instead of restarting it.
        for i in 0..4 {
            queue.try_push(i, I).unwrap();
        }
        queue.try_push(200, B).unwrap();
        assert_eq!(queue.pop_batch(2), vec![0, 1]);
        assert_eq!(queue.pop_batch(2), vec![2, 200]);
        assert_eq!(queue.pop_batch(2), vec![3]);

        // Uncontended interactive pops bank no credit: draining 5
        // interactive requests with an empty batch class leaves the next
        // contended sequence starting a fresh streak.
        for i in 0..5 {
            queue.try_push(i, I).unwrap();
        }
        assert_eq!(queue.pop_batch(8), vec![0, 1, 2, 3, 4]);
        queue.try_push(7, I).unwrap();
        queue.try_push(300, B).unwrap();
        assert_eq!(
            queue.pop_batch(8),
            vec![7, 300],
            "interactive still goes first after an uncontended drain"
        );

        // Weight is clamped to ≥ 1 (1:1 alternation, never batch-first).
        let queue = RequestQueue::new(8, 8).with_batch_weight(0);
        queue.try_push(1, I).unwrap();
        queue.try_push(2, I).unwrap();
        queue.try_push(400, B).unwrap();
        queue.try_push(401, B).unwrap();
        assert_eq!(queue.pop_batch(8), vec![1, 400, 2, 401]);
    }

    #[test]
    fn per_class_capacity_isolates_admission() {
        let queue = RequestQueue::new(2, 1);
        // Fill the batch class to its (smaller) capacity...
        queue.try_push(100, B).unwrap();
        assert_eq!(queue.try_push(101, B), Err(PushRefused::Full(101)));
        // ...interactive admission is unaffected, and vice versa.
        queue.try_push(1, I).unwrap();
        queue.try_push(2, I).unwrap();
        assert_eq!(queue.try_push(3, I), Err(PushRefused::Full(3)));
        assert_eq!(queue.depth(I), 2);
        assert_eq!(queue.depth(B), 1);
        assert_eq!(queue.depths(), (2, 1));
    }

    #[test]
    fn close_drains_before_releasing_workers_and_refuses_late_pushes() {
        let queue = RequestQueue::new(8, 8);
        queue.try_push(1, I).unwrap();
        queue.try_push(2, B).unwrap();
        queue.close();
        // A push after close must fail even though there is capacity —
        // no worker is guaranteed to pop it (the shutdown-race fix).
        assert_eq!(queue.try_push(3, I), Err(PushRefused::Closed(3)));
        assert_eq!(queue.try_push(3, B), Err(PushRefused::Closed(3)));
        // In-flight work still comes out, interactive first...
        assert_eq!(queue.pop_batch(1), vec![1]);
        assert_eq!(queue.pop_batch(4), vec![2]);
        // ...and only the empty queue signals exit.
        assert!(queue.pop_batch(4).is_empty());
    }

    #[test]
    fn blocked_consumers_observe_late_close() {
        let queue: Arc<RequestQueue<u32>> = Arc::new(RequestQueue::new(4, 4));
        let handle = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop_batch(4))
        };
        std::thread::sleep(Duration::from_millis(40));
        queue.close();
        assert!(handle.join().unwrap().is_empty());
    }
}

//! Per-connection rate limiting: a deterministic token bucket.
//!
//! Each connection reader owns one [`TokenBucket`] (when `--rate` is on):
//! query lines spend one token each, tokens refill continuously at `rate`
//! per second up to a `burst` capacity, and a line arriving to an empty
//! bucket is refused with a **deterministic retry-after hint** — the exact
//! number of milliseconds until one full token has accrued, so a client
//! honouring the hint succeeds on its next attempt instead of guessing.
//!
//! Control verbs (`PING` / `STATS` / `SHUTDOWN`) are exempt: a throttled
//! client can always probe the server and read its counters.
//!
//! The bucket starts **full**, so a well-behaved connection that sends at
//! most `burst` requests in any short window never sees `ERR QUOTA` — the
//! guarantee the isolation proptest pins.

use std::time::Instant;

/// A continuous-refill token bucket over wall-clock [`Instant`]s.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    /// Refill rate in tokens per second (> 0).
    rate: f64,
    /// Capacity in tokens (≥ 1); also the initial fill.
    burst: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/s with `burst` capacity,
    /// starting full at `now`.  `rate == 0` means *unlimited* and returns
    /// `None` (no bucket, no quota checks); `burst` is clamped to ≥ 1.
    pub(crate) fn new(rate: u32, burst: u32, now: Instant) -> Option<TokenBucket> {
        if rate == 0 {
            return None;
        }
        let burst = burst.max(1) as f64;
        Some(TokenBucket {
            rate: rate as f64,
            burst,
            tokens: burst,
            last_refill: now,
        })
    }

    /// Spends one token at `now`, or refuses with the number of
    /// milliseconds until a full token will have accrued (≥ 1, rounded
    /// up — sleeping that long then retrying always succeeds absent
    /// competing spenders).
    pub(crate) fn try_acquire_at(&mut self, now: Instant) -> Result<(), u64> {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        let retry_after_ms = (deficit / self.rate * 1e3).ceil() as u64;
        Err(retry_after_ms.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn rate_zero_is_unlimited() {
        assert!(TokenBucket::new(0, 8, Instant::now()).is_none());
    }

    #[test]
    fn burst_spends_down_then_refuses_with_exact_hint() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(10, 3, start).expect("rate > 0");
        // The bucket starts full: exactly `burst` immediate acquisitions.
        for _ in 0..3 {
            assert_eq!(bucket.try_acquire_at(start), Ok(()));
        }
        // Empty now; at 10 tokens/s a full token takes 100 ms.
        assert_eq!(bucket.try_acquire_at(start), Err(100));
        // Sleeping the hinted time makes the next attempt succeed.
        let later = start + Duration::from_millis(100);
        assert_eq!(bucket.try_acquire_at(later), Ok(()));
        // ... and only that one token accrued.
        assert_eq!(bucket.try_acquire_at(later), Err(100));
    }

    #[test]
    fn refill_is_continuous_and_capped_at_burst() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(1000, 2, start).expect("rate > 0");
        assert_eq!(bucket.try_acquire_at(start), Ok(()));
        assert_eq!(bucket.try_acquire_at(start), Ok(()));
        // Half a token after 0.5 ms: still refused, hint rounds up to 1 ms.
        let half = start + Duration::from_micros(500);
        assert_eq!(bucket.try_acquire_at(half), Err(1));
        // A long idle period refills to burst, not beyond: exactly two
        // immediate acquisitions again.
        let much_later = start + Duration::from_secs(60);
        assert_eq!(bucket.try_acquire_at(much_later), Ok(()));
        assert_eq!(bucket.try_acquire_at(much_later), Ok(()));
        assert!(bucket.try_acquire_at(much_later).is_err());
    }

    #[test]
    fn burst_is_clamped_to_at_least_one() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(5, 0, start).expect("rate > 0");
        assert_eq!(bucket.try_acquire_at(start), Ok(()));
        // 1 token at 5/s: 200 ms to the next.
        assert_eq!(bucket.try_acquire_at(start), Err(200));
    }
}

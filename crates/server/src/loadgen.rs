//! The load-generator client: M concurrent connections replaying a query
//! stream against a running [`crate::Server`], measuring throughput and
//! per-request latency.
//!
//! Two loop disciplines:
//!
//! * **closed-loop** — each connection sends one request, waits for its
//!   response, then sends the next: per-request latency is meaningful and
//!   reported as percentiles;
//! * **open-loop** — each connection pipelines the whole stream, then
//!   reads the responses back (they arrive in request order): this is the
//!   throughput / overload probe, and the mode that actually exercises the
//!   server's `ERR BUSY` backpressure.
//!
//! In both modes `ERR BUSY` rejections are (optionally) **re-sent** until
//! answered — re-running a query is always bit-identical, so retries never
//! change results, only timing.  The final response per stream position is
//! collected, which is what parity checks compare against in-process
//! answers.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Loop discipline of a load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One outstanding request per connection; latency percentiles are
    /// meaningful.
    Closed,
    /// The whole stream pipelined at once per round; exercises
    /// backpressure.
    Open,
}

impl LoadMode {
    /// Parses `closed` / `open`, case-insensitively.
    pub fn parse(name: &str) -> Option<LoadMode> {
        match name.to_ascii_lowercase().as_str() {
            "closed" => Some(LoadMode::Closed),
            "open" => Some(LoadMode::Open),
            _ => None,
        }
    }

    /// The mode's canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }
}

/// Knobs of a load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent connections (≥ 1), each replaying the full stream.
    pub connections: usize,
    /// Passes over the stream per connection (≥ 1).
    pub repeat: usize,
    /// Loop discipline.
    pub mode: LoadMode,
    /// Whether `ERR BUSY` rejections are re-sent until answered.
    pub retry_busy: bool,
    /// Open-loop retry-round bound (guards against a server that never
    /// frees capacity).
    pub max_rounds: usize,
}

impl Default for LoadGenConfig {
    /// One connection, one pass, closed-loop, busy retries on.
    fn default() -> Self {
        LoadGenConfig {
            connections: 1,
            repeat: 1,
            mode: LoadMode::Closed,
            retry_busy: true,
            max_rounds: 512,
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests per connection (`unique lines × repeat`).
    pub requests_per_connection: usize,
    /// Final responses collected over all connections.
    pub answered: usize,
    /// `ERR BUSY` rejections observed (each was re-sent when retries are
    /// on).
    pub busy_rejections: u64,
    /// Wall-clock of the whole run (all connections).
    pub elapsed: Duration,
    /// Per-request latencies in ms (closed-loop only; empty in open-loop).
    pub latencies_ms: Vec<f64>,
    /// Final response line per `[connection][stream position]` — what
    /// parity checks compare.
    pub responses: Vec<Vec<String>>,
}

impl LoadReport {
    /// Requests answered per second.
    pub fn throughput(&self) -> f64 {
        self.answered as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Whether a response line is the server's typed queue-full rejection.
fn is_busy(response: &str) -> bool {
    response.starts_with("ERR BUSY")
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection mid-stream",
        ));
    }
    Ok(line.trim_end().to_string())
}

/// One connection's outcome: `(final responses, latencies in ms, busy
/// rejections)`.
type ConnectionOutcome = (Vec<String>, Vec<f64>, u64);

/// One connection's replay.
fn drive_connection(
    addr: SocketAddr,
    stream_lines: &[String],
    config: &LoadGenConfig,
) -> std::io::Result<ConnectionOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let total = stream_lines.len() * config.repeat;
    let line_at = |index: usize| &stream_lines[index % stream_lines.len()];
    let mut finals: Vec<Option<String>> = vec![None; total];
    let mut latencies = Vec::new();
    let mut busy = 0u64;
    match config.mode {
        LoadMode::Closed => {
            for (index, slot) in finals.iter_mut().enumerate() {
                loop {
                    let start = Instant::now();
                    writeln!(writer, "{}", line_at(index))?;
                    writer.flush()?;
                    let response = read_response(&mut reader)?;
                    if is_busy(&response) && config.retry_busy {
                        busy += 1;
                        // Give the queue a beat to drain before re-sending.
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    latencies.push(start.elapsed().as_secs_f64() * 1e3);
                    *slot = Some(response);
                    break;
                }
            }
        }
        LoadMode::Open => {
            let mut pending: Vec<usize> = (0..total).collect();
            let mut rounds = 0usize;
            while !pending.is_empty() {
                rounds += 1;
                if rounds > 1 {
                    // Linear backoff between retry rounds: against a tiny
                    // queue, competing connections otherwise spin faster
                    // than workers can drain.
                    std::thread::sleep(Duration::from_micros(500 * rounds.min(20) as u64));
                }
                if rounds > config.max_rounds {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "{} request(s) still BUSY after {} open-loop rounds",
                            pending.len(),
                            config.max_rounds
                        ),
                    ));
                }
                for &index in &pending {
                    writeln!(writer, "{}", line_at(index))?;
                }
                writer.flush()?;
                // Responses come back in request order, so this zip maps
                // each response to the request it answers.
                let mut still_pending = Vec::new();
                for &index in &pending {
                    let response = read_response(&mut reader)?;
                    if is_busy(&response) && config.retry_busy {
                        busy += 1;
                        still_pending.push(index);
                    } else {
                        finals[index] = Some(response);
                    }
                }
                pending = still_pending;
            }
        }
    }
    let finals = finals
        .into_iter()
        .map(|slot| slot.expect("every request answered"))
        .collect();
    Ok((finals, latencies, busy))
}

/// Replays `lines` (raw query-language lines; comments and blanks are
/// stripped here, matching the file parser) against the server at `addr`
/// on `config.connections` concurrent connections.
///
/// # Errors
/// Fails on connection errors, a server that closes mid-stream, an empty
/// stream, or open-loop starvation beyond `max_rounds`.
pub fn run(
    addr: SocketAddr,
    lines: &[String],
    config: &LoadGenConfig,
) -> std::io::Result<LoadReport> {
    let stream_lines: Vec<String> = lines
        .iter()
        .filter_map(|raw| crate::wire::strip_line(raw).map(str::to_string))
        .collect();
    if stream_lines.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "query stream contains no queries",
        ));
    }
    let connections = config.connections.max(1);
    let started = Instant::now();
    let outcomes: Vec<std::io::Result<ConnectionOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let stream_lines = &stream_lines;
                scope.spawn(move || drive_connection(addr, stream_lines, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadgen connection panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut responses = Vec::new();
    let mut latencies_ms = Vec::new();
    let mut busy_rejections = 0u64;
    let mut answered = 0usize;
    for outcome in outcomes {
        let (finals, latencies, busy) = outcome?;
        answered += finals.len();
        responses.push(finals);
        latencies_ms.extend(latencies);
        busy_rejections += busy;
    }
    Ok(LoadReport {
        connections,
        requests_per_connection: stream_lines.len() * config.repeat.max(1),
        answered,
        busy_rejections,
        elapsed,
        latencies_ms,
        responses,
    })
}

/// Sends the `SHUTDOWN` verb on a fresh connection and returns the
/// server's acknowledgement (normally `OK BYE`).
///
/// # Errors
/// Fails when the server is unreachable or closes before acknowledging.
pub fn send_shutdown(addr: SocketAddr) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    writeln!(writer, "SHUTDOWN")?;
    writer.flush()?;
    read_response(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};
    use dht_core::queryline::{self, ParseOptions};
    use dht_engine::Engine;
    use dht_graph::{GraphBuilder, NodeId, NodeSet};

    fn fixture() -> (Engine, Vec<NodeSet>) {
        let mut b = GraphBuilder::with_nodes(10);
        for (u, v) in [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (4, 5),
        ] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let engine = Engine::new(b.build().unwrap());
        let sets = vec![
            NodeSet::new("P", (0..5).map(NodeId)),
            NodeSet::new("Q", (5..10).map(NodeId)),
        ];
        (engine, sets)
    }

    fn stream() -> Vec<String> {
        [
            "# repeated-target stream",
            "P Q 3",
            "Q P 2 b-bj",
            "",
            "P Q 3   # cache hit",
            "nway chain P Q 2 ap min",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// Expected final responses for one pass of the stream, computed
    /// in-process.
    fn expected_responses(lines: &[String]) -> Vec<String> {
        let (engine, sets) = fixture();
        let options = ParseOptions::default();
        let mut session = engine.session();
        lines
            .iter()
            .filter_map(|raw| crate::wire::strip_line(raw))
            .enumerate()
            .map(|(index, line)| {
                let parsed = queryline::parse_query_line(line, &sets, &options, index + 1)
                    .unwrap()
                    .unwrap();
                let output = session.run(&parsed.spec).unwrap();
                format!("OK {}", crate::wire::encode_output(&output))
            })
            .collect()
    }

    #[test]
    fn closed_loop_measures_latency_and_matches_in_process_answers() {
        let (engine, sets) = fixture();
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .unwrap();
        let report = run(
            server.local_addr(),
            &stream(),
            &LoadGenConfig {
                connections: 3,
                repeat: 2,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.connections, 3);
        assert_eq!(report.requests_per_connection, 8);
        assert_eq!(report.answered, 24);
        assert_eq!(report.latencies_ms.len(), 24, "closed loop measures each");
        assert!(report.throughput() > 0.0);
        let expected = expected_responses(&stream());
        for (connection, finals) in report.responses.iter().enumerate() {
            for (index, response) in finals.iter().enumerate() {
                assert_eq!(
                    response,
                    &expected[index % expected.len()],
                    "connection {connection} request {index}"
                );
            }
        }
        server.shutdown();
    }

    #[test]
    fn open_loop_retries_busy_rejections_to_the_same_answers() {
        let (engine, sets) = fixture();
        // A deliberately starved server: 1 worker, queue of 1.
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_batch(1),
        )
        .unwrap();
        let report = run(
            server.local_addr(),
            &stream(),
            &LoadGenConfig {
                connections: 2,
                repeat: 3,
                mode: LoadMode::Open,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.answered, 2 * 4 * 3);
        assert!(
            report.latencies_ms.is_empty(),
            "open loop has no per-request latency"
        );
        let expected = expected_responses(&stream());
        for finals in &report.responses {
            for (index, response) in finals.iter().enumerate() {
                assert_eq!(response, &expected[index % expected.len()]);
            }
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.rejected, report.busy_rejections,
            "client and server agree on the rejection count"
        );
        server_drained(&stats);
    }

    fn server_drained(stats: &crate::StatsSnapshot) {
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn shutdown_helper_stops_the_server() {
        let (engine, sets) = fixture();
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(send_shutdown(addr).unwrap(), "OK BYE");
        server.join();
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn empty_streams_and_mode_names_are_rejected_and_parsed() {
        let err = run(
            "127.0.0.1:1".parse().unwrap(),
            &["# nothing".to_string()],
            &LoadGenConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert_eq!(LoadMode::parse("OPEN"), Some(LoadMode::Open));
        assert_eq!(LoadMode::parse("closed"), Some(LoadMode::Closed));
        assert_eq!(LoadMode::parse("burst"), None);
        assert_eq!(LoadMode::Open.name(), "open");
    }
}

//! The load-generator client: M concurrent connections replaying a query
//! stream against a running [`crate::Server`], measuring throughput and
//! per-request latency — plus an optional **hostile-client fault-injection
//! mode** for proving overload isolation.
//!
//! Two loop disciplines for well-behaved connections:
//!
//! * **closed-loop** — each connection sends one request, waits for its
//!   response, then sends the next: per-request latency is meaningful and
//!   reported as percentiles;
//! * **open-loop** — each connection pipelines the whole stream, then
//!   reads the responses back (they arrive in request order): this is the
//!   throughput / overload probe, and the mode that actually exercises the
//!   server's `ERR BUSY` backpressure.
//!
//! A third discipline, [`soak`], is a separate entry point: a **windowed
//! open-loop** that sustains a bounded number of in-flight requests per
//! connection for a wall-clock duration, checking parity against expected
//! responses as they stream back.  It is built for *thousands* of
//! connections (small client thread stacks, bounded latency reservoirs)
//! and is what `dht loadgen --mode soak` and the `server_soak` bench row
//! drive.
//!
//! In both modes `ERR BUSY` and `ERR QUOTA` rejections are (optionally)
//! **re-sent** until answered, spaced by a deterministic
//! capped-exponential [`busy_backoff`] schedule (quota retries also honour
//! the server's retry-after hint) — re-running a query is always
//! bit-identical, so retries never change results, only timing.  The
//! final response per stream position is collected, which is what parity
//! checks compare against in-process answers.
//!
//! ## Hostile clients
//!
//! With [`LoadGenConfig::hostile`] `> 0`, that many **hostile**
//! connections run alongside the well-behaved ones, cycling through four
//! deterministic misbehaviour profiles (by connection index modulo 4):
//!
//! 1. **flood** — pipelines `PRIO batch` chunks as fast as responses come
//!    back, for as long as the well-behaved connections are running;
//! 2. **never-read** — pipelines a burst and never reads a single
//!    response, then disconnects with the responses unread;
//! 3. **disconnect** — bursts and slams the connection shut mid-flight,
//!    reconnecting in a loop;
//! 4. **drip** — feeds a request byte… by… byte, far slower than the
//!    server's read timeout.
//!
//! Hostile traffic is all batch-class, so a server running the two-level
//! queue keeps interactive requests isolated; the aggregated
//! [`HostileReport`] shows how hard the server throttled them.  No RNG
//! anywhere: profiles, chunk sizes and iteration floors are fixed, so a
//! given configuration misbehaves identically on every run.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::wire;

/// Loop discipline of a load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One outstanding request per connection; latency percentiles are
    /// meaningful.
    Closed,
    /// The whole stream pipelined at once per round; exercises
    /// backpressure.
    Open,
}

impl LoadMode {
    /// Parses `closed` / `open`, case-insensitively.
    pub fn parse(name: &str) -> Option<LoadMode> {
        match name.to_ascii_lowercase().as_str() {
            "closed" => Some(LoadMode::Closed),
            "open" => Some(LoadMode::Open),
            _ => None,
        }
    }

    /// The mode's canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }
}

/// Knobs of a load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent well-behaved connections (≥ 1), each replaying the full
    /// stream.
    pub connections: usize,
    /// Passes over the stream per connection (≥ 1).
    pub repeat: usize,
    /// Loop discipline.
    pub mode: LoadMode,
    /// Whether `ERR BUSY` / `ERR QUOTA` rejections are re-sent until
    /// answered.
    pub retry_busy: bool,
    /// Open-loop retry-round bound (guards against a server that never
    /// frees capacity).
    pub max_rounds: usize,
    /// Hostile connections to run alongside the well-behaved ones
    /// (fault injection; `0` disables).
    pub hostile: usize,
}

impl Default for LoadGenConfig {
    /// One connection, one pass, closed-loop, busy retries on, no hostile
    /// clients.
    fn default() -> Self {
        LoadGenConfig {
            connections: 1,
            repeat: 1,
            mode: LoadMode::Closed,
            retry_busy: true,
            max_rounds: 512,
            hostile: 0,
        }
    }
}

/// Deterministic capped-exponential backoff before retry `attempt`
/// (0-based): 200 µs doubling per attempt, capped at 50 ms — so a retry
/// storm against a saturated server decays geometrically instead of
/// hammering at a fixed (or growing-only-linearly) pace.  No RNG: every
/// run backs off identically.
pub fn busy_backoff(attempt: u32) -> Duration {
    Duration::from_micros((200u64 << attempt.min(8)).min(50_000))
}

/// What the hostile connections of a run did and received, aggregated.
#[derive(Debug, Default, Clone)]
pub struct HostileReport {
    /// Hostile connections driven.
    pub connections: usize,
    /// Request lines written by hostile connections.
    pub sent: u64,
    /// Response lines hostile connections actually read back.
    pub answered: u64,
    /// `ERR BUSY` lines among them.
    pub busy_rejections: u64,
    /// `ERR QUOTA` lines among them — the throttling evidence.
    pub quota_rejections: u64,
    /// `ERR DEADLINE` lines among them.
    pub deadline_misses: u64,
    /// Deliberate mid-flight disconnects performed.
    pub disconnects: u64,
}

impl HostileReport {
    fn absorb(&mut self, other: &HostileReport) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.busy_rejections += other.busy_rejections;
        self.quota_rejections += other.quota_rejections;
        self.deadline_misses += other.deadline_misses;
        self.disconnects += other.disconnects;
    }

    fn count_response(&mut self, response: &str) {
        self.answered += 1;
        if wire::is_quota(response) {
            self.quota_rejections += 1;
        } else if wire::is_busy(response) {
            self.busy_rejections += 1;
        } else if wire::is_deadline(response) {
            self.deadline_misses += 1;
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Well-behaved connections driven.
    pub connections: usize,
    /// Requests per well-behaved connection (`unique lines × repeat`).
    pub requests_per_connection: usize,
    /// Final responses collected over all well-behaved connections.
    pub answered: usize,
    /// `ERR BUSY` rejections observed by well-behaved connections (each
    /// was re-sent when retries are on).
    pub busy_rejections: u64,
    /// `ERR QUOTA` rejections observed by well-behaved connections (each
    /// was re-sent, honouring the hint, when retries are on).
    pub quota_rejections: u64,
    /// `ERR DEADLINE` final responses observed by well-behaved
    /// connections (deadlines are not retried: the budget is spent).
    pub deadline_misses: u64,
    /// Wall-clock of the whole run (all connections).
    pub elapsed: Duration,
    /// Per-request latencies in ms (closed-loop only; empty in open-loop).
    pub latencies_ms: Vec<f64>,
    /// Final response line per `[connection][stream position]` — what
    /// parity checks compare.
    pub responses: Vec<Vec<String>>,
    /// Aggregated hostile-connection activity (all zeros when
    /// [`LoadGenConfig::hostile`] is 0).
    pub hostile: HostileReport,
}

impl LoadReport {
    /// Requests answered per second.
    pub fn throughput(&self) -> f64 {
        self.answered as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection mid-stream",
        ));
    }
    Ok(line.trim_end().to_string())
}

/// One well-behaved connection's outcome.
#[derive(Debug, Default)]
struct ConnectionOutcome {
    finals: Vec<String>,
    latencies: Vec<f64>,
    busy: u64,
    quota: u64,
    deadline_misses: u64,
}

/// One well-behaved connection's replay.
fn drive_connection(
    addr: SocketAddr,
    stream_lines: &[String],
    config: &LoadGenConfig,
) -> std::io::Result<ConnectionOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let total = stream_lines.len() * config.repeat;
    let line_at = |index: usize| &stream_lines[index % stream_lines.len()];
    let mut finals: Vec<Option<String>> = vec![None; total];
    let mut outcome = ConnectionOutcome::default();
    match config.mode {
        LoadMode::Closed => {
            for (index, slot) in finals.iter_mut().enumerate() {
                let mut attempt = 0u32;
                loop {
                    let start = Instant::now();
                    writeln!(writer, "{}", line_at(index))?;
                    writer.flush()?;
                    let response = read_response(&mut reader)?;
                    if config.retry_busy && wire::is_busy(&response) {
                        outcome.busy += 1;
                        // Capped exponential: give the queue geometrically
                        // more time to drain on each refusal.
                        std::thread::sleep(busy_backoff(attempt));
                        attempt += 1;
                        continue;
                    }
                    if config.retry_busy && wire::is_quota(&response) {
                        outcome.quota += 1;
                        // The hint is exact (one token's refill time), but
                        // never back off less than the busy schedule would.
                        let hint = wire::retry_after_ms(&response).unwrap_or(1);
                        std::thread::sleep(busy_backoff(attempt).max(Duration::from_millis(hint)));
                        attempt += 1;
                        continue;
                    }
                    if wire::is_deadline(&response) {
                        outcome.deadline_misses += 1;
                    }
                    outcome.latencies.push(start.elapsed().as_secs_f64() * 1e3);
                    *slot = Some(response);
                    break;
                }
            }
        }
        LoadMode::Open => {
            let mut pending: Vec<usize> = (0..total).collect();
            let mut rounds = 0usize;
            let mut hint_ms = 0u64;
            while !pending.is_empty() {
                rounds += 1;
                if rounds > 1 {
                    // Capped exponential backoff between retry rounds
                    // (honouring the largest quota hint from the previous
                    // round): against a tiny queue, competing connections
                    // otherwise spin faster than workers can drain.
                    let backoff = busy_backoff(rounds as u32 - 2);
                    std::thread::sleep(backoff.max(Duration::from_millis(hint_ms)));
                }
                if rounds > config.max_rounds {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "{} request(s) still refused after {} open-loop rounds",
                            pending.len(),
                            config.max_rounds
                        ),
                    ));
                }
                for &index in &pending {
                    writeln!(writer, "{}", line_at(index))?;
                }
                writer.flush()?;
                // Responses come back in request order, so this zip maps
                // each response to the request it answers.
                let mut still_pending = Vec::new();
                hint_ms = 0;
                for &index in &pending {
                    let response = read_response(&mut reader)?;
                    if config.retry_busy && wire::is_busy(&response) {
                        outcome.busy += 1;
                        still_pending.push(index);
                    } else if config.retry_busy && wire::is_quota(&response) {
                        outcome.quota += 1;
                        hint_ms = hint_ms.max(wire::retry_after_ms(&response).unwrap_or(1));
                        still_pending.push(index);
                    } else {
                        if wire::is_deadline(&response) {
                            outcome.deadline_misses += 1;
                        }
                        finals[index] = Some(response);
                    }
                }
                pending = still_pending;
            }
        }
    }
    outcome.finals = finals
        .into_iter()
        .map(|slot| slot.expect("every request answered"))
        .collect();
    Ok(outcome)
}

/// The four deterministic misbehaviour profiles, assigned round-robin by
/// hostile connection index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostileProfile {
    Flood,
    NeverRead,
    Disconnect,
    Drip,
}

impl HostileProfile {
    fn for_index(index: usize) -> HostileProfile {
        match index % 4 {
            0 => HostileProfile::Flood,
            1 => HostileProfile::NeverRead,
            2 => HostileProfile::Disconnect,
            _ => HostileProfile::Drip,
        }
    }
}

/// Prefixes a query line into the batch class, unless it already carries
/// an explicit `PRIO` (a duplicate prefix would be a parse error).
fn batchify(line: &str) -> String {
    let lowered = line.to_ascii_lowercase();
    if lowered.starts_with("prio ") || lowered.contains(" prio ") {
        line.to_string()
    } else {
        format!("PRIO batch {line}")
    }
}

/// Lines a flood sends per pipelined chunk.
const FLOOD_CHUNK: u64 = 64;
/// Chunks a flood always completes, `stop` or not — enough volume that a
/// rate-limited server deterministically refuses some of it.
const FLOOD_MIN_CHUNKS: u64 = 4;

/// One hostile connection's run.  I/O errors end the run silently — being
/// cut off is an expected outcome for a misbehaving client.
fn drive_hostile(
    addr: SocketAddr,
    profile: HostileProfile,
    lines: &[String],
    stop: &AtomicBool,
) -> HostileReport {
    let mut report = HostileReport {
        connections: 1,
        ..HostileReport::default()
    };
    let line_at = |index: u64| batchify(&lines[(index % lines.len() as u64) as usize]);
    match profile {
        HostileProfile::Flood => {
            let Ok(stream) = TcpStream::connect(addr) else {
                return report;
            };
            stream.set_nodelay(true).ok();
            let Ok(write_half) = stream.try_clone() else {
                return report;
            };
            let mut writer = BufWriter::new(write_half);
            let mut reader = BufReader::new(stream);
            let mut chunks = 0u64;
            while chunks < FLOOD_MIN_CHUNKS || !stop.load(Ordering::Relaxed) {
                for index in 0..FLOOD_CHUNK {
                    if writeln!(writer, "{}", line_at(chunks * FLOOD_CHUNK + index)).is_err() {
                        return report;
                    }
                }
                if writer.flush().is_err() {
                    return report;
                }
                report.sent += FLOOD_CHUNK;
                for _ in 0..FLOOD_CHUNK {
                    match read_response(&mut reader) {
                        Ok(response) => report.count_response(&response),
                        Err(_) => return report,
                    }
                }
                chunks += 1;
            }
        }
        HostileProfile::NeverRead => {
            let Ok(stream) = TcpStream::connect(addr) else {
                return report;
            };
            stream.set_nodelay(true).ok();
            let mut writer = BufWriter::new(stream);
            // Pipeline a solid burst and then *never read*: the responses
            // rot in socket buffers until the close below discards them
            // (an RST on the server's write path, or a write stall if the
            // buffers fill first) — the server must drop, not block.
            for index in 0..256u64 {
                if writeln!(writer, "{}", line_at(index)).is_err() {
                    return report;
                }
                report.sent += 1;
            }
            if writer.flush().is_err() {
                return report;
            }
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(2));
            }
            report.disconnects += 1; // the close discards every response
        }
        HostileProfile::Disconnect => {
            let mut bursts = 0u64;
            while bursts < 2 || !stop.load(Ordering::Relaxed) {
                bursts += 1;
                let Ok(stream) = TcpStream::connect(addr) else {
                    return report;
                };
                stream.set_nodelay(true).ok();
                let mut writer = BufWriter::new(stream);
                for index in 0..32u64 {
                    if writeln!(writer, "{}", line_at(bursts * 32 + index)).is_err() {
                        break;
                    }
                    report.sent += 1;
                }
                let _ = writer.flush();
                // Dropping both halves here closes the socket with every
                // response unread — a mid-flight disconnect.
                drop(writer);
                report.disconnects += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        HostileProfile::Drip => {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return report;
            };
            stream.set_nodelay(true).ok();
            let Ok(read_half) = stream.try_clone() else {
                return report;
            };
            let mut reader = BufReader::new(read_half);
            let mut drips = 0u64;
            while drips < 2 || !stop.load(Ordering::Relaxed) {
                drips += 1;
                let line = format!("{}\n", line_at(drips));
                // One byte at a time, slower than the server's poll
                // interval: exercises partial-line buffering across read
                // timeouts without tripping the oversized-line cap.
                for byte in line.as_bytes() {
                    if stream.write_all(std::slice::from_ref(byte)).is_err() {
                        return report;
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                report.sent += 1;
                match read_response(&mut reader) {
                    Ok(response) => report.count_response(&response),
                    Err(_) => return report,
                }
            }
        }
    }
    report
}

/// Replays `lines` (raw query-language lines; comments and blanks are
/// stripped here, matching the file parser) against the server at `addr`
/// on `config.connections` concurrent well-behaved connections, plus
/// `config.hostile` hostile ones.  Hostile connections start first, run
/// for as long as the well-behaved ones (with per-profile iteration
/// floors, so they misbehave deterministically even against a fast
/// server), and are stopped and joined before the report is assembled.
///
/// # Errors
/// Fails on well-behaved connection errors, a server that closes one
/// mid-stream, an empty stream, or open-loop starvation beyond
/// `max_rounds`.  Hostile connection errors are *not* failures — being
/// cut off is an expected outcome for a misbehaving client.
pub fn run(
    addr: SocketAddr,
    lines: &[String],
    config: &LoadGenConfig,
) -> std::io::Result<LoadReport> {
    let stream_lines: Vec<String> = lines
        .iter()
        .filter_map(|raw| crate::wire::strip_line(raw).map(str::to_string))
        .collect();
    if stream_lines.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "query stream contains no queries",
        ));
    }
    let connections = config.connections.max(1);
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (outcomes, hostile_reports): (Vec<std::io::Result<ConnectionOutcome>>, Vec<HostileReport>) =
        std::thread::scope(|scope| {
            let hostile_handles: Vec<_> = (0..config.hostile)
                .map(|index| {
                    let stream_lines = &stream_lines;
                    let stop = &stop;
                    std::thread::Builder::new()
                        .stack_size(CLIENT_STACK_BYTES)
                        .spawn_scoped(scope, move || {
                            drive_hostile(
                                addr,
                                HostileProfile::for_index(index),
                                stream_lines,
                                stop,
                            )
                        })
                        .expect("spawn hostile connection")
                })
                .collect();
            let handles: Vec<_> = (0..connections)
                .map(|_| {
                    let stream_lines = &stream_lines;
                    std::thread::Builder::new()
                        .stack_size(CLIENT_STACK_BYTES)
                        .spawn_scoped(scope, move || drive_connection(addr, stream_lines, config))
                        .expect("spawn loadgen connection")
                })
                .collect();
            let outcomes = handles
                .into_iter()
                .map(|handle| handle.join().expect("loadgen connection panicked"))
                .collect();
            stop.store(true, Ordering::Relaxed);
            let hostile_reports = hostile_handles
                .into_iter()
                .map(|handle| handle.join().expect("hostile connection panicked"))
                .collect();
            (outcomes, hostile_reports)
        });
    let elapsed = started.elapsed();
    let mut hostile = HostileReport::default();
    for report in &hostile_reports {
        hostile.connections += report.connections;
        hostile.absorb(report);
    }
    let mut report = LoadReport {
        connections,
        requests_per_connection: stream_lines.len() * config.repeat.max(1),
        answered: 0,
        busy_rejections: 0,
        quota_rejections: 0,
        deadline_misses: 0,
        elapsed,
        latencies_ms: Vec::new(),
        responses: Vec::new(),
        hostile,
    };
    for outcome in outcomes {
        let outcome = outcome?;
        report.answered += outcome.finals.len();
        report.responses.push(outcome.finals);
        report.latencies_ms.extend(outcome.latencies);
        report.busy_rejections += outcome.busy;
        report.quota_rejections += outcome.quota;
        report.deadline_misses += outcome.deadline_misses;
    }
    Ok(report)
}

/// Client threads are cheap stacks, not defaults: a soak drives thousands
/// of connections, and the 8 MiB default stack would reserve gigabytes.
const CLIENT_STACK_BYTES: usize = 256 * 1024;

/// Most recent latency samples each soak connection keeps (a ring):
/// bounds soak memory to `connections × RING × 8` bytes while keeping
/// aggregate percentiles meaningful.
const SOAK_LATENCY_RING: usize = 512;

/// Knobs of a [`soak`] run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Concurrent connections (≥ 1; thousands are the design point).
    pub connections: usize,
    /// Wall-clock duration each connection keeps its window full.
    pub duration: Duration,
    /// Maximum in-flight (sent, unanswered) requests per connection.
    pub window: usize,
    /// Whether `ERR BUSY` / `ERR QUOTA` responses are re-sent (within the
    /// duration) instead of counted as final.
    pub retry_busy: bool,
}

impl Default for SoakConfig {
    /// 1000 connections, 2 s, window 4, retries on.
    fn default() -> Self {
        SoakConfig {
            connections: 1000,
            duration: Duration::from_secs(2),
            window: 4,
            retry_busy: true,
        }
    }
}

/// What a [`soak`] run measured, aggregated over all connections.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Connections driven.
    pub connections: usize,
    /// Final responses received (busy/quota retries excluded).
    pub answered: u64,
    /// `ERR BUSY` responses observed (re-sent when retries are on).
    pub busy_rejections: u64,
    /// `ERR QUOTA` responses observed (re-sent when retries are on).
    pub quota_rejections: u64,
    /// `ERR DEADLINE` final responses (not retried, not parity-checked).
    pub deadline_misses: u64,
    /// Final responses compared against an expected answer (everything
    /// except typed busy/quota/deadline lines).
    pub parity_checked: u64,
    /// Final responses that did not match the expected answer for their
    /// stream position.
    pub parity_failures: u64,
    /// The first mismatch, as `expected … got …` (parity debugging aid).
    pub first_mismatch: Option<String>,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Sampled per-request latencies in ms (the most recent
    /// `SOAK_LATENCY_RING` per connection), unsorted.
    pub latencies_ms: Vec<f64>,
}

impl SoakReport {
    /// Final responses per second, sustained over the whole run.
    pub fn throughput(&self) -> f64 {
        self.answered as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// The `p`-th percentile (0 ≤ p ≤ 1) of the sampled latencies, ms.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        crate::metrics::percentile(&sorted, p)
    }
}

/// One soak connection's tally, merged into the [`SoakReport`].
#[derive(Debug, Default)]
struct SoakOutcome {
    answered: u64,
    busy: u64,
    quota: u64,
    deadline_misses: u64,
    parity_checked: u64,
    parity_failures: u64,
    first_mismatch: Option<String>,
    latencies: Vec<f64>,
    latency_next: usize,
}

impl SoakOutcome {
    fn record_latency(&mut self, ms: f64) {
        if self.latencies.len() < SOAK_LATENCY_RING {
            self.latencies.push(ms);
        } else {
            self.latencies[self.latency_next] = ms;
            self.latency_next = (self.latency_next + 1) % SOAK_LATENCY_RING;
        }
    }
}

/// One soak connection: keep up to `window` requests in flight until the
/// deadline, then drain.  Responses arrive in request order, so the
/// in-flight queue maps each response to the stream position (and send
/// time) it answers.
fn drive_soak_connection(
    addr: SocketAddr,
    stream_lines: &[String],
    expected: &[String],
    config: &SoakConfig,
    deadline: Instant,
) -> std::io::Result<SoakOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let line_at = |position: u64| &stream_lines[(position % stream_lines.len() as u64) as usize];
    let mut outcome = SoakOutcome::default();
    // In-flight requests, oldest first: (stream position, send time).
    let mut inflight: std::collections::VecDeque<(u64, Instant)> =
        std::collections::VecDeque::new();
    let mut next_position = 0u64;
    loop {
        let open = Instant::now() < deadline;
        while open && inflight.len() < config.window.max(1) {
            writeln!(writer, "{}", line_at(next_position))?;
            inflight.push_back((next_position, Instant::now()));
            next_position += 1;
        }
        writer.flush()?;
        let Some((position, sent)) = inflight.pop_front() else {
            break; // window empty past the deadline: done
        };
        let response = read_response(&mut reader)?;
        if config.retry_busy && open && (wire::is_busy(&response) || wire::is_quota(&response)) {
            if wire::is_busy(&response) {
                outcome.busy += 1;
            } else {
                outcome.quota += 1;
            }
            // Re-send the same stream position at the window's tail; the
            // bounded window paces retries at roughly one round-trip, so
            // no extra backoff is needed.
            writeln!(writer, "{}", line_at(position))?;
            inflight.push_back((position, Instant::now()));
            continue;
        }
        outcome.answered += 1;
        outcome.record_latency(sent.elapsed().as_secs_f64() * 1e3);
        if wire::is_busy(&response) {
            outcome.busy += 1;
        } else if wire::is_quota(&response) {
            outcome.quota += 1;
        } else if wire::is_deadline(&response) {
            outcome.deadline_misses += 1;
        } else {
            outcome.parity_checked += 1;
            let want = &expected[(position % expected.len() as u64) as usize];
            if &response != want {
                outcome.parity_failures += 1;
                outcome.first_mismatch.get_or_insert_with(|| {
                    format!("position {position}: expected {want:?} got {response:?}")
                });
            }
        }
    }
    Ok(outcome)
}

/// Sustained windowed-open-loop soak: `config.connections` connections
/// each keep up to `config.window` requests in flight for
/// `config.duration`, cycling over `lines`; every final response is
/// parity-checked against `expected` (the in-process answer per stream
/// position, see [`run`]'s parity convention).  `ERR DEADLINE` responses
/// count as misses, not parity failures; `ERR BUSY` / `ERR QUOTA` are
/// re-sent while the window is open when `retry_busy` is set.
///
/// # Errors
/// Fails on connection errors, a server that closes a connection
/// mid-stream, an empty stream, or `expected` being empty.
pub fn soak(
    addr: SocketAddr,
    lines: &[String],
    expected: &[String],
    config: &SoakConfig,
) -> std::io::Result<SoakReport> {
    let stream_lines: Vec<String> = lines
        .iter()
        .filter_map(|raw| crate::wire::strip_line(raw).map(str::to_string))
        .collect();
    if stream_lines.is_empty() || expected.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "soak needs a non-empty query stream and expected answers",
        ));
    }
    let connections = config.connections.max(1);
    // Thousands of client sockets overrun the common 1024-descriptor soft
    // limit; lift it best-effort (headroom for stdio and the test harness).
    let _ = dht_poll::raise_nofile_limit(connections as u64 + 256);
    let started = Instant::now();
    let deadline = started + config.duration;
    let outcomes: Vec<std::io::Result<SoakOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let stream_lines = &stream_lines;
                std::thread::Builder::new()
                    .stack_size(CLIENT_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        drive_soak_connection(addr, stream_lines, expected, config, deadline)
                    })
                    .expect("spawn soak connection")
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("soak connection panicked"))
            .collect()
    });
    let mut report = SoakReport {
        connections,
        elapsed: started.elapsed(),
        ..SoakReport::default()
    };
    for outcome in outcomes {
        let outcome = outcome?;
        report.answered += outcome.answered;
        report.busy_rejections += outcome.busy;
        report.quota_rejections += outcome.quota;
        report.deadline_misses += outcome.deadline_misses;
        report.parity_checked += outcome.parity_checked;
        report.parity_failures += outcome.parity_failures;
        if report.first_mismatch.is_none() {
            report.first_mismatch = outcome.first_mismatch;
        }
        report.latencies_ms.extend(outcome.latencies);
    }
    Ok(report)
}

/// Sends the `SHUTDOWN` verb on a fresh connection and returns the
/// server's acknowledgement (normally `OK BYE`).
///
/// # Errors
/// Fails when the server is unreachable or closes before acknowledging.
pub fn send_shutdown(addr: SocketAddr) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    writeln!(writer, "SHUTDOWN")?;
    writer.flush()?;
    read_response(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};
    use dht_core::queryline::{self, ParseOptions};
    use dht_engine::Engine;
    use dht_graph::{GraphBuilder, NodeId, NodeSet};

    fn fixture() -> (Engine, Vec<NodeSet>) {
        let mut b = GraphBuilder::with_nodes(10);
        for (u, v) in [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (4, 5),
        ] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let engine = Engine::new(b.build().unwrap());
        let sets = vec![
            NodeSet::new("P", (0..5).map(NodeId)),
            NodeSet::new("Q", (5..10).map(NodeId)),
        ];
        (engine, sets)
    }

    fn stream() -> Vec<String> {
        [
            "# repeated-target stream",
            "P Q 3",
            "Q P 2 b-bj",
            "",
            "P Q 3   # cache hit",
            "nway chain P Q 2 ap min",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// Expected final responses for one pass of the stream, computed
    /// in-process.
    fn expected_responses(lines: &[String]) -> Vec<String> {
        let (engine, sets) = fixture();
        let options = ParseOptions::default();
        let mut session = engine.session();
        lines
            .iter()
            .filter_map(|raw| crate::wire::strip_line(raw))
            .enumerate()
            .map(|(index, line)| {
                let parsed = queryline::parse_query_line(line, &sets, &options, index + 1)
                    .unwrap()
                    .unwrap();
                let output = session.run(&parsed.spec).unwrap();
                format!("OK {}", crate::wire::encode_output(&output))
            })
            .collect()
    }

    #[test]
    fn closed_loop_measures_latency_and_matches_in_process_answers() {
        let (engine, sets) = fixture();
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .unwrap();
        let report = run(
            server.local_addr(),
            &stream(),
            &LoadGenConfig {
                connections: 3,
                repeat: 2,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.connections, 3);
        assert_eq!(report.requests_per_connection, 8);
        assert_eq!(report.answered, 24);
        assert_eq!(report.latencies_ms.len(), 24, "closed loop measures each");
        assert!(report.throughput() > 0.0);
        assert_eq!(report.hostile.connections, 0, "no hostile clients asked");
        let expected = expected_responses(&stream());
        for (connection, finals) in report.responses.iter().enumerate() {
            for (index, response) in finals.iter().enumerate() {
                assert_eq!(
                    response,
                    &expected[index % expected.len()],
                    "connection {connection} request {index}"
                );
            }
        }
        server.shutdown();
    }

    #[test]
    fn open_loop_retries_busy_rejections_to_the_same_answers() {
        let (engine, sets) = fixture();
        // A deliberately starved server: 1 worker, queue of 1.
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_batch(1),
        )
        .unwrap();
        let report = run(
            server.local_addr(),
            &stream(),
            &LoadGenConfig {
                connections: 2,
                repeat: 3,
                mode: LoadMode::Open,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.answered, 2 * 4 * 3);
        assert!(
            report.latencies_ms.is_empty(),
            "open loop has no per-request latency"
        );
        let expected = expected_responses(&stream());
        for finals in &report.responses {
            for (index, response) in finals.iter().enumerate() {
                assert_eq!(response, &expected[index % expected.len()]);
            }
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.rejected, report.busy_rejections,
            "client and server agree on the rejection count"
        );
        server_drained(&stats);
    }

    fn server_drained(stats: &crate::StatsSnapshot) {
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn backoff_schedule_is_deterministic_exponential_and_capped() {
        assert_eq!(busy_backoff(0), Duration::from_micros(200));
        assert_eq!(busy_backoff(1), Duration::from_micros(400));
        assert_eq!(busy_backoff(2), busy_backoff(1) * 2, "doubles per attempt");
        assert_eq!(busy_backoff(8), Duration::from_micros(50_000), "cap");
        assert_eq!(
            busy_backoff(8),
            busy_backoff(31),
            "cap holds for any attempt"
        );
        assert_eq!(busy_backoff(u32::MAX), Duration::from_micros(50_000));
    }

    #[test]
    fn batchify_adds_the_prefix_exactly_once() {
        assert_eq!(batchify("P Q 3"), "PRIO batch P Q 3");
        assert_eq!(batchify("PRIO batch P Q 3"), "PRIO batch P Q 3");
        assert_eq!(
            batchify("DEADLINE 5 PRIO interactive P Q"),
            "DEADLINE 5 PRIO interactive P Q",
            "an explicit class is never overridden"
        );
        assert_eq!(batchify("DEADLINE 5 P Q"), "PRIO batch DEADLINE 5 P Q");
    }

    #[test]
    fn hostile_mix_throttles_hostiles_and_leaves_well_behaved_answers_intact() {
        let (engine, sets) = fixture();
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default()
                .with_workers(2)
                .with_rate(100)
                .with_burst(24)
                .with_batch_queue_capacity(16),
        )
        .unwrap();
        let report = run(
            server.local_addr(),
            &stream(),
            &LoadGenConfig {
                connections: 2,
                repeat: 2,
                hostile: 4, // one of each profile
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        // Well-behaved connections (8 requests each, burst 24) never hit
        // the rate limit and keep bit-exact answers.
        assert_eq!(report.quota_rejections, 0, "{report:?}");
        assert_eq!(report.deadline_misses, 0, "{report:?}");
        assert_eq!(report.answered, 16);
        let expected = expected_responses(&stream());
        for finals in &report.responses {
            for (index, response) in finals.iter().enumerate() {
                assert_eq!(response, &expected[index % expected.len()]);
            }
        }
        // The flood (4+ chunks of 64 against burst 24) was throttled.
        assert_eq!(report.hostile.connections, 4);
        assert!(report.hostile.sent >= 4 * 64 + 256 + 2 * 32 + 2);
        assert!(
            report.hostile.quota_rejections > 0,
            "flood must trip the rate limit: {:?}",
            report.hostile
        );
        assert!(report.hostile.disconnects >= 3, "{:?}", report.hostile);
        // The server must survive all of it and drain cleanly.
        let stats = server.shutdown();
        assert!(stats.quota_rejected >= report.hostile.quota_rejections);
        server_drained(&stats);
    }

    #[test]
    fn soak_sustains_parity_clean_windowed_traffic() {
        let (engine, sets) = fixture();
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default().with_workers(2),
        )
        .unwrap();
        let lines = stream();
        let expected = expected_responses(&lines);
        let report = soak(
            server.local_addr(),
            &lines,
            &expected,
            &SoakConfig {
                connections: 32,
                duration: Duration::from_millis(300),
                window: 2,
                retry_busy: true,
            },
        )
        .unwrap();
        assert_eq!(report.connections, 32);
        assert!(report.answered > 0, "{report:?}");
        assert_eq!(report.parity_failures, 0, "{:?}", report.first_mismatch);
        assert_eq!(report.deadline_misses, 0, "{report:?}");
        assert!(report.throughput() > 0.0);
        assert!(!report.latencies_ms.is_empty());
        assert!(report.latency_percentile_ms(0.99) > 0.0);
        let stats = server.shutdown();
        assert_eq!(stats.connections, 0);
        server_drained(&stats);
    }

    #[test]
    fn soak_refuses_empty_streams_and_missing_expectations() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let config = SoakConfig::default();
        let none = soak(addr, &["# nothing".to_string()], &[], &config).unwrap_err();
        assert_eq!(none.kind(), std::io::ErrorKind::InvalidInput);
        let no_expected = soak(addr, &["P Q 3".to_string()], &[], &config).unwrap_err();
        assert_eq!(no_expected.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn shutdown_helper_stops_the_server() {
        let (engine, sets) = fixture();
        let server = Server::start(
            engine,
            sets,
            ParseOptions::default(),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(send_shutdown(addr).unwrap(), "OK BYE");
        server.join();
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn empty_streams_and_mode_names_are_rejected_and_parsed() {
        let err = run(
            "127.0.0.1:1".parse().unwrap(),
            &["# nothing".to_string()],
            &LoadGenConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert_eq!(LoadMode::parse("OPEN"), Some(LoadMode::Open));
        assert_eq!(LoadMode::parse("closed"), Some(LoadMode::Closed));
        assert_eq!(LoadMode::parse("burst"), None);
        assert_eq!(LoadMode::Open.name(), "open");
    }
}

//! Round-robin stream selection (the HRJN pulling strategy used in Step 7 of
//! Algorithm 1).

/// Cycles over `n` streams, skipping the ones reported inactive.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    cursor: usize,
}

impl RoundRobin {
    /// Creates a scheduler over `n` streams.
    pub fn new(n: usize) -> Self {
        RoundRobin { n, cursor: 0 }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the scheduler has zero streams.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns the index of the next stream for which `active` is true,
    /// advancing the cursor past it, or `None` if no stream is active.
    pub fn next_active(&mut self, active: impl Fn(usize) -> bool) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for offset in 0..self.n {
            let idx = (self.cursor + offset) % self.n;
            if active(idx) {
                self.cursor = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_through_all_streams_fairly() {
        let mut rr = RoundRobin::new(3);
        let order: Vec<usize> = (0..6).map(|_| rr.next_active(|_| true).unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_inactive_streams() {
        let mut rr = RoundRobin::new(3);
        let order: Vec<usize> = (0..4)
            .map(|_| rr.next_active(|i| i != 1).unwrap())
            .collect();
        assert_eq!(order, vec![0, 2, 0, 2]);
    }

    #[test]
    fn returns_none_when_everything_is_inactive() {
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.next_active(|_| false), None);
        // and recovers once a stream becomes active again
        assert_eq!(rr.next_active(|i| i == 1), Some(1));
    }

    #[test]
    fn empty_scheduler_yields_nothing() {
        let mut rr = RoundRobin::new(0);
        assert!(rr.is_empty());
        assert_eq!(rr.next_active(|_| true), None);
    }

    #[test]
    fn single_stream_is_always_selected() {
        let mut rr = RoundRobin::new(1);
        for _ in 0..5 {
            assert_eq!(rr.next_active(|_| true), Some(0));
        }
    }
}

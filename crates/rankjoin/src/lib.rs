//! # dht-rankjoin
//!
//! Building blocks of the Pull/Bound Rank Join (PBRJ) used by the AP and PJ
//! n-way join algorithms of the paper:
//!
//! * [`TopKBuffer`] — the bounded output buffer `O` that keeps the `k`
//!   highest-scored candidate answers seen so far;
//! * [`CornerBound`] — the HRJN *corner bound* threshold `τ`: the best score
//!   any not-yet-seen combination of stream entries could still achieve,
//!   given the first (largest) and last (most recently pulled) score of every
//!   input stream;
//! * [`RoundRobin`] — the HRJN stream-selection policy used in Step 7 of
//!   Algorithm 1.
//!
//! The actual joining of pulled entries into n-tuples is query-graph
//! specific (candidate buffers keyed by shared node sets) and lives in
//! `dht-core::multiway`; this crate is deliberately agnostic of what an
//! "item" is so that it can be tested exhaustively against brute force on
//! synthetic streams.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bound;
pub mod roundrobin;
pub mod topk;

pub use bound::CornerBound;
pub use roundrobin::RoundRobin;
pub use topk::TopKBuffer;

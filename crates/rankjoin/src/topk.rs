//! Bounded top-k output buffer.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry; the heap is a *min*-heap on score so that the lowest
/// retained score is always at the top and can be evicted in `O(log k)`.
#[derive(Debug, Clone)]
struct Entry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score => min-heap by score.  Ties broken by insertion
        // order (later insertions evicted first) to keep results stable.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A buffer that retains the `k` highest-scored items inserted into it.
///
/// This is the output buffer `O` of Algorithm 1 (and the buffer `B` of
/// Algorithm 2): a priority queue of size `k` storing candidate answers with
/// the `k` highest aggregate scores.
#[derive(Debug, Clone)]
pub struct TopKBuffer<T> {
    k: usize,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> TopKBuffer<T> {
    /// Creates a buffer retaining at most `k` items.
    pub fn new(k: usize) -> Self {
        TopKBuffer {
            k,
            seq: 0,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k` of the buffer.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the buffer already holds `k` items.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Lowest retained score, if any item is retained.
    ///
    /// When the buffer is full this is `T_k`, the `k`-th highest score seen
    /// so far — the pruning threshold of the iterative-deepening joins.
    pub fn min_score(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// The `k`-th highest score seen so far, or `None` while fewer than `k`
    /// items have been retained (no meaningful threshold yet).
    pub fn kth_score(&self) -> Option<f64> {
        if self.is_full() {
            self.min_score()
        } else {
            None
        }
    }

    /// Inserts an item.  Returns `true` if the item was retained (it may
    /// still be evicted by later, higher-scoring insertions).
    pub fn insert(&mut self, score: f64, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = Entry {
            score,
            seq: self.seq,
            item,
        };
        self.seq += 1;
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        // Buffer full: replace the minimum if the new score is strictly higher.
        let current_min = self.heap.peek().expect("non-empty full heap").score;
        if score > current_min {
            self.heap.pop();
            self.heap.push(entry);
            true
        } else {
            false
        }
    }

    /// Consumes the buffer and returns its items sorted by descending score
    /// (ties in first-inserted order).
    pub fn into_sorted_desc(self) -> Vec<(f64, T)> {
        let mut items: Vec<Entry<T>> = self.heap.into_vec();
        items.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.seq.cmp(&b.seq)));
        items.into_iter().map(|e| (e.score, e.item)).collect()
    }

    /// Iterates over retained `(score, item)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &T)> {
        self.heap.iter().map(|e| (e.score, &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_k_highest_scores() {
        let mut buf = TopKBuffer::new(3);
        for (s, v) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (4.0, "d"), (0.5, "e")] {
            buf.insert(s, v);
        }
        let out = buf.into_sorted_desc();
        let items: Vec<&str> = out.iter().map(|&(_, v)| v).collect();
        assert_eq!(items, vec!["b", "d", "c"]);
    }

    #[test]
    fn kth_score_only_defined_when_full() {
        let mut buf = TopKBuffer::new(2);
        assert_eq!(buf.kth_score(), None);
        buf.insert(4.0, ());
        assert_eq!(buf.kth_score(), None);
        buf.insert(7.0, ());
        assert_eq!(buf.kth_score(), Some(4.0));
        buf.insert(5.0, ());
        assert_eq!(buf.kth_score(), Some(5.0));
    }

    #[test]
    fn insert_reports_retention() {
        let mut buf = TopKBuffer::new(2);
        assert!(buf.insert(1.0, 1));
        assert!(buf.insert(2.0, 2));
        assert!(!buf.insert(0.5, 3), "lower than the current minimum");
        assert!(buf.insert(3.0, 4));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn equal_scores_keep_earliest_insertions() {
        let mut buf = TopKBuffer::new(2);
        buf.insert(1.0, "first");
        buf.insert(1.0, "second");
        assert!(
            !buf.insert(1.0, "third"),
            "ties do not evict earlier entries"
        );
        let out = buf.into_sorted_desc();
        assert_eq!(out[0].1, "first");
        assert_eq!(out[1].1, "second");
    }

    #[test]
    fn zero_capacity_accepts_nothing() {
        let mut buf: TopKBuffer<i32> = TopKBuffer::new(0);
        assert!(!buf.insert(10.0, 1));
        assert!(buf.is_empty());
        assert!(buf.kth_score().is_none());
    }

    #[test]
    fn matches_brute_force_on_random_input() {
        // Deterministic pseudo-random stream (LCG) — no external RNG needed.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let values: Vec<f64> = (0..500).map(|_| next()).collect();
        let mut buf = TopKBuffer::new(25);
        for (i, &v) in values.iter().enumerate() {
            buf.insert(v, i);
        }
        let got: Vec<f64> = buf.into_sorted_desc().into_iter().map(|(s, _)| s).collect();
        let mut expected = values.clone();
        expected.sort_by(|a, b| b.total_cmp(a));
        expected.truncate(25);
        assert_eq!(got.len(), 25);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-15);
        }
    }

    #[test]
    fn iter_exposes_all_retained_items() {
        let mut buf = TopKBuffer::new(3);
        buf.insert(1.0, 'x');
        buf.insert(2.0, 'y');
        let mut seen: Vec<char> = buf.iter().map(|(_, &c)| c).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec!['x', 'y']);
    }
}

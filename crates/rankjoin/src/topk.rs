//! Bounded top-k output buffer.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry; the heap is a *min*-heap under the retention order
/// (score descending, then item ascending) so that the worst retained
/// entry is always at the top and can be evicted in `O(log k)`.
#[derive(Debug, Clone)]
struct Entry<T> {
    score: f64,
    item: T,
}

impl<T: Ord> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score.total_cmp(&other.score) == Ordering::Equal && self.item == other.item
    }
}
impl<T: Ord> Eq for Entry<T> {}

impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score, forward on item => the heap's maximum is the
        // entry ranking LAST under (score desc, item asc) — the one to
        // evict when something better arrives.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// A buffer that retains the `k` best items under the **total order**
/// (score descending, item ascending).
///
/// This is the output buffer `O` of Algorithm 1 (and the buffer `B` of
/// Algorithm 2): a priority queue of size `k` storing candidate answers
/// with the `k` highest aggregate scores.  Score ties at the `k`-th place
/// are broken by the item's own `Ord` (for pair answers: ascending node
/// ids), which makes the retained set a pure function of the candidate
/// multiset — independent of insertion order.  That property is what lets
/// a sharded fleet merge per-shard top-k lists into exactly the answer a
/// single union run produces.
#[derive(Debug, Clone)]
pub struct TopKBuffer<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

impl<T: Ord> TopKBuffer<T> {
    /// Creates a buffer retaining at most `k` items.
    pub fn new(k: usize) -> Self {
        TopKBuffer {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k` of the buffer.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the buffer already holds `k` items.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Lowest retained score, if any item is retained.
    ///
    /// When the buffer is full this is `T_k`, the `k`-th highest score seen
    /// so far — the pruning threshold of the iterative-deepening joins.
    pub fn min_score(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// The `k`-th highest score seen so far, or `None` while fewer than `k`
    /// items have been retained (no meaningful threshold yet).
    pub fn kth_score(&self) -> Option<f64> {
        if self.is_full() {
            self.min_score()
        } else {
            None
        }
    }

    /// Inserts an item.  Returns `true` if the item was retained (it may
    /// still be evicted by later insertions ranking above it).
    pub fn insert(&mut self, score: f64, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = Entry { score, item };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        // Buffer full: replace the worst retained entry iff the new one
        // ranks strictly above it under (score desc, item asc).
        let worst = self.heap.peek().expect("non-empty full heap");
        let better = entry
            .score
            .total_cmp(&worst.score)
            .then_with(|| worst.item.cmp(&entry.item))
            == Ordering::Greater;
        if better {
            self.heap.pop();
            self.heap.push(entry);
            true
        } else {
            false
        }
    }

    /// Consumes the buffer and returns its `(score, item)` pairs sorted by
    /// the retention order: descending score, ties in ascending item order.
    pub fn into_sorted_desc(self) -> Vec<(f64, T)> {
        let mut items: Vec<Entry<T>> = self.heap.into_vec();
        items.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.item.cmp(&b.item))
        });
        items.into_iter().map(|e| (e.score, e.item)).collect()
    }

    /// Iterates over retained `(score, item)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &T)> {
        self.heap.iter().map(|e| (e.score, &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_k_highest_scores() {
        let mut buf = TopKBuffer::new(3);
        for (s, v) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (4.0, "d"), (0.5, "e")] {
            buf.insert(s, v);
        }
        let out = buf.into_sorted_desc();
        let items: Vec<&str> = out.iter().map(|&(_, v)| v).collect();
        assert_eq!(items, vec!["b", "d", "c"]);
    }

    #[test]
    fn kth_score_only_defined_when_full() {
        let mut buf = TopKBuffer::new(2);
        assert_eq!(buf.kth_score(), None);
        buf.insert(4.0, 0);
        assert_eq!(buf.kth_score(), None);
        buf.insert(7.0, 1);
        assert_eq!(buf.kth_score(), Some(4.0));
        buf.insert(5.0, 2);
        assert_eq!(buf.kth_score(), Some(5.0));
    }

    #[test]
    fn insert_reports_retention() {
        let mut buf = TopKBuffer::new(2);
        assert!(buf.insert(1.0, 1));
        assert!(buf.insert(2.0, 2));
        assert!(!buf.insert(0.5, 3), "lower than the current minimum");
        assert!(buf.insert(3.0, 4));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn equal_scores_keep_the_smallest_items() {
        // The retained set is a pure function of the candidate multiset:
        // smaller items win score ties at the boundary, regardless of the
        // order they arrive in.
        for order in [[1, 2, 3], [3, 2, 1], [2, 3, 1]] {
            let mut buf = TopKBuffer::new(2);
            for item in order {
                buf.insert(1.0, item);
            }
            let items: Vec<i32> = buf.into_sorted_desc().into_iter().map(|(_, v)| v).collect();
            assert_eq!(items, vec![1, 2], "insertion order {order:?}");
        }
    }

    #[test]
    fn tie_selection_is_insertion_order_independent() {
        // A higher score arriving after a full buffer of ties evicts the
        // LARGEST tied item, matching what any re-ordering would retain.
        let mut buf = TopKBuffer::new(3);
        buf.insert(1.0, 30);
        buf.insert(1.0, 10);
        buf.insert(1.0, 20);
        buf.insert(2.0, 40);
        let items: Vec<i32> = buf.into_sorted_desc().into_iter().map(|(_, v)| v).collect();
        assert_eq!(items, vec![40, 10, 20]);
    }

    #[test]
    fn zero_capacity_accepts_nothing() {
        let mut buf: TopKBuffer<i32> = TopKBuffer::new(0);
        assert!(!buf.insert(10.0, 1));
        assert!(buf.is_empty());
        assert!(buf.kth_score().is_none());
    }

    #[test]
    fn matches_brute_force_on_random_input() {
        // Deterministic pseudo-random stream (LCG) — no external RNG needed.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let values: Vec<f64> = (0..500).map(|_| next()).collect();
        let mut buf = TopKBuffer::new(25);
        for (i, &v) in values.iter().enumerate() {
            buf.insert(v, i);
        }
        let got: Vec<f64> = buf.into_sorted_desc().into_iter().map(|(s, _)| s).collect();
        let mut expected = values.clone();
        expected.sort_by(|a, b| b.total_cmp(a));
        expected.truncate(25);
        assert_eq!(got.len(), 25);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-15);
        }
    }

    #[test]
    fn sharded_merges_reproduce_the_union_selection() {
        // Partition a candidate stream with boundary ties arbitrarily,
        // run a per-shard buffer over each part, merge the shard outputs
        // through a fresh buffer: always identical to one union run.
        let candidates: Vec<(f64, u32)> = (0..40)
            .map(|i| (f64::from(i % 5) * 0.5, 97 * i % 41))
            .collect();
        let mut union_buf = TopKBuffer::new(7);
        for &(s, v) in &candidates {
            union_buf.insert(s, v);
        }
        let union_out = union_buf.into_sorted_desc();
        for shards in [2usize, 3] {
            let mut merged = TopKBuffer::new(7);
            for shard in 0..shards {
                let mut local = TopKBuffer::new(7);
                for (i, &(s, v)) in candidates.iter().enumerate() {
                    if i % shards == shard {
                        local.insert(s, v);
                    }
                }
                for (s, v) in local.into_sorted_desc() {
                    merged.insert(s, v);
                }
            }
            assert_eq!(merged.into_sorted_desc(), union_out, "{shards} shards");
        }
    }

    #[test]
    fn iter_exposes_all_retained_items() {
        let mut buf = TopKBuffer::new(3);
        buf.insert(1.0, 'x');
        buf.insert(2.0, 'y');
        let mut seen: Vec<char> = buf.iter().map(|(_, &c)| c).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec!['x', 'y']);
    }
}

//! The HRJN corner bound.
//!
//! For a rank join over `s` descending-sorted input streams with a monotone
//! aggregate `f`, any answer not yet produced must use, for at least one
//! stream `i`, an entry at or below the last score pulled from `i`.  The
//! tightest upper bound on unseen answers is therefore the maximum over the
//! *corners*
//!
//! ```text
//! corner_i = f(first_1, …, last_i, …, first_s)
//! ```
//!
//! where `first_j` is the first (largest) score of stream `j` and `last_i`
//! the most recently pulled score of stream `i`.  The rank join can stop as
//! soon as it has `k` answers whose scores all reach this threshold.

/// Tracks first/last scores per stream and evaluates the corner-bound
/// threshold `τ`.
#[derive(Debug, Clone)]
pub struct CornerBound {
    first: Vec<Option<f64>>,
    last: Vec<Option<f64>>,
}

impl CornerBound {
    /// Creates a tracker for `streams` input streams.
    pub fn new(streams: usize) -> Self {
        CornerBound {
            first: vec![None; streams],
            last: vec![None; streams],
        }
    }

    /// Number of tracked streams.
    pub fn streams(&self) -> usize {
        self.first.len()
    }

    /// Records that `score` was pulled from stream `stream`.
    ///
    /// Scores must be pulled in non-increasing order per stream for the bound
    /// to be valid; this is asserted in debug builds.
    pub fn observe(&mut self, stream: usize, score: f64) {
        if self.first[stream].is_none() {
            self.first[stream] = Some(score);
        }
        debug_assert!(
            self.last[stream].is_none_or(|prev| score <= prev + 1e-12),
            "stream {stream} produced scores out of order"
        );
        self.last[stream] = Some(score);
    }

    /// The first (largest) score observed on `stream`, if any.
    pub fn first_score(&self, stream: usize) -> Option<f64> {
        self.first[stream]
    }

    /// The most recent score observed on `stream`, if any.
    pub fn last_score(&self, stream: usize) -> Option<f64> {
        self.last[stream]
    }

    /// Marks a stream as exhausted at the lowest possible score, tightening
    /// the bound: corners using this stream's "last" value become the
    /// aggregate with `floor` substituted.
    pub fn exhaust(&mut self, stream: usize, floor: f64) {
        if self.first[stream].is_none() {
            self.first[stream] = Some(floor);
        }
        self.last[stream] = Some(floor);
    }

    /// Evaluates the corner-bound threshold `τ` for a monotone aggregate.
    ///
    /// `aggregate` receives one score per stream.  If any stream has not been
    /// observed at all yet, the threshold is `+∞` (nothing can be bounded).
    pub fn threshold(&self, aggregate: impl Fn(&[f64]) -> f64) -> f64 {
        let s = self.streams();
        if s == 0 {
            return f64::NEG_INFINITY;
        }
        if self.first.iter().any(Option::is_none) {
            return f64::INFINITY;
        }
        let firsts: Vec<f64> = self
            .first
            .iter()
            .map(|f| f.expect("checked above"))
            .collect();
        let mut tau = f64::NEG_INFINITY;
        let mut scratch = firsts.clone();
        for i in 0..s {
            let last_i = self.last[i].expect("observe sets first and last together");
            scratch.copy_from_slice(&firsts);
            scratch[i] = last_i;
            let corner = aggregate(&scratch);
            if corner > tau {
                tau = corner;
            }
        }
        tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(values: &[f64]) -> f64 {
        values.iter().sum()
    }

    fn min(values: &[f64]) -> f64 {
        values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn threshold_is_infinite_until_every_stream_is_seen() {
        let mut cb = CornerBound::new(2);
        assert!(cb.threshold(sum).is_infinite());
        cb.observe(0, 5.0);
        assert!(cb.threshold(sum).is_infinite());
        cb.observe(1, 3.0);
        assert!(cb.threshold(sum).is_finite());
    }

    #[test]
    fn corner_bound_matches_hand_computation_for_sum() {
        let mut cb = CornerBound::new(2);
        cb.observe(0, 10.0);
        cb.observe(1, 8.0);
        cb.observe(0, 6.0);
        // corners: f(last_0, first_1) = 6 + 8 = 14; f(first_0, last_1) = 10 + 8 = 18
        assert!((cb.threshold(sum) - 18.0).abs() < 1e-12);
        cb.observe(1, 2.0);
        // corners: 6 + 8 = 14; 10 + 2 = 12
        assert!((cb.threshold(sum) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn corner_bound_matches_hand_computation_for_min() {
        let mut cb = CornerBound::new(3);
        cb.observe(0, 0.9);
        cb.observe(1, 0.8);
        cb.observe(2, 0.7);
        cb.observe(0, 0.4);
        // corners: min(0.4,0.8,0.7)=0.4; min(0.9,0.8,0.7)=0.7 (twice)
        assert!((cb.threshold(min) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn threshold_never_increases_as_more_is_pulled() {
        let mut cb = CornerBound::new(2);
        cb.observe(0, 5.0);
        cb.observe(1, 5.0);
        let mut prev = cb.threshold(sum);
        for score in [4.0, 3.0, 2.0, 1.0] {
            cb.observe(0, score);
            let t = cb.threshold(sum);
            assert!(t <= prev + 1e-12);
            prev = t;
            cb.observe(1, score);
            let t = cb.threshold(sum);
            assert!(t <= prev + 1e-12);
            prev = t;
        }
    }

    #[test]
    fn exhaust_lowers_the_bound_to_the_floor() {
        let mut cb = CornerBound::new(2);
        cb.observe(0, 3.0);
        cb.observe(1, 2.0);
        cb.exhaust(1, -1.0);
        // corners: f(3, 2)... no: last_0 = 3 & first_1 = 2 => 5 ; first_0 = 3 & last_1 = -1 => 2
        assert!((cb.threshold(sum) - 5.0).abs() < 1e-12);
        cb.observe(0, 0.0);
        // corners: 0 + 2 = 2 ; 3 - 1 = 2
        assert!((cb.threshold(sum) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exhaust_unseen_stream_uses_floor_as_first() {
        let mut cb = CornerBound::new(2);
        cb.observe(0, 3.0);
        cb.exhaust(1, -5.0);
        let t = cb.threshold(sum);
        assert!((t - (3.0 - 5.0)).abs() < 1e-12);
    }

    #[test]
    fn bound_is_sound_for_a_simulated_rank_join() {
        // Two streams of descending scores; answers are all cross pairs with
        // SUM aggregate.  After pulling a prefix of each stream, no unseen
        // pair may beat the corner bound.
        let s0 = [9.0, 7.0, 4.0, 1.0];
        let s1 = [8.0, 5.0, 5.0, 0.5];
        for pull0 in 1..=s0.len() {
            for pull1 in 1..=s1.len() {
                let mut cb = CornerBound::new(2);
                for &v in &s0[..pull0] {
                    cb.observe(0, v);
                }
                for &v in &s1[..pull1] {
                    cb.observe(1, v);
                }
                let tau = cb.threshold(sum);
                // every pair with at least one unseen component
                for (i, &a) in s0.iter().enumerate() {
                    for (j, &b) in s1.iter().enumerate() {
                        let unseen = i >= pull0 || j >= pull1;
                        if unseen {
                            assert!(
                                a + b <= tau + 1e-12,
                                "unseen pair ({i},{j}) with score {} beats tau={tau}",
                                a + b
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_streams_threshold_is_negative_infinity() {
        let cb = CornerBound::new(0);
        assert_eq!(cb.threshold(sum), f64::NEG_INFINITY);
    }
}

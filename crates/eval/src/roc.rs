//! ROC curves and AUC.
//!
//! Inputs are `(score, is_positive)` pairs: a higher score means the
//! predictor ranks the candidate as more likely to be a true link / clique.
//! The AUC is computed with the rank-statistic (Mann–Whitney) formulation,
//! which handles ties by assigning mid-ranks — equivalent to the area under
//! the step-wise ROC curve with diagonal tie segments.

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
}

/// A ROC curve together with its AUC.
#[derive(Debug, Clone)]
pub struct RocCurve {
    /// Curve points from (0,0) to (1,1), in order of decreasing threshold.
    pub points: Vec<RocPoint>,
    /// Area under the curve.
    pub auc: f64,
}

impl RocCurve {
    /// The true-positive rate at the largest threshold whose false-positive
    /// rate does not exceed `fpr` (used to read "TPR at FPR ≈ 0.1" off the
    /// curve as the paper does).
    pub fn tpr_at_fpr(&self, fpr: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.fpr <= fpr + 1e-12)
            .map(|p| p.tpr)
            .fold(0.0, f64::max)
    }
}

/// Computes the AUC of scored, labelled candidates via mid-rank statistics.
/// Returns 0.5 when either class is empty (no information).
pub fn auc(scored: &[(f64, bool)]) -> f64 {
    let positives = scored.iter().filter(|&&(_, label)| label).count();
    let negatives = scored.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // Sort ascending by score and assign mid-ranks to ties.
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| scored[a].0.total_cmp(&scored[b].0));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scored[order[j + 1]].0 == scored[order[i]].0 {
            j += 1;
        }
        // ranks are 1-based; mid-rank of the tie group [i, j]
        let mid_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if scored[idx].1 {
                rank_sum_pos += mid_rank;
            }
        }
        i = j + 1;
    }
    let n_pos = positives as f64;
    let n_neg = negatives as f64;
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Computes the full ROC curve (and AUC) of scored, labelled candidates.
pub fn roc_curve(scored: &[(f64, bool)]) -> RocCurve {
    let positives = scored.iter().filter(|&&(_, label)| label).count();
    let negatives = scored.len() - positives;
    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0 }];
    if positives == 0 || negatives == 0 {
        points.push(RocPoint { fpr: 1.0, tpr: 1.0 });
        return RocCurve { points, auc: 0.5 };
    }
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0usize;
    while i < sorted.len() {
        // process tie groups together so the curve is threshold-consistent
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        for &(_, label) in &sorted[i..=j] {
            if label {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        points.push(RocPoint {
            fpr: fp as f64 / negatives as f64,
            tpr: tp as f64 / positives as f64,
        });
        i = j + 1;
    }
    RocCurve {
        points,
        auc: auc(scored),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
        assert!((auc(&scored) - 1.0).abs() < 1e-12);
        let curve = roc_curve(&scored);
        assert!((curve.auc - 1.0).abs() < 1e-12);
        assert!((curve.tpr_at_fpr(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let scored = vec![(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!(auc(&scored).abs() < 1e-12);
    }

    #[test]
    fn random_interleaving_has_auc_half() {
        let scored = vec![(0.9, true), (0.8, false), (0.7, true), (0.6, false)];
        // positives beat negatives in 3 of 4 comparisons? (0.9 > 0.8, 0.9 > 0.6,
        // 0.7 > 0.6 yes; 0.7 > 0.8 no) => 3/4
        assert!((auc(&scored) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_ties_give_auc_half() {
        let scored = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((auc(&scored) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_half() {
        assert_eq!(auc(&[]), 0.5);
        assert_eq!(auc(&[(0.4, true)]), 0.5);
        assert_eq!(auc(&[(0.4, false), (0.2, false)]), 0.5);
    }

    #[test]
    fn curve_starts_at_origin_and_ends_at_one_one() {
        let scored = vec![(0.9, true), (0.5, false), (0.4, true), (0.2, false)];
        let curve = roc_curve(&scored);
        assert_eq!(
            curve.points.first().unwrap(),
            &RocPoint { fpr: 0.0, tpr: 0.0 }
        );
        let last = curve.points.last().unwrap();
        assert!((last.fpr - 1.0).abs() < 1e-12 && (last.tpr - 1.0).abs() < 1e-12);
        // monotone non-decreasing in both coordinates
        for w in curve.points.windows(2) {
            assert!(w[1].fpr >= w[0].fpr - 1e-12);
            assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
    }

    #[test]
    fn auc_matches_trapezoid_area_of_the_curve() {
        let scored = vec![
            (0.95, true),
            (0.9, false),
            (0.85, true),
            (0.8, true),
            (0.7, false),
            (0.6, true),
            (0.5, false),
            (0.4, false),
            (0.3, true),
            (0.2, false),
        ];
        let curve = roc_curve(&scored);
        let mut area = 0.0;
        for w in curve.points.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        assert!(
            (area - curve.auc).abs() < 1e-9,
            "trapezoid {area} vs rank {}",
            curve.auc
        );
    }

    #[test]
    fn tpr_at_fpr_reads_the_expected_operating_point() {
        let scored = vec![
            (0.9, true),
            (0.8, true),
            (0.7, false),
            (0.6, true),
            (0.1, false),
        ];
        let curve = roc_curve(&scored);
        // at fpr = 0 the curve already reaches tpr = 2/3
        assert!((curve.tpr_at_fpr(0.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve.tpr_at_fpr(0.6) - 1.0).abs() < 1e-12);
    }
}

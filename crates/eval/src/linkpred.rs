//! Link prediction with 2-way joins (Section VII-B.2, Figure 6, Table IV).
//!
//! Given a *test graph* `T` (some cross-set edges removed) and the *true
//! graph* `G`, every candidate pair `(p, q)` that is **not** already
//! connected in `T` is scored with its DHT value computed on `T`; the pair
//! is a positive if it is connected in `G` (i.e. its edge was held out) and
//! a negative otherwise.  Ranking quality is summarised by the ROC curve and
//! its AUC.

use dht_graph::{Graph, NodeSet};
use dht_walks::backward::backward_dht_all_sources;
use dht_walks::DhtParams;

use crate::roc::{roc_curve, RocCurve};

/// Outcome of a link-prediction evaluation.
#[derive(Debug, Clone)]
pub struct LinkPrediction {
    /// ROC curve over all unlinked candidate pairs.
    pub roc: RocCurve,
    /// Number of positive candidates (held-out edges).
    pub positives: usize,
    /// Number of negative candidates.
    pub negatives: usize,
}

impl LinkPrediction {
    /// Area under the ROC curve.
    pub fn auc(&self) -> f64 {
        self.roc.auc
    }
}

/// Scores every candidate pair of `(p, q)` on the test graph and labels it
/// against the true graph.
///
/// The scores are computed with backward walks on `T` (one per target node),
/// exactly like a full 2-way join would; varying `k` in the paper's top-k
/// join corresponds to sweeping a threshold over this ranking, which is what
/// the ROC curve captures.
pub fn evaluate(
    true_graph: &Graph,
    test_graph: &Graph,
    p: &NodeSet,
    q: &NodeSet,
    params: &DhtParams,
    d: usize,
) -> LinkPrediction {
    evaluate_with(true_graph, test_graph, p, q, |graph, target| {
        backward_dht_all_sources(graph, params, target, d)
    })
}

/// Like [`evaluate`], but with an arbitrary similarity: `score_to_target`
/// must return, for a target node `q`, the similarity of **every** node of
/// the test graph towards `q` (indexed by node id).
///
/// This is the hook the measure-comparison experiments use to rank DHT
/// against Personalized PageRank, SimRank, PathSim or the plain truncated
/// hitting time on the same train/test split: the candidate enumeration,
/// labelling and ROC computation are shared, only the scoring changes.
pub fn evaluate_with(
    true_graph: &Graph,
    test_graph: &Graph,
    p: &NodeSet,
    q: &NodeSet,
    score_to_target: impl Fn(&Graph, dht_graph::NodeId) -> Vec<f64>,
) -> LinkPrediction {
    let mut scored: Vec<(f64, bool)> = Vec::new();
    for qn in q.iter() {
        let scores = score_to_target(test_graph, qn);
        for pn in p.iter() {
            if pn == qn {
                continue;
            }
            // Only pairs that are not already linked in T are predictions.
            if test_graph.has_edge_either(pn, qn) {
                continue;
            }
            let label = true_graph.has_edge_either(pn, qn);
            let score = scores.get(pn.index()).copied().unwrap_or(f64::NEG_INFINITY);
            scored.push((score, label));
        }
    }
    let positives = scored.iter().filter(|&&(_, l)| l).count();
    let negatives = scored.len() - positives;
    LinkPrediction {
        roc: roc_curve(&scored),
        positives,
        negatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_datasets::split::link_prediction_split;
    use dht_datasets::yeast::{self, YeastConfig};
    use dht_datasets::Scale;
    use dht_graph::{GraphBuilder, NodeId};

    #[test]
    fn predicts_held_out_edges_on_a_community_dataset() {
        let d = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
        let sets = d.largest_sets(2);
        let (p, q) = (sets[0].clone(), sets[1].clone());
        let split = link_prediction_split(&d.graph, &p, &q, 0.5, 11).unwrap();
        assert!(
            !split.removed.is_empty(),
            "the split must hold out some edges"
        );
        let params = DhtParams::paper_default();
        let result = evaluate(&d.graph, &split.test_graph, &p, &q, &params, 8);
        assert_eq!(result.positives, split.removed.len());
        assert!(result.negatives > 0);
        assert!(
            result.auc() > 0.6,
            "DHT should beat random guessing on a community graph, got {}",
            result.auc()
        );
    }

    #[test]
    fn perfect_separation_on_a_hand_built_graph() {
        // P = {0}, Q = {2, 4}.  The held-out edge (0,2) is two hops away via
        // node 1; node 4 is far away, so the positive outranks the negative.
        let mut b = GraphBuilder::with_nodes(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let test_graph = b.build().unwrap();
        // true graph additionally has the edge (0, 2)
        let mut b = GraphBuilder::with_nodes(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let true_graph = b.build().unwrap();
        let p = NodeSet::new("P", [NodeId(0)]);
        let q = NodeSet::new("Q", [NodeId(2), NodeId(4)]);
        let params = DhtParams::paper_default();
        let result = evaluate(&true_graph, &test_graph, &p, &q, &params, 8);
        assert_eq!(result.positives, 1);
        assert_eq!(result.negatives, 1);
        assert!((result.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn already_linked_pairs_are_not_candidates() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_undirected_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let p = NodeSet::new("P", [NodeId(0)]);
        let q = NodeSet::new("Q", [NodeId(1), NodeId(2)]);
        let params = DhtParams::paper_default();
        // same graph as both true and test: the only unlinked cross pair is (0,2)
        let result = evaluate(&g, &g, &p, &q, &params, 6);
        assert_eq!(result.positives + result.negatives, 1);
        assert_eq!(result.positives, 0);
    }

    #[test]
    fn auc_improves_with_informative_lambda() {
        // Sanity: with a tiny decay (lambda close to 0) only direct links
        // count, which cannot rank unlinked pairs; a moderate lambda uses
        // longer paths and should not do worse.
        let d = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
        let sets = d.largest_sets(2);
        let (p, q) = (sets[0].clone(), sets[1].clone());
        let split = link_prediction_split(&d.graph, &p, &q, 0.5, 13).unwrap();
        let shallow = evaluate(
            &d.graph,
            &split.test_graph,
            &p,
            &q,
            &DhtParams::dht_lambda(0.01),
            2,
        );
        let moderate = evaluate(
            &d.graph,
            &split.test_graph,
            &p,
            &q,
            &DhtParams::dht_lambda(0.4),
            10,
        );
        assert!(moderate.auc() + 1e-9 >= shallow.auc() || moderate.auc() > 0.6);
    }

    #[test]
    fn evaluate_with_matches_evaluate_for_dht_scoring() {
        let d = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
        let sets = d.largest_sets(2);
        let (p, q) = (sets[0].clone(), sets[1].clone());
        let split = link_prediction_split(&d.graph, &p, &q, 0.5, 17).unwrap();
        let params = DhtParams::paper_default();
        let direct = evaluate(&d.graph, &split.test_graph, &p, &q, &params, 8);
        let via_hook = evaluate_with(&d.graph, &split.test_graph, &p, &q, |g, t| {
            backward_dht_all_sources(g, &params, t, 8)
        });
        assert_eq!(direct.positives, via_hook.positives);
        assert_eq!(direct.negatives, via_hook.negatives);
        assert!((direct.auc() - via_hook.auc()).abs() < 1e-12);
    }

    #[test]
    fn evaluate_with_handles_short_score_vectors() {
        // A scoring hook that returns too few entries must not panic; missing
        // entries are treated as the lowest possible score.
        let mut b = GraphBuilder::with_nodes(4);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_undirected_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let p = NodeSet::new("P", [NodeId(0), NodeId(3)]);
        let q = NodeSet::new("Q", [NodeId(1), NodeId(2)]);
        // candidates: (0,2) and (3,1); the linked pairs (0,1) and (3,2) are skipped
        let result = evaluate_with(&g, &g, &p, &q, |_, _| vec![0.5]);
        assert_eq!(result.positives, 0);
        assert_eq!(result.negatives, 2);
    }
}

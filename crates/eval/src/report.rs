//! Plain-text table formatting for the experiment binaries.
//!
//! The benchmark harness prints the same rows and series the paper's tables
//! and figures report; this module keeps the formatting consistent (fixed
//! width columns, right-aligned numbers) and easy to diff between runs.

/// Formats a table with a header row.  Columns are sized to their widest
/// cell; the first column is left-aligned and the rest are right-aligned.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(columns) {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(total_width));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Formats a duration in seconds with three significant decimals, matching
/// the "running time (sec)" axes of the paper's figures.
pub fn seconds(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

/// Formats an AUC or rate with four decimals, as in Table IV.
pub fn rate(value: f64) -> String {
    format!("{value:.4}")
}

/// A heading followed by an underline, used to separate experiments in the
/// combined report.
pub fn heading(title: &str) -> String {
    format!("\n{}\n{}\n", title, "=".repeat(title.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_all_cells() {
        let table = format_table(
            &["algo", "time (s)"],
            &[
                vec!["NL".to_string(), "12.000".to_string()],
                vec!["PJ-i".to_string(), "0.125".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("NL") && lines[2].contains("12.000"));
        assert!(lines[3].starts_with("PJ-i"));
        // right alignment: both time cells end at the same column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(seconds(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(rate(0.94532), "0.9453");
        let h = heading("Table IV");
        assert!(h.contains("Table IV"));
        assert!(h.contains("========"));
    }

    #[test]
    fn table_handles_rows_shorter_than_headers() {
        let table = format_table(&["a", "b", "c"], &[vec!["x".to_string()]]);
        assert!(table.contains('x'));
    }
}

//! # dht-eval
//!
//! Effectiveness evaluation of DHT joins (Section VII-B of the paper):
//!
//! * [`roc`] — ROC curves and AUC computed from scored, labelled candidates
//!   (the paper's quality metrics, "robust to the skewness between possible
//!   and existing edges");
//! * [`linkpred`] — the link-prediction experiment: run a 2-way join on the
//!   test graph `T`, check predicted pairs against the true graph `G`
//!   (Figure 6, Table IV left column);
//! * [`cliquepred`] — the 3-clique-prediction experiment: run a triangle
//!   3-way join on `T`, check predicted triples against the 3-cliques of `G`
//!   (Table IV right column);
//! * [`report`] — plain-text table formatting shared by the experiment
//!   binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cliquepred;
pub mod linkpred;
pub mod report;
pub mod roc;

pub use roc::{auc, roc_curve, RocCurve, RocPoint};

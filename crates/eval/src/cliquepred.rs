//! 3-clique prediction with triangle 3-way joins (Section VII-B.3, Table IV).
//!
//! The test graph `T` is the true graph `G` with one edge removed from every
//! 3-clique spanning the node sets `(P, Q, R)`.  A triangle 3-way join on
//! `T` ranks candidate triples; a triple is a positive if it forms a
//! 3-clique in `G`.  Since the ROC/AUC computation needs scores for
//! negatives as well as positives, the full triple ranking is materialised
//! (six backward-walk score matrices, one per directed query edge, combined
//! with the MIN aggregate — exactly the scoring an exhaustive triangle join
//! would produce).

use dht_graph::{Graph, NodeId, NodeSet};
use dht_walks::backward::backward_dht_all_sources;
use dht_walks::DhtParams;

use dht_core::Aggregate;

use crate::roc::{roc_curve, RocCurve};

/// Outcome of a 3-clique-prediction evaluation.
#[derive(Debug, Clone)]
pub struct CliquePrediction {
    /// ROC curve over all candidate triples not already complete in `T`.
    pub roc: RocCurve,
    /// Number of positive triples (3-cliques of `G` broken by the split).
    pub positives: usize,
    /// Number of negative triples.
    pub negatives: usize,
}

impl CliquePrediction {
    /// Area under the ROC curve.
    pub fn auc(&self) -> f64 {
        self.roc.auc
    }
}

/// Scores of all pairs from `sources` to `targets` on `graph`:
/// `matrix[i][j] = h_d(sources[i], targets[j])`.
fn score_matrix(
    graph: &Graph,
    params: &DhtParams,
    sources: &NodeSet,
    targets: &NodeSet,
    d: usize,
) -> Vec<Vec<f64>> {
    let mut matrix = vec![vec![params.min_score(); targets.len()]; sources.len()];
    for (j, t) in targets.iter().enumerate() {
        let scores = backward_dht_all_sources(graph, params, t, d);
        for (i, s) in sources.iter().enumerate() {
            if s != t {
                matrix[i][j] = scores[s.index()];
            }
        }
    }
    matrix
}

fn is_clique(graph: &Graph, a: NodeId, b: NodeId, c: NodeId) -> bool {
    graph.has_edge_either(a, b) && graph.has_edge_either(b, c) && graph.has_edge_either(a, c)
}

/// Evaluates 3-clique prediction for the triangle query over `(p, q, r)`.
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    true_graph: &Graph,
    test_graph: &Graph,
    p: &NodeSet,
    q: &NodeSet,
    r: &NodeSet,
    params: &DhtParams,
    d: usize,
    aggregate: Aggregate,
) -> CliquePrediction {
    // Six directed score matrices on the test graph, one per triangle edge.
    let pq = score_matrix(test_graph, params, p, q, d);
    let qp = score_matrix(test_graph, params, q, p, d);
    let qr = score_matrix(test_graph, params, q, r, d);
    let rq = score_matrix(test_graph, params, r, q, d);
    let pr = score_matrix(test_graph, params, p, r, d);
    let rp = score_matrix(test_graph, params, r, p, d);

    let mut scored: Vec<(f64, bool)> = Vec::new();
    for (i, pn) in p.iter().enumerate() {
        for (j, qn) in q.iter().enumerate() {
            if pn == qn {
                continue;
            }
            for (l, rn) in r.iter().enumerate() {
                if rn == pn || rn == qn {
                    continue;
                }
                // Triples already complete in T are not predictions.
                if is_clique(test_graph, pn, qn, rn) {
                    continue;
                }
                let score = aggregate
                    .combine(&[pq[i][j], qp[j][i], qr[j][l], rq[l][j], pr[i][l], rp[l][i]]);
                let label = is_clique(true_graph, pn, qn, rn);
                scored.push((score, label));
            }
        }
    }
    let positives = scored.iter().filter(|&&(_, l)| l).count();
    let negatives = scored.len() - positives;
    CliquePrediction {
        roc: roc_curve(&scored),
        positives,
        negatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_datasets::split::clique_prediction_split;
    use dht_datasets::yeast::{self, YeastConfig};
    use dht_datasets::Scale;
    use dht_graph::GraphBuilder;

    #[test]
    fn broken_cliques_outrank_random_triples() {
        let d = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
        let sets = d.largest_sets(3);
        let (p, q, r) = (sets[0].clone(), sets[1].clone(), sets[2].clone());
        let split = clique_prediction_split(&d.graph, &p, &q, &r, 21).unwrap();
        if split.cliques.is_empty() {
            // extremely sparse tiny instance; nothing to assert
            return;
        }
        let params = DhtParams::paper_default();
        let result = evaluate(
            &d.graph,
            &split.test_graph,
            &p,
            &q,
            &r,
            &params,
            8,
            Aggregate::Min,
        );
        assert!(result.positives > 0);
        assert!(result.negatives > 0);
        assert!(
            result.auc() > 0.7,
            "clique prediction should be clearly better than chance, got {}",
            result.auc()
        );
    }

    #[test]
    fn hand_built_example_ranks_the_broken_clique_first() {
        // True graph: triangle (0,1,2) plus a path to far nodes 3,4.
        let mut b = GraphBuilder::with_nodes(5);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let true_graph = b.build().unwrap();
        // Test graph: the clique edge (0,2) is removed.
        let mut b = GraphBuilder::with_nodes(5);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let test_graph = b.build().unwrap();
        let p = NodeSet::new("P", [NodeId(0)]);
        let q = NodeSet::new("Q", [NodeId(1), NodeId(3)]);
        let r = NodeSet::new("R", [NodeId(2), NodeId(4)]);
        let params = DhtParams::paper_default();
        let result = evaluate(
            &true_graph,
            &test_graph,
            &p,
            &q,
            &r,
            &params,
            8,
            Aggregate::Min,
        );
        // candidates: (0,1,2)+ (0,1,4)- (0,3,2)- (0,3,4)-  => positive must rank first
        assert_eq!(result.positives, 1);
        assert!(result.negatives >= 2);
        assert!((result.auc() - 1.0).abs() < 1e-9, "auc = {}", result.auc());
    }

    #[test]
    fn triples_complete_in_the_test_graph_are_excluded() {
        // Triangle present in both graphs: nothing to predict.
        let mut b = GraphBuilder::with_nodes(3);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.add_undirected_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let p = NodeSet::new("P", [NodeId(0)]);
        let q = NodeSet::new("Q", [NodeId(1)]);
        let r = NodeSet::new("R", [NodeId(2)]);
        let params = DhtParams::paper_default();
        let result = evaluate(&g, &g, &p, &q, &r, &params, 6, Aggregate::Min);
        assert_eq!(result.positives + result.negatives, 0);
        assert_eq!(result.auc(), 0.5);
    }

    #[test]
    fn sum_and_min_aggregates_both_work() {
        let d = yeast::generate(&YeastConfig::for_scale(Scale::Tiny));
        let sets = d.largest_sets(3);
        let (p, q, r) = (sets[0].clone(), sets[1].clone(), sets[2].clone());
        let split = clique_prediction_split(&d.graph, &p, &q, &r, 22).unwrap();
        if split.cliques.is_empty() {
            return;
        }
        let params = DhtParams::paper_default();
        let min = evaluate(
            &d.graph,
            &split.test_graph,
            &p,
            &q,
            &r,
            &params,
            8,
            Aggregate::Min,
        );
        let sum = evaluate(
            &d.graph,
            &split.test_graph,
            &p,
            &q,
            &r,
            &params,
            8,
            Aggregate::Sum,
        );
        assert!(min.auc() > 0.5);
        assert!(sum.auc() > 0.5);
    }
}

//! Error type for join configuration problems.

use std::fmt;

/// Errors produced when configuring or running a join.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query-graph edge referenced a node-set index outside `0..n`.
    InvalidQueryNode {
        /// The offending node-set index.
        index: usize,
        /// Number of node sets declared in the query graph.
        node_sets: usize,
    },
    /// A query-graph edge connected a node set to itself.
    SelfLoopQueryEdge(usize),
    /// The same directed query edge was added twice.
    DuplicateQueryEdge(usize, usize),
    /// The number of node sets supplied to an n-way join did not match the
    /// query graph.
    NodeSetCountMismatch {
        /// Node sets expected by the query graph.
        expected: usize,
        /// Node sets actually supplied.
        actual: usize,
    },
    /// The query graph has no edges, so there is nothing to score.
    EmptyQueryGraph,
    /// PJ / PJ-i require a weakly connected query graph to expand candidate
    /// answers across candidate buffers.
    DisconnectedQueryGraph,
    /// One of the supplied node sets is empty.
    EmptyNodeSet(String),
    /// A query asked for zero answers (`k = 0`), which can never return
    /// anything; [`crate::spec::QuerySpec::validate`] rejects it up front.
    ZeroResultSize,
    /// An error attributed to one query of a batch: `index` is the
    /// zero-based position of the offending query in the submitted slice.
    AtQuery {
        /// Zero-based index of the offending query in the batch.
        index: usize,
        /// The underlying error.
        source: Box<CoreError>,
    },
}

impl CoreError {
    /// Wraps `source` as the error of batch query `index` (idempotent: an
    /// error already attributed to a query keeps its original index, so
    /// nested batch layers never re-attribute it).
    pub fn at_query(index: usize, source: CoreError) -> CoreError {
        match source {
            already @ CoreError::AtQuery { .. } => already,
            other => CoreError::AtQuery {
                index,
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidQueryNode { index, node_sets } => {
                write!(
                    f,
                    "query edge references node set {index}, but only {node_sets} node sets exist"
                )
            }
            CoreError::SelfLoopQueryEdge(i) => {
                write!(f, "query edge connects node set {i} to itself")
            }
            CoreError::DuplicateQueryEdge(i, j) => {
                write!(f, "duplicate query edge ({i}, {j})")
            }
            CoreError::NodeSetCountMismatch { expected, actual } => {
                write!(
                    f,
                    "query graph expects {expected} node sets but {actual} were supplied"
                )
            }
            CoreError::EmptyQueryGraph => write!(f, "query graph has no edges"),
            CoreError::DisconnectedQueryGraph => {
                write!(f, "query graph must be weakly connected for partial joins")
            }
            CoreError::EmptyNodeSet(name) => write!(f, "node set '{name}' is empty"),
            CoreError::ZeroResultSize => {
                write!(f, "k = 0 requests no answers; ask for at least one")
            }
            CoreError::AtQuery { index, source } => {
                write!(f, "query #{index}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_offending_values() {
        assert!(CoreError::InvalidQueryNode {
            index: 7,
            node_sets: 3
        }
        .to_string()
        .contains('7'));
        assert!(CoreError::SelfLoopQueryEdge(2).to_string().contains('2'));
        assert!(CoreError::DuplicateQueryEdge(1, 2)
            .to_string()
            .contains("(1, 2)"));
        assert!(CoreError::NodeSetCountMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains('3'));
        assert!(CoreError::EmptyNodeSet("DB".into())
            .to_string()
            .contains("DB"));
        assert!(!CoreError::EmptyQueryGraph.to_string().is_empty());
        assert!(!CoreError::DisconnectedQueryGraph.to_string().is_empty());
        assert!(!CoreError::ZeroResultSize.to_string().is_empty());
    }

    #[test]
    fn at_query_carries_the_index_and_never_nests() {
        let inner = CoreError::EmptyNodeSet("P".into());
        let wrapped = CoreError::at_query(3, inner.clone());
        let text = wrapped.to_string();
        assert!(text.contains("query #3"), "{text}");
        assert!(text.contains("'P'"), "{text}");
        // Re-wrapping keeps the original attribution.
        let rewrapped = CoreError::at_query(7, wrapped.clone());
        assert_eq!(rewrapped, wrapped);
    }
}

//! Monotone aggregate functions over per-edge DHT scores (Definition 2).
//!
//! The aggregate score `A.f` of a candidate answer is a monotone function of
//! the `|E_Q|` DHT scores selected by the query graph edges.  Monotonicity
//! (each input non-decreasing ⇒ output non-decreasing) is what makes the
//! corner-bound rank join of AP / PJ / PJ-i correct, so only monotone
//! aggregates are provided.

/// A monotone aggregate over the per-edge DHT scores of a candidate answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Sum of the per-edge scores ("overall closeness" in the paper).
    Sum,
    /// Minimum of the per-edge scores (the paper's experimental default):
    /// the answer is only as good as its weakest pair.
    Min,
    /// Maximum of the per-edge scores.
    Max,
    /// Arithmetic mean of the per-edge scores.
    Mean,
}

impl Aggregate {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Sum => "SUM",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
            Aggregate::Mean => "MEAN",
        }
    }

    /// Combines the per-edge scores into the aggregate score.
    ///
    /// An empty slice yields `f64::NEG_INFINITY` (no edges means no evidence
    /// at all), but valid query graphs always have at least one edge.
    pub fn combine(self, scores: &[f64]) -> f64 {
        if scores.is_empty() {
            return f64::NEG_INFINITY;
        }
        match self {
            Aggregate::Sum => scores.iter().sum(),
            Aggregate::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Mean => scores.iter().sum::<f64>() / scores.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: &[f64] = &[0.5, -0.2, 0.3];

    #[test]
    fn combine_matches_definitions() {
        assert!((Aggregate::Sum.combine(SCORES) - 0.6).abs() < 1e-12);
        assert!((Aggregate::Min.combine(SCORES) - (-0.2)).abs() < 1e-12);
        assert!((Aggregate::Max.combine(SCORES) - 0.5).abs() < 1e-12);
        assert!((Aggregate::Mean.combine(SCORES) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_input_is_identity_for_all_aggregates() {
        for agg in [
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
        ] {
            assert!((agg.combine(&[0.7]) - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input_is_negative_infinity() {
        for agg in [
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
        ] {
            assert_eq!(agg.combine(&[]), f64::NEG_INFINITY);
        }
    }

    #[test]
    fn all_aggregates_are_monotone() {
        // Increasing any single coordinate never decreases the aggregate.
        let base = [0.1, 0.4, -0.3, 0.2];
        for agg in [
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
        ] {
            let f0 = agg.combine(&base);
            for i in 0..base.len() {
                let mut bumped = base;
                bumped[i] += 0.5;
                assert!(
                    agg.combine(&bumped) >= f0 - 1e-12,
                    "{} is not monotone in coordinate {i}",
                    agg.name()
                );
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Aggregate::Sum.name(),
            Aggregate::Min.name(),
            Aggregate::Max.name(),
            Aggregate::Mean.name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}

//! AP: the All Pairs n-way join (Section III-B).
//!
//! For every query edge `(R_i, R_j)` the *complete* list of `|R_i|·|R_j|`
//! DHT scores is computed and sorted; a Pull/Bound Rank Join then combines
//! the lists into the top-k answers.  Much cheaper than NL (each pair is
//! scored once instead of once per candidate tuple), but still wasteful: the
//! paper observes that under a wide range of `k` less than 1% of the 2-way
//! results are ever used.

use dht_graph::{Graph, NodeSet};
use dht_walks::QueryCtx;

use crate::answer::PairScore;
use crate::query::QueryGraph;
use crate::stats::NWayStats;
use crate::twoway::TwoWayAlgorithm;
use crate::Result;

use super::pbrj::{self, EdgeListProvider};
use super::{NWayConfig, NWayOutput};

/// Provider backed by fully materialised per-edge lists.
struct FullListProvider {
    lists: Vec<Vec<PairScore>>,
    floor: f64,
}

impl EdgeListProvider for FullListProvider {
    fn get(&mut self, edge: usize, index: usize, _stats: &mut NWayStats) -> Option<PairScore> {
        self.lists[edge].get(index).copied()
    }
    fn floor(&self) -> f64 {
        self.floor
    }
}

/// Runs AP as a one-shot call with the given inner 2-way join algorithm
/// (the paper uses F-BJ; `BackwardBasic` produces identical lists faster).
pub fn run(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    two_way: TwoWayAlgorithm,
) -> Result<NWayOutput> {
    run_with_ctx(
        graph,
        config,
        query,
        node_sets,
        two_way,
        &mut QueryCtx::one_shot(),
    )
}

/// Runs AP through a session context.
///
/// The per-edge 2-way joins are independent of one another; with
/// `config.threads > 1` and a multi-edge query graph they run concurrently
/// (each join serial inside, so workers are not oversubscribed), and their
/// outputs are absorbed in edge order — identical to a serial run.  In the
/// concurrent case each worker forks the session context
/// ([`QueryCtx::fork`]): when the session is backed by a cross-session
/// `SharedColumnCache`, the workers read and fill that cache concurrently,
/// so query edges that share a node set reuse each other's backward columns
/// even on the parallel path (a session-private cache degrades to one-shot
/// worker contexts, as before).  The serial path threads the session
/// context through every edge directly.
pub fn run_with_ctx(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    two_way: TwoWayAlgorithm,
    ctx: &mut QueryCtx,
) -> Result<NWayOutput> {
    query.validate_node_sets(node_sets)?;
    let mut stats = NWayStats::default();
    let threads = dht_par::effective_threads(config.threads);

    let edges: Vec<(usize, usize)> = query.edges().to_vec();
    let outputs = if threads > 1 && edges.len() > 1 {
        // Outer-level parallelism over query edges; inner joins run serial
        // so total concurrency stays at the requested thread count.  Each
        // worker forks the session context once, so shared-cache sessions
        // keep warming each other across edges and threads.
        let inner = config.two_way().with_threads(1);
        let worker_ctx = &*ctx;
        dht_par::parallel_map_init(
            config.threads,
            &edges,
            || worker_ctx.fork(),
            |ctx, _, &(i, j)| {
                let p = &node_sets[i];
                let q = &node_sets[j];
                two_way.top_k_with_ctx(graph, &inner, p, q, p.len() * q.len(), ctx)
            },
        )
    } else {
        let inner = config.two_way();
        edges
            .iter()
            .map(|&(i, j)| {
                let p = &node_sets[i];
                let q = &node_sets[j];
                two_way.top_k_with_ctx(graph, &inner, p, q, p.len() * q.len(), ctx)
            })
            .collect()
    };

    let mut lists = Vec::with_capacity(edges.len());
    for out in outputs {
        stats.two_way_joins += 1;
        stats.two_way.absorb(&out.stats);
        lists.push(out.pairs);
    }

    let mut provider = FullListProvider {
        lists,
        floor: config.params.min_score(),
    };
    let answers = pbrj::run(
        query,
        node_sets,
        config.aggregate,
        config.k,
        &mut provider,
        &mut stats,
    )?;
    Ok(NWayOutput { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::multiway::nl;
    use dht_graph::generators::{erdos_renyi, planted_partition, PlantedPartitionConfig};
    use dht_graph::NodeId;

    fn fixture() -> (Graph, Vec<NodeSet>) {
        let g = erdos_renyi(18, 60, 23);
        let sets = vec![
            NodeSet::new("A", [NodeId(0), NodeId(1), NodeId(2)]),
            NodeSet::new("B", [NodeId(6), NodeId(7), NodeId(8)]),
            NodeSet::new("C", [NodeId(12), NodeId(13)]),
        ];
        (g, sets)
    }

    #[test]
    fn agrees_with_nested_loop_on_a_chain() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        for aggregate in [Aggregate::Min, Aggregate::Sum] {
            let config = NWayConfig::paper_default()
                .with_k(6)
                .with_aggregate(aggregate);
            let reference = nl::run(&g, &config, &query, &sets, true).unwrap();
            let ap = run(&g, &config, &query, &sets, TwoWayAlgorithm::ForwardBasic).unwrap();
            assert_eq!(reference.answers.len(), ap.answers.len());
            for (a, b) in reference.answers.iter().zip(ap.answers.iter()) {
                assert!(
                    (a.score - b.score).abs() < 1e-10,
                    "agg={aggregate:?}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_nested_loop_on_a_triangle() {
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 3,
            community_size: 8,
            avg_internal_degree: 4.0,
            avg_external_degree: 2.0,
            weighted: true,
            seed: 42,
        });
        let sets: Vec<NodeSet> = cg.communities.clone();
        let query = QueryGraph::triangle();
        let config = NWayConfig::paper_default().with_k(5);
        let reference = nl::run(&cg.graph, &config, &query, &sets, true).unwrap();
        let ap = run(
            &cg.graph,
            &config,
            &query,
            &sets,
            TwoWayAlgorithm::BackwardBasic,
        )
        .unwrap();
        assert_eq!(reference.answers.len(), ap.answers.len());
        for (a, b) in reference.answers.iter().zip(ap.answers.iter()) {
            assert!((a.score - b.score).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn forward_and_backward_inner_joins_give_identical_answers() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        let config = NWayConfig::paper_default().with_k(8);
        let fwd = run(&g, &config, &query, &sets, TwoWayAlgorithm::ForwardBasic).unwrap();
        let bwd = run(&g, &config, &query, &sets, TwoWayAlgorithm::BackwardBasic).unwrap();
        assert_eq!(fwd.answers.len(), bwd.answers.len());
        for (a, b) in fwd.answers.iter().zip(bwd.answers.iter()) {
            assert_eq!(a.nodes, b.nodes);
            assert!((a.score - b.score).abs() < 1e-10);
        }
    }

    #[test]
    fn two_way_join_count_matches_query_edges() {
        let (g, sets) = fixture();
        let query = QueryGraph::triangle();
        let config = NWayConfig::paper_default().with_k(3);
        let out = run(&g, &config, &query, &sets, TwoWayAlgorithm::BackwardBasic).unwrap();
        assert_eq!(out.stats.two_way_joins, 6);
    }
}

//! PJ: the Partial Join (Algorithm 1).
//!
//! PJ evaluates a top-`m` 2-way join per query edge and rank-joins the
//! resulting lists.  If the rank join needs more pairs than the top-`m` list
//! of some edge provides, `getNextNodePair` re-runs that edge's 2-way join
//! with a larger result size and appends the newly revealed pair — this is
//! the expensive part that PJ-i later removes.

use dht_graph::{Graph, NodeSet};
use dht_walks::QueryCtx;

use crate::answer::PairScore;
use crate::query::QueryGraph;
use crate::stats::NWayStats;
use crate::twoway::{TwoWayAlgorithm, TwoWayConfig};
use crate::Result;

use super::pbrj::{self, EdgeListProvider};
use super::{NWayConfig, NWayOutput};

/// Provider that starts from top-`m` lists and re-runs deeper joins on
/// demand.
struct RestartingProvider<'a> {
    graph: &'a Graph,
    two_way_config: TwoWayConfig,
    two_way: TwoWayAlgorithm,
    node_sets: &'a [NodeSet],
    edges: Vec<(usize, usize)>,
    lists: Vec<Vec<PairScore>>,
    /// Edges whose underlying pair domain has been fully revealed.
    complete: Vec<bool>,
    floor: f64,
    /// Session context the restarted joins run through — the warm column
    /// cache is what keeps the re-runs from repeating every backward walk.
    ctx: &'a mut QueryCtx,
}

impl EdgeListProvider for RestartingProvider<'_> {
    fn get(&mut self, edge: usize, index: usize, stats: &mut NWayStats) -> Option<PairScore> {
        if index < self.lists[edge].len() {
            return Some(self.lists[edge][index]);
        }
        if self.complete[edge] {
            return None;
        }
        // getNextNodePair for PJ: run a fresh top-(index + 1) 2-way join.
        stats.next_pair_calls += 1;
        let (i, j) = self.edges[edge];
        let p = &self.node_sets[i];
        let q = &self.node_sets[j];
        let wanted = index + 1;
        if wanted > p.len() * q.len() {
            self.complete[edge] = true;
            return None;
        }
        let out =
            self.two_way
                .top_k_with_ctx(self.graph, &self.two_way_config, p, q, wanted, self.ctx);
        stats.two_way_joins += 1;
        stats.two_way.absorb(&out.stats);
        if out.pairs.len() <= index {
            // The deeper join did not reveal any additional pair (every
            // remaining pair is unreachable); treat the list as complete.
            self.complete[edge] = true;
            return None;
        }
        self.lists[edge] = out.pairs;
        Some(self.lists[edge][index])
    }

    fn floor(&self) -> f64 {
        self.floor
    }
}

/// Runs PJ as a one-shot call with the given `m` and inner 2-way join
/// algorithm (the paper's default is B-IDJ-Y).
pub fn run(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    m: usize,
    two_way: TwoWayAlgorithm,
) -> Result<NWayOutput> {
    run_with_ctx(
        graph,
        config,
        query,
        node_sets,
        m,
        two_way,
        &mut QueryCtx::one_shot(),
    )
}

/// Runs PJ through a session context: both the initial top-`m` joins and the
/// restarted deeper joins of `getNextNodePair` share the context's caches,
/// so a restart only recomputes the columns the deeper join actually adds.
pub fn run_with_ctx(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    m: usize,
    two_way: TwoWayAlgorithm,
    ctx: &mut QueryCtx,
) -> Result<NWayOutput> {
    query.validate_node_sets(node_sets)?;
    let mut stats = NWayStats::default();
    let two_way_config = config.two_way();

    // Step 2–4: a top-m 2-way join per query edge.
    let mut lists = Vec::with_capacity(query.edge_count());
    for &(i, j) in query.edges() {
        let p = &node_sets[i];
        let q = &node_sets[j];
        let out = two_way.top_k_with_ctx(graph, &two_way_config, p, q, m, ctx);
        stats.two_way_joins += 1;
        stats.two_way.absorb(&out.stats);
        lists.push(out.pairs);
    }

    let mut provider = RestartingProvider {
        graph,
        two_way_config,
        two_way,
        node_sets,
        edges: query.edges().to_vec(),
        lists,
        complete: vec![false; query.edge_count()],
        floor: config.params.min_score(),
        ctx,
    };
    let answers = pbrj::run(
        query,
        node_sets,
        config.aggregate,
        config.k,
        &mut provider,
        &mut stats,
    )?;
    Ok(NWayOutput { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::multiway::{ap, nl};
    use dht_graph::generators::{planted_partition, PlantedPartitionConfig};

    fn fixture() -> (Graph, Vec<NodeSet>) {
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 3,
            community_size: 10,
            avg_internal_degree: 5.0,
            avg_external_degree: 2.0,
            weighted: true,
            seed: 99,
        });
        (cg.graph, cg.communities)
    }

    #[test]
    fn matches_nl_and_ap_on_a_chain() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        for aggregate in [Aggregate::Min, Aggregate::Sum] {
            let config = NWayConfig::paper_default()
                .with_k(5)
                .with_aggregate(aggregate);
            let reference = nl::run(&g, &config, &query, &sets, true).unwrap();
            let pj = run(&g, &config, &query, &sets, 5, TwoWayAlgorithm::BackwardIdjY).unwrap();
            assert_eq!(reference.answers.len(), pj.answers.len());
            for (a, b) in reference.answers.iter().zip(pj.answers.iter()) {
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "agg={aggregate:?}: {} vs {}",
                    a.score,
                    b.score
                );
            }
            let ap_out =
                ap::run(&g, &config, &query, &sets, TwoWayAlgorithm::BackwardBasic).unwrap();
            for (a, b) in ap_out.answers.iter().zip(pj.answers.iter()) {
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn small_m_forces_next_pair_calls_but_keeps_answers_correct() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        let config = NWayConfig::paper_default().with_k(8);
        let reference = nl::run(&g, &config, &query, &sets, true).unwrap();
        let pj = run(&g, &config, &query, &sets, 2, TwoWayAlgorithm::BackwardIdjY).unwrap();
        assert!(
            pj.stats.next_pair_calls > 0,
            "m=2 must exhaust the initial lists"
        );
        assert_eq!(reference.answers.len(), pj.answers.len());
        for (a, b) in reference.answers.iter().zip(pj.answers.iter()) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn large_m_avoids_next_pair_calls() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        let config = NWayConfig::paper_default().with_k(3);
        let pj = run(
            &g,
            &config,
            &query,
            &sets,
            100,
            TwoWayAlgorithm::BackwardIdjY,
        )
        .unwrap();
        assert_eq!(pj.stats.next_pair_calls, 0);
        assert_eq!(pj.answers.len(), 3);
    }

    #[test]
    fn triangle_query_matches_nl() {
        let (g, sets) = fixture();
        let query = QueryGraph::triangle();
        let config = NWayConfig::paper_default().with_k(4);
        let reference = nl::run(&g, &config, &query, &sets, true).unwrap();
        let pj = run(
            &g,
            &config,
            &query,
            &sets,
            10,
            TwoWayAlgorithm::BackwardIdjY,
        )
        .unwrap();
        assert_eq!(reference.answers.len(), pj.answers.len());
        for (a, b) in reference.answers.iter().zip(pj.answers.iter()) {
            assert!((a.score - b.score).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn m_zero_starts_from_empty_lists() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(2);
        let config = NWayConfig::paper_default().with_k(3);
        let reference = nl::run(&g, &config, &query, &sets[..2], true).unwrap();
        let pj = run(
            &g,
            &config,
            &query,
            &sets[..2],
            0,
            TwoWayAlgorithm::BackwardIdjY,
        )
        .unwrap();
        assert_eq!(reference.answers.len(), pj.answers.len());
        for (a, b) in reference.answers.iter().zip(pj.answers.iter()) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        assert!(pj.stats.next_pair_calls > 0);
    }
}

//! Candidate buffers `C_{R_i,R_j}` (Step 11 of Algorithm 1).
//!
//! A candidate buffer stores every node pair pulled so far for one query
//! edge, indexed by both endpoints so that `getCandidate` can extend a
//! partial answer through either side of the edge in `O(matches)`.
//!
//! The paper describes the buffer as a `|R_i| × |R_j|` array; a hash-indexed
//! adjacency representation is equivalent but only uses memory proportional
//! to the number of pairs actually pulled, which for PJ is `m + Δ` rather
//! than `|R_i|·|R_j|`.

use std::collections::HashMap;

use dht_graph::NodeId;

/// Pairs pulled for one query edge, indexed by both endpoints.
#[derive(Debug, Clone, Default)]
pub struct CandidateBuffer {
    by_left: HashMap<u32, Vec<(u32, f64)>>,
    by_right: HashMap<u32, Vec<(u32, f64)>>,
    len: usize,
}

impl CandidateBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a scored pair.  Pairs are expected to be inserted at most
    /// once (the rank join pulls each list entry exactly once).
    pub fn insert(&mut self, left: NodeId, right: NodeId, score: f64) {
        self.by_left
            .entry(left.0)
            .or_default()
            .push((right.0, score));
        self.by_right
            .entry(right.0)
            .or_default()
            .push((left.0, score));
        self.len += 1;
    }

    /// The score of `(left, right)` if that pair has been pulled.
    pub fn score_of(&self, left: NodeId, right: NodeId) -> Option<f64> {
        self.by_left
            .get(&left.0)?
            .iter()
            .find(|&&(r, _)| r == right.0)
            .map(|&(_, s)| s)
    }

    /// All stored pairs `(right, score)` whose left endpoint is `left`.
    pub fn with_left(&self, left: NodeId) -> &[(u32, f64)] {
        self.by_left.get(&left.0).map_or(&[], Vec::as_slice)
    }

    /// All stored pairs `(left, score)` whose right endpoint is `right`.
    pub fn with_right(&self, right: NodeId) -> &[(u32, f64)] {
        self.by_right.get(&right.0).map_or(&[], Vec::as_slice)
    }

    /// Iterates over every stored `(left, right, score)` triple.
    pub fn iter_all(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.by_left
            .iter()
            .flat_map(|(&l, pairs)| pairs.iter().map(move |&(r, s)| (NodeId(l), NodeId(r), s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_both_endpoints() {
        let mut buf = CandidateBuffer::new();
        buf.insert(NodeId(1), NodeId(10), 0.5);
        buf.insert(NodeId(1), NodeId(11), 0.4);
        buf.insert(NodeId(2), NodeId(10), 0.3);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.with_left(NodeId(1)), &[(10, 0.5), (11, 0.4)]);
        assert_eq!(buf.with_right(NodeId(10)), &[(1, 0.5), (2, 0.3)]);
        assert_eq!(buf.with_left(NodeId(99)), &[]);
    }

    #[test]
    fn score_lookup() {
        let mut buf = CandidateBuffer::new();
        buf.insert(NodeId(3), NodeId(7), 0.9);
        assert_eq!(buf.score_of(NodeId(3), NodeId(7)), Some(0.9));
        assert_eq!(
            buf.score_of(NodeId(7), NodeId(3)),
            None,
            "direction matters"
        );
        assert_eq!(buf.score_of(NodeId(3), NodeId(8)), None);
    }

    #[test]
    fn iter_all_visits_every_pair() {
        let mut buf = CandidateBuffer::new();
        buf.insert(NodeId(1), NodeId(2), 0.1);
        buf.insert(NodeId(3), NodeId(4), 0.2);
        let mut all: Vec<(u32, u32)> = buf.iter_all().map(|(l, r, _)| (l.0, r.0)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn empty_buffer_behaviour() {
        let buf = CandidateBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.score_of(NodeId(0), NodeId(1)), None);
        assert_eq!(buf.iter_all().count(), 0);
    }
}

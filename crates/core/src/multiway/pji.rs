//! PJ-i: the Incremental Partial Join (Section VI-D).
//!
//! PJ-i is PJ with two changes:
//!
//! * the initial top-`m` 2-way joins are evaluated with a *modified*
//!   B-IDJ-Y that records every bound it computes in the mutable priority
//!   structure `F` ([`crate::twoway::IncrementalState`]);
//! * `getNextNodePair` is answered from `F` — the next-best pair is located
//!   by its upper bound and refined with (at most) a doubling backward walk,
//!   instead of re-running a whole top-`(m+1)` join from scratch.
//!
//! The per-call cost drops from `O((M² − m)·M·d·|E|)` to `O(M·d·|E|)` in the
//! worst case, and in practice most calls are answered without any walk at
//! all because the needed entry is already exact.

use dht_graph::{Graph, NodeSet};
use dht_walks::QueryCtx;

use crate::answer::PairScore;
use crate::query::QueryGraph;
use crate::stats::NWayStats;
use crate::twoway::{bidj, BoundKind, IncrementalState};
use crate::Result;

use super::pbrj::{self, EdgeListProvider};
use super::{NWayConfig, NWayOutput};

/// Provider that starts from top-`m` lists and extends them from the
/// incremental bound structures.
struct IncrementalProvider<'a> {
    graph: &'a Graph,
    lists: Vec<Vec<PairScore>>,
    states: Vec<IncrementalState>,
    floor: f64,
    /// Session context serving the refinement walks of `next_pair` from the
    /// warm column cache.
    ctx: &'a mut QueryCtx,
}

impl EdgeListProvider for IncrementalProvider<'_> {
    fn get(&mut self, edge: usize, index: usize, stats: &mut NWayStats) -> Option<PairScore> {
        if index < self.lists[edge].len() {
            return Some(self.lists[edge][index]);
        }
        // getNextNodePair for PJ-i: consult F instead of re-joining.
        stats.next_pair_calls += 1;
        let state = &mut self.states[edge];
        let walks_before = state.refinement_walks();
        let steps_before = state.refinement_steps();
        let next = state.next_pair_with_ctx(self.graph, self.ctx);
        stats.two_way.walk_invocations += state.refinement_walks() - walks_before;
        stats.two_way.walk_steps += state.refinement_steps() - steps_before;
        match next {
            Some(pair) => {
                self.lists[edge].push(pair);
                Some(pair)
            }
            None => None,
        }
    }

    fn floor(&self) -> f64 {
        self.floor
    }
}

/// Runs PJ-i as a one-shot call with the given `m`.  The inner 2-way join
/// is always the modified B-IDJ-Y, as in the paper.
pub fn run(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    m: usize,
) -> Result<NWayOutput> {
    run_with_ctx(
        graph,
        config,
        query,
        node_sets,
        m,
        &mut QueryCtx::one_shot(),
    )
}

/// Runs PJ-i through a session context: the initial modified B-IDJ-Y joins
/// and the lazy refinement walks of `getNextNodePair` all share the
/// context's backward-column and Y-table caches.
pub fn run_with_ctx(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    m: usize,
    ctx: &mut QueryCtx,
) -> Result<NWayOutput> {
    query.validate_node_sets(node_sets)?;
    let mut stats = NWayStats::default();
    let two_way_config = config.two_way();

    let mut lists = Vec::with_capacity(query.edge_count());
    let mut states = Vec::with_capacity(query.edge_count());
    for &(i, j) in query.edges() {
        let p = &node_sets[i];
        let q = &node_sets[j];
        let mut state = IncrementalState::new(config.params, config.d);
        let out = bidj::top_k_with_ctx(
            graph,
            &two_way_config,
            p,
            q,
            m,
            BoundKind::Y,
            Some(&mut state),
            ctx,
        );
        stats.two_way_joins += 1;
        stats.two_way.absorb(&out.stats);
        lists.push(out.pairs);
        states.push(state);
    }

    let mut provider = IncrementalProvider {
        graph,
        lists,
        states,
        floor: config.params.min_score(),
        ctx,
    };
    let answers = pbrj::run(
        query,
        node_sets,
        config.aggregate,
        config.k,
        &mut provider,
        &mut stats,
    )?;
    Ok(NWayOutput { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::multiway::{nl, pj};
    use crate::twoway::TwoWayAlgorithm;
    use dht_graph::generators::{planted_partition, PlantedPartitionConfig};

    fn fixture() -> (Graph, Vec<NodeSet>) {
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 4,
            community_size: 10,
            avg_internal_degree: 5.0,
            avg_external_degree: 2.0,
            weighted: true,
            seed: 123,
        });
        (cg.graph, cg.communities)
    }

    #[test]
    fn matches_nl_on_chains_for_both_aggregates() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        for aggregate in [Aggregate::Min, Aggregate::Sum] {
            let config = NWayConfig::paper_default()
                .with_k(6)
                .with_aggregate(aggregate);
            let reference = nl::run(&g, &config, &query, &sets[..3], true).unwrap();
            let pji = run(&g, &config, &query, &sets[..3], 5).unwrap();
            assert_eq!(reference.answers.len(), pji.answers.len());
            for (a, b) in reference.answers.iter().zip(pji.answers.iter()) {
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "agg={aggregate:?}: {} vs {}",
                    a.score,
                    b.score
                );
            }
        }
    }

    #[test]
    fn matches_pj_with_the_same_m() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(4);
        let config = NWayConfig::paper_default().with_k(5);
        let pj_out = pj::run(&g, &config, &query, &sets, 3, TwoWayAlgorithm::BackwardIdjY).unwrap();
        let pji_out = run(&g, &config, &query, &sets, 3).unwrap();
        assert_eq!(pj_out.answers.len(), pji_out.answers.len());
        for (a, b) in pj_out.answers.iter().zip(pji_out.answers.iter()) {
            assert!((a.score - b.score).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn small_m_uses_the_incremental_structure_instead_of_rejoining() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        let config = NWayConfig::paper_default().with_k(8);
        let pji_out = run(&g, &config, &query, &sets[..3], 2).unwrap();
        assert!(pji_out.stats.next_pair_calls > 0);
        // only the initial |E_Q| joins were run; next pairs came from F
        assert_eq!(pji_out.stats.two_way_joins, query.edge_count() as u64);
        let reference = nl::run(&g, &config, &query, &sets[..3], true).unwrap();
        for (a, b) in reference.answers.iter().zip(pji_out.answers.iter()) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_and_star_queries_match_nl() {
        let (g, sets) = fixture();
        let config = NWayConfig::paper_default().with_k(4);
        for query in [QueryGraph::triangle(), QueryGraph::star(3)] {
            let reference = nl::run(&g, &config, &query, &sets[..3], true).unwrap();
            let pji_out = run(&g, &config, &query, &sets[..3], 6).unwrap();
            assert_eq!(reference.answers.len(), pji_out.answers.len());
            for (a, b) in reference.answers.iter().zip(pji_out.answers.iter()) {
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }
}

//! NL: the Nested Loop n-way join (Section III-B).
//!
//! Enumerates every candidate answer in `R_1 × R_2 × … × R_n` and scores it
//! by computing a fresh forward DHT value for every query edge — exactly the
//! baseline the paper describes, with cost `Π|R_i|` candidate tuples times
//! `|E_Q|` DHT evaluations each.  An optional memoisation mode caches the
//! per-pair DHT scores, which does not change the answers but makes NL
//! usable as a correctness oracle on slightly larger instances.

use std::collections::HashMap;

use dht_graph::{Graph, NodeId, NodeSet};
use dht_rankjoin::TopKBuffer;
use dht_walks::{forward, QueryCtx};

use crate::answer::{sort_answers, Answer};
use crate::query::QueryGraph;
use crate::stats::NWayStats;
use crate::Result;

use super::{NWayConfig, NWayOutput};

/// Runs NL as a one-shot call.  With `memoize = true`, per-pair DHT scores
/// are cached across candidate tuples (same answers, fewer walks).
pub fn run(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    memoize: bool,
) -> Result<NWayOutput> {
    run_with_ctx(
        graph,
        config,
        query,
        node_sets,
        memoize,
        &mut QueryCtx::one_shot(),
    )
}

/// Runs NL through a session context (the enumeration's forward walks run
/// on a pooled scratch; the per-pair memo stays local to the call).
pub fn run_with_ctx(
    graph: &Graph,
    config: &NWayConfig,
    query: &QueryGraph,
    node_sets: &[NodeSet],
    memoize: bool,
    ctx: &mut QueryCtx,
) -> Result<NWayOutput> {
    query.validate_node_sets(node_sets)?;
    let mut stats = NWayStats::default();
    let mut output: TopKBuffer<Vec<NodeId>> = TopKBuffer::new(config.k);
    let mut cache: HashMap<(u32, u32), f64> = HashMap::new();
    // One pooled scratch serves every forward walk of the enumeration.
    let mut scratch = ctx.pool.acquire();

    let n = node_sets.len();
    let mut assignment: Vec<NodeId> = vec![NodeId(0); n];
    let mut edge_scores: Vec<f64> = vec![0.0; query.edge_count()];

    // Iterative odometer over the cross product to avoid recursion depth
    // concerns for large n.
    let sizes: Vec<usize> = node_sets.iter().map(NodeSet::len).collect();
    let mut counters = vec![0usize; n];
    'outer: loop {
        for (i, &c) in counters.iter().enumerate() {
            assignment[i] = node_sets[i].members()[c];
        }
        // Skip degenerate tuples that repeat a node (a node cannot be paired
        // with itself on a query edge).
        let degenerate = query
            .edges()
            .iter()
            .any(|&(a, b)| assignment[a] == assignment[b]);
        if !degenerate {
            stats.tuples_enumerated += 1;
            for (e, &(a, b)) in query.edges().iter().enumerate() {
                let (u, v) = (assignment[a], assignment[b]);
                let score = if memoize {
                    match cache.get(&(u.0, v.0)) {
                        Some(&s) => s,
                        None => {
                            let s = forward::forward_dht_with(
                                graph,
                                &config.params,
                                u,
                                v,
                                config.d,
                                config.engine,
                                &mut scratch,
                            );
                            stats.two_way.walk_invocations += 1;
                            stats.two_way.walk_steps += config.d as u64;
                            cache.insert((u.0, v.0), s);
                            s
                        }
                    }
                } else {
                    stats.two_way.walk_invocations += 1;
                    stats.two_way.walk_steps += config.d as u64;
                    forward::forward_dht_with(
                        graph,
                        &config.params,
                        u,
                        v,
                        config.d,
                        config.engine,
                        &mut scratch,
                    )
                };
                stats.two_way.pairs_scored += 1;
                edge_scores[e] = score;
            }
            let score = config.aggregate.combine(&edge_scores);
            output.insert(score, assignment.clone());
        }
        // advance the odometer
        let mut pos = n;
        loop {
            if pos == 0 {
                break 'outer;
            }
            pos -= 1;
            counters[pos] += 1;
            if counters[pos] < sizes[pos] {
                break;
            }
            counters[pos] = 0;
        }
    }

    let mut answers: Vec<Answer> = output
        .into_sorted_desc()
        .into_iter()
        .map(|(score, nodes)| Answer::new(nodes, score))
        .collect();
    sort_answers(&mut answers);
    Ok(NWayOutput { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use dht_graph::generators::erdos_renyi;
    use dht_walks::exact::all_pairs_dht;

    fn fixture() -> (Graph, Vec<NodeSet>) {
        let g = erdos_renyi(18, 60, 23);
        let sets = vec![
            NodeSet::new("A", [NodeId(0), NodeId(1), NodeId(2)]),
            NodeSet::new("B", [NodeId(6), NodeId(7), NodeId(8)]),
            NodeSet::new("C", [NodeId(12), NodeId(13)]),
        ];
        (g, sets)
    }

    #[test]
    fn matches_a_direct_matrix_computation_on_a_chain() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(3);
        let config = NWayConfig::paper_default().with_k(5);
        let out = run(&g, &config, &query, &sets, false).unwrap();

        // brute force with the all-pairs oracle
        let oracle = all_pairs_dht(&g, &config.params, config.d);
        let mut expected: Vec<(Vec<u32>, f64)> = Vec::new();
        for &a in sets[0].members() {
            for &b in sets[1].members() {
                for &c in sets[2].members() {
                    if a == b || b == c || a == c {
                        // only pairs on query edges matter, but keep it simple:
                        // the fixture sets are disjoint anyway
                    }
                    let s1 = oracle[a.index()][b.index()];
                    let s2 = oracle[b.index()][c.index()];
                    let score = config.aggregate.combine(&[s1, s2]);
                    expected.push((vec![a.0, b.0, c.0], score));
                }
            }
        }
        expected.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        expected.truncate(5);
        assert_eq!(out.answers.len(), 5);
        for (got, (nodes, score)) in out.answers.iter().zip(expected.iter()) {
            assert!((got.score - score).abs() < 1e-10);
            let got_nodes: Vec<u32> = got.nodes.iter().map(|n| n.0).collect();
            assert_eq!(&got_nodes, nodes);
        }
    }

    #[test]
    fn memoized_and_plain_runs_agree() {
        let (g, sets) = fixture();
        let query = QueryGraph::triangle();
        let config = NWayConfig::paper_default()
            .with_k(4)
            .with_aggregate(Aggregate::Sum);
        let plain = run(&g, &config, &query, &sets, false).unwrap();
        let memo = run(&g, &config, &query, &sets, true).unwrap();
        assert_eq!(plain.answers.len(), memo.answers.len());
        for (a, b) in plain.answers.iter().zip(memo.answers.iter()) {
            assert_eq!(a.nodes, b.nodes);
            assert!((a.score - b.score).abs() < 1e-12);
        }
        assert!(memo.stats.two_way.walk_invocations < plain.stats.two_way.walk_invocations);
    }

    #[test]
    fn two_way_case_reduces_to_a_pair_ranking() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(2);
        let config = NWayConfig::paper_default().with_k(3);
        let out = run(&g, &config, &query, &sets[..2], false).unwrap();
        assert_eq!(out.answers.len(), 3);
        assert!(out.answers.iter().all(|a| a.arity() == 2));
        for w in out.answers.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    #[test]
    fn tuples_with_repeated_nodes_are_skipped() {
        let g = erdos_renyi(10, 30, 7);
        // overlapping node sets force potential repeats
        let sets = vec![
            NodeSet::new("A", [NodeId(0), NodeId(1)]),
            NodeSet::new("B", [NodeId(1), NodeId(2)]),
        ];
        let query = QueryGraph::chain(2);
        let config = NWayConfig::paper_default().with_k(10);
        let out = run(&g, &config, &query, &sets, false).unwrap();
        assert_eq!(out.stats.tuples_enumerated, 3, "(1,1) is degenerate");
        assert!(out.answers.iter().all(|a| a.nodes[0] != a.nodes[1]));
    }

    #[test]
    fn validates_node_set_count() {
        let (g, sets) = fixture();
        let query = QueryGraph::chain(4);
        let config = NWayConfig::paper_default();
        assert!(run(&g, &config, &query, &sets, false).is_err());
    }
}

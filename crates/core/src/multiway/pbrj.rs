//! The Pull/Bound Rank Join driver shared by AP, PJ and PJ-i
//! (Steps 5–15 of Algorithm 1).
//!
//! The three algorithms differ only in *where* the per-edge sorted pair
//! lists come from: AP pre-computes complete lists, PJ starts with top-`m`
//! lists and re-runs deeper joins on demand, PJ-i starts with top-`m` lists
//! and extends them from its incremental bound structure.  That difference
//! is captured by the [`EdgeListProvider`] trait; everything else — the
//! round-robin pulling, the candidate buffers, the candidate expansion
//! (`getCandidate`) and the HRJN corner-bound stopping rule — is identical
//! and implemented once here.

use std::collections::HashSet;

use dht_graph::{NodeId, NodeSet};
use dht_rankjoin::{CornerBound, RoundRobin, TopKBuffer};

use crate::aggregate::Aggregate;
use crate::answer::{sort_answers, Answer, PairScore};
use crate::query::QueryGraph;
use crate::stats::NWayStats;
use crate::Result;

use super::candidate_buffer::CandidateBuffer;

/// Deduplication key of a candidate answer.
///
/// The rank join can generate the same n-tuple through several expansion
/// paths, so every candidate is checked against a `seen` set.  Keying that
/// set on a `Vec<u32>` (as the seed did) costs one heap allocation per
/// *candidate* — by far the most frequent allocation in PJ/PJ-i runs.  For
/// the paper's query graphs (`n ≤ 8` node sets) the ids fit in a fixed
/// inline array; wider queries fall back to a boxed slice.
#[derive(Debug, PartialEq, Eq, Hash)]
enum AnswerKey {
    /// `n ≤ 8` node sets: ids inline, unused slots padded with `u32::MAX`.
    /// The length is part of the key, so padding cannot collide with a
    /// shorter genuine answer.
    Packed { len: u8, ids: [u32; 8] },
    /// Arbitrary arity fallback (allocates, like the seed's key).
    Wide(Box<[u32]>),
}

impl AnswerKey {
    fn new(nodes: &[NodeId]) -> Self {
        if nodes.len() <= 8 {
            let mut ids = [u32::MAX; 8];
            for (slot, node) in ids.iter_mut().zip(nodes.iter()) {
                *slot = node.0;
            }
            AnswerKey::Packed {
                len: nodes.len() as u8,
                ids,
            }
        } else {
            AnswerKey::Wide(nodes.iter().map(|n| n.0).collect())
        }
    }
}

/// Source of the per-edge descending pair lists consumed by the rank join.
pub trait EdgeListProvider {
    /// Returns the pair at position `index` (0-based) of edge `edge`'s
    /// descending list, or `None` if the list has fewer than `index + 1`
    /// pairs and cannot be extended.
    ///
    /// The driver always asks for positions in order (`0, 1, 2, …` per
    /// edge), so providers may extend lazily.
    fn get(&mut self, edge: usize, index: usize, stats: &mut NWayStats) -> Option<PairScore>;

    /// The score of a pair with no connecting path (`β`); used to tighten
    /// the corner bound once a list is exhausted.
    fn floor(&self) -> f64;
}

/// Runs the rank join and returns the top-k answers (descending score).
pub fn run(
    query: &QueryGraph,
    node_sets: &[NodeSet],
    aggregate: Aggregate,
    k: usize,
    provider: &mut dyn EdgeListProvider,
    stats: &mut NWayStats,
) -> Result<Vec<Answer>> {
    query.validate_node_sets(node_sets)?;
    if !query.is_connected() {
        return Err(crate::CoreError::DisconnectedQueryGraph);
    }

    let edge_count = query.edge_count();
    let mut buffers: Vec<CandidateBuffer> = vec![CandidateBuffer::new(); edge_count];
    let mut positions = vec![0usize; edge_count];
    let mut exhausted = vec![false; edge_count];
    let mut corner = CornerBound::new(edge_count);
    let mut rr = RoundRobin::new(edge_count);
    let mut output: TopKBuffer<Vec<NodeId>> = TopKBuffer::new(k);
    let mut seen: HashSet<AnswerKey> = HashSet::new();
    // Pre-compute the edge expansion order from every possible start edge.
    let expansion_orders: Vec<Vec<usize>> = (0..edge_count)
        .map(|e| query.edges_in_expansion_order(e))
        .collect();

    loop {
        // Stopping rule (Step 6): stop once k answers are held and the worst
        // of them already reaches the corner-bound threshold.
        if output.is_full() {
            let tau = corner.threshold(|scores| aggregate.combine(scores));
            if output.min_score().expect("full buffer has a minimum") >= tau {
                break;
            }
        }
        // Pick the next non-exhausted list round-robin (Step 7).
        let Some(edge) = rr.next_active(|e| !exhausted[e]) else {
            break; // every list exhausted
        };
        let index = positions[edge];
        match provider.get(edge, index, stats) {
            None => {
                exhausted[edge] = true;
                corner.exhaust(edge, provider.floor());
            }
            Some(pair) => {
                positions[edge] += 1;
                stats.pairs_pulled += 1;
                corner.observe(edge, pair.score);
                buffers[edge].insert(pair.left, pair.right, pair.score);
                // getCandidate (Step 12): build every complete answer that
                // uses the newly pulled pair.
                let candidates = expand_candidates(
                    query,
                    &expansion_orders[edge],
                    edge,
                    &pair,
                    &buffers,
                    aggregate,
                );
                for answer in candidates {
                    stats.candidates_generated += 1;
                    if seen.insert(AnswerKey::new(&answer.nodes)) {
                        output.insert(answer.score, answer.nodes);
                    }
                }
            }
        }
    }

    let mut answers: Vec<Answer> = output
        .into_sorted_desc()
        .into_iter()
        .map(|(score, nodes)| Answer::new(nodes, score))
        .collect();
    sort_answers(&mut answers);
    Ok(answers)
}

/// `getCandidate`: extends the newly pulled pair of `start_edge` into every
/// complete candidate answer supported by the current candidate buffers.
fn expand_candidates(
    query: &QueryGraph,
    expansion_order: &[usize],
    start_edge: usize,
    pair: &PairScore,
    buffers: &[CandidateBuffer],
    aggregate: Aggregate,
) -> Vec<Answer> {
    let n = query.node_set_count();
    let (a, b) = query.edges()[start_edge];
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    assignment[a] = Some(pair.left);
    assignment[b] = Some(pair.right);
    let mut edge_scores: Vec<f64> = vec![0.0; query.edge_count()];
    edge_scores[start_edge] = pair.score;
    let mut out = Vec::new();
    recurse(
        query,
        expansion_order,
        1,
        &mut assignment,
        &mut edge_scores,
        buffers,
        aggregate,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    query: &QueryGraph,
    order: &[usize],
    pos: usize,
    assignment: &mut Vec<Option<NodeId>>,
    edge_scores: &mut Vec<f64>,
    buffers: &[CandidateBuffer],
    aggregate: Aggregate,
    out: &mut Vec<Answer>,
) {
    if pos == order.len() {
        // All node sets must be assigned (true for connected query graphs).
        if assignment.iter().any(Option::is_none) {
            return;
        }
        let nodes: Vec<NodeId> = assignment
            .iter()
            .map(|n| n.expect("checked above"))
            .collect();
        let score = aggregate.combine(edge_scores);
        out.push(Answer::new(nodes, score));
        return;
    }
    let edge = order[pos];
    let (a, b) = query.edges()[edge];
    match (assignment[a], assignment[b]) {
        (Some(na), Some(nb)) => {
            if let Some(score) = buffers[edge].score_of(na, nb) {
                edge_scores[edge] = score;
                recurse(
                    query,
                    order,
                    pos + 1,
                    assignment,
                    edge_scores,
                    buffers,
                    aggregate,
                    out,
                );
            }
        }
        (Some(na), None) => {
            let matches: Vec<(u32, f64)> = buffers[edge].with_left(na).to_vec();
            for (nb, score) in matches {
                assignment[b] = Some(NodeId(nb));
                edge_scores[edge] = score;
                recurse(
                    query,
                    order,
                    pos + 1,
                    assignment,
                    edge_scores,
                    buffers,
                    aggregate,
                    out,
                );
                assignment[b] = None;
            }
        }
        (None, Some(nb)) => {
            let matches: Vec<(u32, f64)> = buffers[edge].with_right(nb).to_vec();
            for (na, score) in matches {
                assignment[a] = Some(NodeId(na));
                edge_scores[edge] = score;
                recurse(
                    query,
                    order,
                    pos + 1,
                    assignment,
                    edge_scores,
                    buffers,
                    aggregate,
                    out,
                );
                assignment[a] = None;
            }
        }
        (None, None) => {
            // Only reachable for disconnected query graphs, which the driver
            // rejects; handled defensively by enumerating the whole buffer.
            let matches: Vec<(NodeId, NodeId, f64)> = buffers[edge].iter_all().collect();
            for (na, nb, score) in matches {
                assignment[a] = Some(na);
                assignment[b] = Some(nb);
                edge_scores[edge] = score;
                recurse(
                    query,
                    order,
                    pos + 1,
                    assignment,
                    edge_scores,
                    buffers,
                    aggregate,
                    out,
                );
                assignment[a] = None;
                assignment[b] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::PairScore;

    /// A provider backed by fixed in-memory lists.
    struct StaticProvider {
        lists: Vec<Vec<PairScore>>,
        floor: f64,
    }

    impl EdgeListProvider for StaticProvider {
        fn get(&mut self, edge: usize, index: usize, _stats: &mut NWayStats) -> Option<PairScore> {
            self.lists[edge].get(index).copied()
        }
        fn floor(&self) -> f64 {
            self.floor
        }
    }

    fn pair(l: u32, r: u32, s: f64) -> PairScore {
        PairScore::new(NodeId(l), NodeId(r), s)
    }

    /// Brute-force reference: join the full lists on shared node sets.
    fn brute_force_chain(
        lists: &[Vec<PairScore>; 2],
        aggregate: Aggregate,
        k: usize,
    ) -> Vec<(Vec<u32>, f64)> {
        let mut answers = Vec::new();
        for p1 in &lists[0] {
            for p2 in &lists[1] {
                if p1.right == p2.left {
                    let score = aggregate.combine(&[p1.score, p2.score]);
                    answers.push((vec![p1.left.0, p1.right.0, p2.right.0], score));
                }
            }
        }
        answers.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        answers.truncate(k);
        answers
    }

    #[test]
    fn chain_rank_join_matches_brute_force() {
        // Query graph A -> B -> C over node sets {1,2}, {10,11}, {20,21}.
        let query = QueryGraph::chain(3);
        let sets = vec![
            NodeSet::new("A", [NodeId(1), NodeId(2)]),
            NodeSet::new("B", [NodeId(10), NodeId(11)]),
            NodeSet::new("C", [NodeId(20), NodeId(21)]),
        ];
        let list0 = vec![
            pair(1, 10, 0.9),
            pair(2, 10, 0.7),
            pair(1, 11, 0.5),
            pair(2, 11, 0.2),
        ];
        let list1 = vec![
            pair(10, 20, 0.8),
            pair(11, 21, 0.6),
            pair(10, 21, 0.3),
            pair(11, 20, 0.1),
        ];
        for aggregate in [Aggregate::Sum, Aggregate::Min] {
            for k in [1usize, 2, 3, 10] {
                let mut provider = StaticProvider {
                    lists: vec![list0.clone(), list1.clone()],
                    floor: -10.0,
                };
                let mut stats = NWayStats::default();
                let answers = run(&query, &sets, aggregate, k, &mut provider, &mut stats).unwrap();
                let expected = brute_force_chain(&[list0.clone(), list1.clone()], aggregate, k);
                assert_eq!(answers.len(), expected.len(), "agg={aggregate:?} k={k}");
                for (a, (nodes, score)) in answers.iter().zip(expected.iter()) {
                    assert!((a.score - score).abs() < 1e-12);
                    let got: Vec<u32> = a.nodes.iter().map(|n| n.0).collect();
                    assert_eq!(&got, nodes, "agg={aggregate:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn early_termination_does_not_pull_everything() {
        // With SUM, the top answer combines the heads of both lists, so the
        // join should stop long before exhausting the long tails.
        let query = QueryGraph::chain(3);
        let sets = vec![
            NodeSet::new("A", (0..50).map(NodeId)),
            NodeSet::new("B", (100..150).map(NodeId)),
            NodeSet::new("C", (200..250).map(NodeId)),
        ];
        let mut list0 = vec![pair(0, 100, 10.0)];
        let mut list1 = vec![pair(100, 200, 10.0)];
        for i in 1..50u32 {
            list0.push(pair(i, 100 + i, 1.0 - i as f64 * 0.01));
            list1.push(pair(100 + i, 200 + i, 1.0 - i as f64 * 0.01));
        }
        let total = list0.len() + list1.len();
        let mut provider = StaticProvider {
            lists: vec![list0, list1],
            floor: -10.0,
        };
        let mut stats = NWayStats::default();
        let answers = run(&query, &sets, Aggregate::Sum, 1, &mut provider, &mut stats).unwrap();
        assert_eq!(answers.len(), 1);
        assert!((answers[0].score - 20.0).abs() < 1e-12);
        assert!(
            (stats.pairs_pulled as usize) < total,
            "rank join pulled {} of {total} pairs",
            stats.pairs_pulled
        );
    }

    #[test]
    fn triangle_query_requires_consistent_assignments() {
        // Triangle over sets {1},{2},{3} with directed edges both ways; only
        // consistent pairs should form an answer.
        let query = QueryGraph::triangle();
        let sets = vec![
            NodeSet::new("A", [NodeId(1)]),
            NodeSet::new("B", [NodeId(2)]),
            NodeSet::new("C", [NodeId(3)]),
        ];
        // edges: (0,1), (1,0), (1,2), (2,1), (0,2), (2,0)
        let lists = vec![
            vec![pair(1, 2, 0.5)],
            vec![pair(2, 1, 0.4)],
            vec![pair(2, 3, 0.3)],
            vec![pair(3, 2, 0.2)],
            vec![pair(1, 3, 0.6)],
            vec![pair(3, 1, 0.1)],
        ];
        let mut provider = StaticProvider {
            lists,
            floor: -10.0,
        };
        let mut stats = NWayStats::default();
        let answers = run(&query, &sets, Aggregate::Min, 5, &mut provider, &mut stats).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].nodes, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!((answers[0].score - 0.1).abs() < 1e-12);
    }

    #[test]
    fn missing_counterpart_yields_no_answer() {
        let query = QueryGraph::chain(3);
        let sets = vec![
            NodeSet::new("A", [NodeId(1)]),
            NodeSet::new("B", [NodeId(10), NodeId(11)]),
            NodeSet::new("C", [NodeId(20)]),
        ];
        // list0 pairs 1-10, but list1 only has 11-20: no consistent answer.
        let lists = vec![vec![pair(1, 10, 0.9)], vec![pair(11, 20, 0.8)]];
        let mut provider = StaticProvider {
            lists,
            floor: -10.0,
        };
        let mut stats = NWayStats::default();
        let answers = run(&query, &sets, Aggregate::Sum, 3, &mut provider, &mut stats).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn answer_keys_distinguish_tuples_without_allocating_for_small_n() {
        let a = AnswerKey::new(&[NodeId(1), NodeId(2), NodeId(3)]);
        let b = AnswerKey::new(&[NodeId(1), NodeId(2), NodeId(3)]);
        let c = AnswerKey::new(&[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(matches!(a, AnswerKey::Packed { len: 3, .. }));
        // Padding is part of the length-tagged key: a genuine u32::MAX id in
        // a longer tuple cannot collide with a shorter tuple's padding.
        let padded_lookalike = AnswerKey::new(&[NodeId(1), NodeId(2), NodeId(3), NodeId(u32::MAX)]);
        assert_ne!(a, padded_lookalike);
        // Wider-than-8 queries fall back to the allocating key.
        let wide_nodes: Vec<NodeId> = (0..9).map(NodeId).collect();
        assert!(matches!(AnswerKey::new(&wide_nodes), AnswerKey::Wide(_)));
        assert_eq!(AnswerKey::new(&wide_nodes), AnswerKey::new(&wide_nodes));
    }

    #[test]
    fn disconnected_query_graph_is_rejected() {
        let mut query = QueryGraph::new(4);
        query.add_edge(0, 1).unwrap();
        query.add_edge(2, 3).unwrap();
        let sets = vec![
            NodeSet::new("A", [NodeId(1)]),
            NodeSet::new("B", [NodeId(2)]),
            NodeSet::new("C", [NodeId(3)]),
            NodeSet::new("D", [NodeId(4)]),
        ];
        let mut provider = StaticProvider {
            lists: vec![vec![], vec![]],
            floor: 0.0,
        };
        let mut stats = NWayStats::default();
        let err = run(&query, &sets, Aggregate::Sum, 1, &mut provider, &mut stats).unwrap_err();
        assert_eq!(err, crate::CoreError::DisconnectedQueryGraph);
    }
}

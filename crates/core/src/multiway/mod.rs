//! Top-k multi-way (n-way) joins over DHT (Sections III, IV and VI-D).
//!
//! Four algorithms share one contract: given a graph, a query graph over `n`
//! node sets, the DHT parameters, a monotone aggregate and `k`, return the
//! `k` candidate answers (Definition 3) with the highest aggregate scores,
//! sorted descending (Definition 4).
//!
//! * [`nl`] — **Nested Loop**: enumerate all `Π|R_i|` candidate tuples and
//!   score each edge with a fresh forward DHT computation.  The baseline the
//!   paper describes as prohibitively slow for `n ≥ 3`.
//! * [`ap`] — **All Pairs**: one *complete* 2-way join per query edge, then a
//!   Pull/Bound Rank Join over the per-edge lists.
//! * [`pj`] — **Partial Join** (Algorithm 1): a top-`m` 2-way join per edge;
//!   when the rank join exhausts a list, `getNextNodePair` re-runs a deeper
//!   top-`(m+1)` join from scratch.
//! * [`pji`] — **Incremental Partial Join**: like PJ, but `getNextNodePair`
//!   is answered from the mutable bound structure `F` recorded by the
//!   modified B-IDJ run (Section VI-D), avoiding the restart.

pub mod ap;
pub mod candidate_buffer;
pub mod nl;
pub mod pbrj;
pub mod pj;
pub mod pji;

use dht_graph::{Graph, NodeSet};
use dht_walks::{DhtParams, QueryCtx, WalkEngine};

use crate::aggregate::Aggregate;
use crate::answer::Answer;
use crate::query::QueryGraph;
use crate::stats::NWayStats;
use crate::twoway::{TwoWayAlgorithm, TwoWayConfig};
use crate::Result;

/// Shared configuration of an n-way join run.
#[derive(Debug, Clone, Copy)]
pub struct NWayConfig {
    /// DHT parameters (α, β, λ).
    pub params: DhtParams,
    /// Truncation depth `d`.
    pub d: usize,
    /// Monotone aggregate `f` over per-edge DHT scores.
    pub aggregate: Aggregate,
    /// Number of answers to return.
    pub k: usize,
    /// Walk propagation engine of the inner 2-way joins.
    pub engine: WalkEngine,
    /// Worker threads: `1` serial (default), `0` all available cores.
    /// Applied to the per-edge 2-way joins (run concurrently when the query
    /// graph has several edges) and forwarded to their inner parallelism
    /// otherwise; results are identical at every thread count.
    pub threads: usize,
}

impl NWayConfig {
    /// Creates a configuration with the default engine, serial execution.
    pub fn new(params: DhtParams, d: usize, aggregate: Aggregate, k: usize) -> Self {
        NWayConfig {
            params,
            d: d.max(1),
            aggregate,
            k,
            engine: WalkEngine::default(),
            threads: 1,
        }
    }

    /// The paper's experimental defaults: `DHT_λ` with `λ = 0.2`, `d = 8`
    /// (ε = 10⁻⁶), MIN aggregate, `k = 50`.
    pub fn paper_default() -> Self {
        let params = DhtParams::paper_default();
        let d = params.depth_for_epsilon(1e-6).expect("1e-6 is valid");
        Self::new(params, d, Aggregate::Min, 50)
    }

    /// Returns a copy with a different `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Returns a copy with a different aggregate.
    pub fn with_aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregate = aggregate;
        self
    }

    /// Returns a copy with a different propagation engine.
    pub fn with_engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configuration of the inner 2-way joins, inheriting the engine
    /// and thread knobs.
    pub fn two_way(&self) -> TwoWayConfig {
        TwoWayConfig::new(self.params, self.d)
            .with_engine(self.engine)
            .with_threads(self.threads)
    }
}

/// Result of an n-way join.
#[derive(Debug, Clone)]
pub struct NWayOutput {
    /// The top-k answers, sorted by descending aggregate score.
    pub answers: Vec<Answer>,
    /// Instrumentation counters.
    pub stats: NWayStats,
}

/// Selects one of the n-way join algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NWayAlgorithm {
    /// NL — nested loop enumeration.
    NestedLoop,
    /// AP — all-pairs 2-way joins plus rank join.
    AllPairs,
    /// PJ — partial join with top-`m` lists (Algorithm 1).
    PartialJoin {
        /// Initial 2-way join depth `m`.
        m: usize,
    },
    /// PJ-i — incremental partial join.
    IncrementalPartialJoin {
        /// Initial 2-way join depth `m`.
        m: usize,
    },
}

impl NWayAlgorithm {
    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            NWayAlgorithm::NestedLoop => "NL",
            NWayAlgorithm::AllPairs => "AP",
            NWayAlgorithm::PartialJoin { .. } => "PJ",
            NWayAlgorithm::IncrementalPartialJoin { .. } => "PJ-i",
        }
    }

    /// Runs the selected algorithm as a one-shot call (a fresh, cache-free
    /// context) with its default inner 2-way join (F-BJ for AP and B-IDJ-Y
    /// for PJ / PJ-i, matching Section VII-A).
    pub fn run(
        self,
        graph: &Graph,
        config: &NWayConfig,
        query: &QueryGraph,
        node_sets: &[NodeSet],
    ) -> Result<NWayOutput> {
        self.run_with_ctx(graph, config, query, node_sets, &mut QueryCtx::one_shot())
    }

    /// Runs the selected algorithm through a session context: the inner
    /// 2-way joins (and PJ-i's refinement walks) share the context's
    /// backward-column and Y-table caches.  Answers are bit-identical to
    /// [`NWayAlgorithm::run`] at every cache state.
    pub fn run_with_ctx(
        self,
        graph: &Graph,
        config: &NWayConfig,
        query: &QueryGraph,
        node_sets: &[NodeSet],
        ctx: &mut QueryCtx,
    ) -> Result<NWayOutput> {
        match self {
            NWayAlgorithm::NestedLoop => {
                nl::run_with_ctx(graph, config, query, node_sets, false, ctx)
            }
            NWayAlgorithm::AllPairs => ap::run_with_ctx(
                graph,
                config,
                query,
                node_sets,
                TwoWayAlgorithm::ForwardBasic,
                ctx,
            ),
            NWayAlgorithm::PartialJoin { m } => pj::run_with_ctx(
                graph,
                config,
                query,
                node_sets,
                m,
                TwoWayAlgorithm::BackwardIdjY,
                ctx,
            ),
            NWayAlgorithm::IncrementalPartialJoin { m } => {
                pji::run_with_ctx(graph, config, query, node_sets, m, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vii() {
        let cfg = NWayConfig::paper_default();
        assert_eq!(cfg.k, 50);
        assert_eq!(cfg.d, 8);
        assert_eq!(cfg.aggregate, Aggregate::Min);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = NWayConfig::paper_default()
            .with_k(10)
            .with_aggregate(Aggregate::Sum);
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.aggregate, Aggregate::Sum);
    }

    #[test]
    fn algorithm_names_match_the_paper() {
        assert_eq!(NWayAlgorithm::NestedLoop.name(), "NL");
        assert_eq!(NWayAlgorithm::AllPairs.name(), "AP");
        assert_eq!(NWayAlgorithm::PartialJoin { m: 50 }.name(), "PJ");
        assert_eq!(
            NWayAlgorithm::IncrementalPartialJoin { m: 50 }.name(),
            "PJ-i"
        );
    }
}

//! # dht-core
//!
//! The paper's primary contribution: top-k **2-way** and **multi-way (n-way)
//! joins** over discounted hitting time.
//!
//! ## 2-way joins (Sections V & VI)
//!
//! Given two node sets `P` and `Q`, a 2-way join returns the `k` node pairs
//! `(p, q)` with the highest truncated DHT scores `h_d(p, q)`.  Five
//! algorithms are implemented:
//!
//! | algorithm | strategy | complexity |
//! |---|---|---|
//! | [`twoway::fbj`] (F-BJ) | forward absorbing walk per pair | `O(|P||Q|·d|E|)` |
//! | [`twoway::fidj`] (F-IDJ) | iterative deepening over sources, `X⁺` pruning | `O(|P||Q|·d|E|)` worst case |
//! | [`twoway::bbj`] (B-BJ) | one backward walk per target | `O(|Q|·d|E|)` |
//! | [`twoway::bidj`] (B-IDJ-X) | backward + iterative deepening, `X_l⁺` bound | `O(|Q|·d|E|)` |
//! | [`twoway::bidj`] (B-IDJ-Y) | backward + iterative deepening, `Y_l⁺` bound (Theorem 1) | `O(|Q|·d|E|)` |
//!
//! ## n-way joins (Sections III, IV & VI-D)
//!
//! Given a query graph `Q` over `n` node sets, a monotone aggregate `f` and
//! `k`, the n-way join returns the `k` n-tuples with the highest aggregate of
//! per-edge DHT scores.  Four algorithms are implemented:
//!
//! * [`multiway::nl`] — Nested Loop (NL): enumerate every candidate tuple;
//! * [`multiway::ap`] — All Pairs (AP): full 2-way join per query edge, then
//!   a Pull/Bound Rank Join;
//! * [`multiway::pj`] — Partial Join (PJ, Algorithm 1): top-`m` 2-way joins
//!   per edge, rank join with candidate buffers, re-running a top-`(m+1)`
//!   join whenever a list is exhausted;
//! * [`multiway::pji`] — Incremental Partial Join (PJ-i): like PJ but
//!   `getNextNodePair` is answered from the mutable bound structure `F`
//!   produced by the modified B-IDJ run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod answer;
pub mod error;
pub mod multiway;
pub mod query;
pub mod queryline;
pub mod spec;
pub mod stats;
pub mod twoway;

pub use aggregate::Aggregate;
pub use answer::Answer;
pub use error::CoreError;
pub use query::QueryGraph;
pub use spec::{AlgorithmChoice, NWaySpec, QuerySpec, TwoWaySpec};
pub use stats::{NWayStats, TwoWayStats};
// The session context every join can run through (re-exported so callers of
// the `*_with_ctx` entry points need not depend on `dht-walks` directly).
pub use dht_walks::QueryCtx;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

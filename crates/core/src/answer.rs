//! Candidate answers (Definition 3) and result tuples.

use dht_graph::NodeId;

/// A fully scored n-way join answer: one node per node set of the query
/// graph plus the aggregate score.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The selected node of each node set, indexed like the query graph's
    /// node sets (`nodes[i] ∈ R_i`).
    pub nodes: Vec<NodeId>,
    /// Aggregate score `A.f`.
    pub score: f64,
}

impl Answer {
    /// Creates an answer.
    pub fn new(nodes: Vec<NodeId>, score: f64) -> Self {
        Answer { nodes, score }
    }

    /// Arity `n` of the answer.
    pub fn arity(&self) -> usize {
        self.nodes.len()
    }
}

/// Sorts answers by descending score, breaking ties by the node ids so that
/// all algorithms produce results in the same deterministic order.
pub fn sort_answers(answers: &mut [Answer]) {
    answers.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.nodes.cmp(&b.nodes))
    });
}

/// A scored node pair produced by a 2-way join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// Node drawn from the first (left) node set `P`.
    pub left: NodeId,
    /// Node drawn from the second (right) node set `Q`.
    pub right: NodeId,
    /// Truncated DHT score `h_d(left, right)`.
    pub score: f64,
}

impl PairScore {
    /// Creates a scored pair.
    pub fn new(left: NodeId, right: NodeId, score: f64) -> Self {
        PairScore { left, right, score }
    }
}

/// Sorts pairs by descending score, breaking ties by node ids for
/// determinism.
pub fn sort_pairs(pairs: &mut [PairScore]) {
    pairs.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| (a.left, a.right).cmp(&(b.left, b.right)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_answers_orders_by_score_then_nodes() {
        let mut answers = vec![
            Answer::new(vec![NodeId(2), NodeId(3)], 1.0),
            Answer::new(vec![NodeId(0), NodeId(1)], 2.0),
            Answer::new(vec![NodeId(1), NodeId(1)], 1.0),
        ];
        sort_answers(&mut answers);
        assert_eq!(answers[0].score, 2.0);
        assert_eq!(answers[1].nodes, vec![NodeId(1), NodeId(1)]);
        assert_eq!(answers[2].nodes, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn sort_pairs_orders_by_score_then_ids() {
        let mut pairs = vec![
            PairScore::new(NodeId(5), NodeId(1), 0.3),
            PairScore::new(NodeId(1), NodeId(2), 0.3),
            PairScore::new(NodeId(9), NodeId(9), 0.9),
        ];
        sort_pairs(&mut pairs);
        assert_eq!(pairs[0].score, 0.9);
        assert_eq!(pairs[1].left, NodeId(1));
        assert_eq!(pairs[2].left, NodeId(5));
    }

    #[test]
    fn arity_reports_tuple_width() {
        let a = Answer::new(vec![NodeId(0), NodeId(1), NodeId(2)], 0.0);
        assert_eq!(a.arity(), 3);
    }

    #[test]
    fn nan_scores_sort_deterministically() {
        // total_cmp places positive NaN above every number, so in the
        // descending order used here a NaN-scored pair sorts first; the key
        // property is that sorting never panics and is deterministic.
        let mut pairs = vec![
            PairScore::new(NodeId(0), NodeId(1), f64::NAN),
            PairScore::new(NodeId(2), NodeId(3), 0.1),
        ];
        sort_pairs(&mut pairs);
        assert!(pairs[0].score.is_nan());
        assert_eq!(pairs[1].left, NodeId(2));
    }
}

//! Instrumentation counters.
//!
//! The experiment harness needs more than wall-clock time: Figure 10(b) of
//! the paper reports the *fraction of `Q` nodes pruned per iteration* of the
//! B-IDJ variants, and the analysis in Section VII explains the speed-ups in
//! terms of how many DHT evaluations / random-walk steps each algorithm
//! performs.  These counters are cheap (plain integer increments) and are
//! returned alongside every join result.

/// Counters collected by a 2-way join run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TwoWayStats {
    /// Number of full DHT evaluations (forward per-pair walks or backward
    /// per-target walks, counted once per walk invocation).
    pub walk_invocations: u64,
    /// Total number of walk steps performed, summed over invocations.
    pub walk_steps: u64,
    /// Number of candidate node pairs whose score was computed or bounded.
    pub pairs_scored: u64,
    /// Size of the (remaining) target set `Q` after each iterative-deepening
    /// iteration; index 0 is the size before any pruning.
    pub q_remaining_per_iteration: Vec<usize>,
}

impl TwoWayStats {
    /// Fraction of `Q` pruned after each iteration (Figure 10(b)); entry `i`
    /// is the cumulative fraction pruned after iteration `i + 1`.
    pub fn pruned_fraction_per_iteration(&self) -> Vec<f64> {
        if self.q_remaining_per_iteration.len() < 2 {
            return Vec::new();
        }
        let initial = self.q_remaining_per_iteration[0] as f64;
        if initial == 0.0 {
            return vec![0.0; self.q_remaining_per_iteration.len() - 1];
        }
        self.q_remaining_per_iteration[1..]
            .iter()
            .map(|&remaining| 1.0 - remaining as f64 / initial)
            .collect()
    }

    /// Merges counters from another run into this one (used when a
    /// higher-level algorithm performs several 2-way joins).
    pub fn absorb(&mut self, other: &TwoWayStats) {
        self.walk_invocations += other.walk_invocations;
        self.walk_steps += other.walk_steps;
        self.pairs_scored += other.pairs_scored;
        // Per-iteration pruning traces are only meaningful per run; keep the
        // first one recorded.
        if self.q_remaining_per_iteration.is_empty() {
            self.q_remaining_per_iteration = other.q_remaining_per_iteration.clone();
        }
    }
}

/// Counters collected by an n-way join run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NWayStats {
    /// Number of 2-way join invocations (initial top-m joins plus any
    /// re-runs triggered by `getNextNodePair`).
    pub two_way_joins: u64,
    /// Number of `getNextNodePair` calls (list exhaustions).
    pub next_pair_calls: u64,
    /// Number of entries pulled from the per-edge lists by the rank join.
    pub pairs_pulled: u64,
    /// Number of complete candidate answers generated (before top-k
    /// filtering).
    pub candidates_generated: u64,
    /// Number of candidate tuples enumerated by NL (zero for the other
    /// algorithms).
    pub tuples_enumerated: u64,
    /// Aggregated 2-way join counters.
    pub two_way: TwoWayStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_fraction_matches_hand_computation() {
        let stats = TwoWayStats {
            q_remaining_per_iteration: vec![100, 40, 10, 10],
            ..Default::default()
        };
        let fractions = stats.pruned_fraction_per_iteration();
        assert_eq!(fractions.len(), 3);
        assert!((fractions[0] - 0.6).abs() < 1e-12);
        assert!((fractions[1] - 0.9).abs() < 1e-12);
        assert!((fractions[2] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pruned_fraction_handles_degenerate_traces() {
        assert!(TwoWayStats::default()
            .pruned_fraction_per_iteration()
            .is_empty());
        let stats = TwoWayStats {
            q_remaining_per_iteration: vec![0, 0],
            ..Default::default()
        };
        assert_eq!(stats.pruned_fraction_per_iteration(), vec![0.0]);
    }

    #[test]
    fn absorb_accumulates_counters() {
        let mut a = TwoWayStats {
            walk_invocations: 2,
            walk_steps: 10,
            pairs_scored: 4,
            q_remaining_per_iteration: vec![],
        };
        let b = TwoWayStats {
            walk_invocations: 3,
            walk_steps: 5,
            pairs_scored: 1,
            q_remaining_per_iteration: vec![7, 3],
        };
        a.absorb(&b);
        assert_eq!(a.walk_invocations, 5);
        assert_eq!(a.walk_steps, 15);
        assert_eq!(a.pairs_scored, 5);
        assert_eq!(a.q_remaining_per_iteration, vec![7, 3]);
        // absorbing again does not overwrite the recorded trace
        a.absorb(&TwoWayStats {
            q_remaining_per_iteration: vec![9],
            ..Default::default()
        });
        assert_eq!(a.q_remaining_per_iteration, vec![7, 3]);
    }

    #[test]
    fn nway_stats_default_is_zeroed() {
        let s = NWayStats::default();
        assert_eq!(s.two_way_joins, 0);
        assert_eq!(s.pairs_pulled, 0);
        assert_eq!(s.two_way, TwoWayStats::default());
    }
}

//! F-BJ: the Forward Basic Join (Section V-B).
//!
//! Computes `h_d(p, q)` for **every** pair `(p, q) ∈ P × Q` with a forward
//! absorbing walk per pair, then returns the `k` best.  Complexity
//! `O(|P|·|Q|·d·|E_G|)` — the slowest algorithm, but also the one with no
//! moving parts, which makes it the reference oracle for the others.
//!
//! The per-pair walks are independent, so this is the most embarrassingly
//! parallel join in the workspace: with `config.threads > 1` the pair
//! domain is fanned out over worker threads (each reusing one
//! [`WalkScratch`](dht_walks::WalkScratch)), and scores are merged back into the top-k buffer in
//! pair order — bit-identical to the serial run.

use dht_graph::{Graph, NodeId, NodeSet};
use dht_rankjoin::TopKBuffer;
use dht_walks::{forward, QueryCtx};

use crate::stats::TwoWayStats;

use super::{finalize_pairs, TwoWayConfig, TwoWayOutput};

/// Runs F-BJ as a one-shot call and returns the top-`k` pairs.
pub fn top_k(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
) -> TwoWayOutput {
    top_k_with_ctx(graph, config, p, q, k, &mut QueryCtx::one_shot())
}

/// Runs F-BJ through a session context.  Forward absorbing walks produce a
/// single scalar per pair, so there is no column to cache — the context
/// contributes its scratch pool, keeping a query stream allocation-free.
pub fn top_k_with_ctx(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
    ctx: &mut QueryCtx,
) -> TwoWayOutput {
    let domain: Vec<(NodeId, NodeId)> = p
        .iter()
        .flat_map(|pn| q.iter().map(move |qn| (pn, qn)))
        .filter(|(pn, qn)| pn != qn)
        .collect();

    let mut buffer = TopKBuffer::new(k);
    if config.effective_threads() <= 1 {
        // Serial path: one pooled scratch reused across every pair.
        let mut scratch = ctx.pool.acquire();
        for &(pn, qn) in &domain {
            let score = forward::forward_dht_with(
                graph,
                &config.params,
                pn,
                qn,
                config.d,
                config.engine,
                &mut scratch,
            );
            buffer.insert(score, (pn.0, qn.0));
        }
    } else {
        // Parallel path: workers score pair slices with per-worker pooled
        // scratches; the merge below runs in pair order, so insertion
        // sequence (and therefore tie-breaking) matches the serial path.
        let pool = &ctx.pool;
        let scores = dht_par::parallel_map_init(
            config.threads,
            &domain,
            || pool.acquire(),
            |scratch, _, &(pn, qn)| {
                forward::forward_dht_with(
                    graph,
                    &config.params,
                    pn,
                    qn,
                    config.d,
                    config.engine,
                    scratch,
                )
            },
        );
        for (&(pn, qn), score) in domain.iter().zip(scores) {
            buffer.insert(score, (pn.0, qn.0));
        }
    }

    let stats = TwoWayStats {
        walk_invocations: domain.len() as u64,
        walk_steps: domain.len() as u64 * config.d as u64,
        pairs_scored: domain.len() as u64,
        ..Default::default()
    };
    TwoWayOutput {
        pairs: finalize_pairs(buffer, ctx.trace()),
        stats,
    }
}

/// Computes the complete sorted list of all `|P|·|Q|` pairs (used by the AP
/// n-way join, which needs every pair, not just the top-k).
pub fn all_pairs(graph: &Graph, config: &TwoWayConfig, p: &NodeSet, q: &NodeSet) -> TwoWayOutput {
    top_k(graph, config, p, q, p.len() * q.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::generators::erdos_renyi;
    use dht_graph::{GraphBuilder, NodeId};
    use dht_walks::exact::all_pairs_dht;

    fn sets(p: &[u32], q: &[u32]) -> (NodeSet, NodeSet) {
        (
            NodeSet::new("P", p.iter().copied().map(NodeId)),
            NodeSet::new("Q", q.iter().copied().map(NodeId)),
        )
    }

    #[test]
    fn matches_brute_force_oracle() {
        let g = erdos_renyi(20, 60, 11);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3, 4], &[10, 11, 12, 13]);
        let oracle = all_pairs_dht(&g, &cfg.params, cfg.d);
        let out = top_k(&g, &cfg, &p, &q, 5);
        assert_eq!(out.pairs.len(), 5);
        // collect oracle's top 5 scores over the same pair domain
        let mut expected: Vec<f64> = p
            .iter()
            .flat_map(|pn| q.iter().map(move |qn| (pn, qn)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| oracle[a.index()][b.index()])
            .collect();
        expected.sort_by(|a, b| b.total_cmp(a));
        for (got, want) in out.pairs.iter().zip(expected.iter()) {
            assert!((got.score - want).abs() < 1e-10);
        }
        // pairs are sorted descending
        for w in out.pairs.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    #[test]
    fn excludes_identical_nodes() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_undirected_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let cfg = TwoWayConfig::paper_default();
        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        let q = NodeSet::new("Q", [NodeId(1), NodeId(2)]);
        let out = top_k(&g, &cfg, &p, &q, 10);
        assert!(out.pairs.iter().all(|pr| pr.left != pr.right));
        assert_eq!(out.pairs.len(), 3);
    }

    #[test]
    fn k_larger_than_domain_returns_everything() {
        let g = erdos_renyi(10, 20, 2);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1], &[5, 6]);
        let out = top_k(&g, &cfg, &p, &q, 100);
        assert_eq!(out.pairs.len(), 4);
    }

    #[test]
    fn stats_count_every_pair() {
        let g = erdos_renyi(15, 40, 4);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2], &[8, 9]);
        let out = top_k(&g, &cfg, &p, &q, 3);
        assert_eq!(out.stats.pairs_scored, 6);
        assert_eq!(out.stats.walk_invocations, 6);
        assert_eq!(out.stats.walk_steps, 6 * cfg.d as u64);
    }

    #[test]
    fn all_pairs_returns_the_full_cross_product() {
        let g = erdos_renyi(12, 30, 6);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2], &[6, 7, 8, 9]);
        let out = all_pairs(&g, &cfg, &p, &q);
        assert_eq!(out.pairs.len(), 12);
    }
}

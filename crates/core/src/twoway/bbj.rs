//! B-BJ: the Backward Basic Join (Section VI-A).
//!
//! For each target `q ∈ Q`, one `backWalk` pass produces `h_d(p, q)` for
//! every source `p ∈ P` simultaneously, so the whole join costs
//! `O(|Q|·d·|E_G|)` — a factor `|P|` better than F-BJ while producing exactly
//! the same scores.
//!
//! The per-target walks are independent; with `config.threads > 1` the
//! targets are processed in parallel chunks (bounding the number of
//! materialised `|V_G|`-sized score vectors to one chunk) and merged in
//! target order, so results are bit-identical to the serial run.

use dht_graph::{Graph, NodeId, NodeSet};
use dht_rankjoin::TopKBuffer;
use dht_walks::QueryCtx;

use crate::stats::TwoWayStats;

use super::{finalize_pairs, for_each_backward_column, TwoWayConfig, TwoWayOutput};

/// Runs B-BJ as a one-shot call and returns the top-`k` pairs.
pub fn top_k(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
) -> TwoWayOutput {
    top_k_with_ctx(graph, config, p, q, k, &mut QueryCtx::one_shot())
}

/// Runs B-BJ through a session context: the per-target backward columns are
/// served from (and fill) the context's cache, so a repeated-target query
/// stream pays each `O(d·|E_G|)` walk only once.
pub fn top_k_with_ctx(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
    ctx: &mut QueryCtx,
) -> TwoWayOutput {
    let mut stats = TwoWayStats::default();
    let mut buffer = TopKBuffer::new(k);
    let targets: Vec<NodeId> = q.iter().collect();
    for_each_backward_column(graph, config, config.d, &targets, ctx, |qn, scores| {
        stats.walk_invocations += 1;
        stats.walk_steps += config.d as u64;
        for pn in p.iter() {
            if pn == qn {
                continue;
            }
            stats.pairs_scored += 1;
            buffer.insert(scores[pn.index()], (pn.0, qn.0));
        }
    });
    TwoWayOutput {
        pairs: finalize_pairs(buffer, ctx.trace()),
        stats,
    }
}

/// Complete sorted list of all pairs, computed backwards (a faster drop-in
/// for [`super::fbj::all_pairs`] when the caller needs every score).
pub fn all_pairs(graph: &Graph, config: &TwoWayConfig, p: &NodeSet, q: &NodeSet) -> TwoWayOutput {
    top_k(graph, config, p, q, p.len() * q.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twoway::fbj;
    use dht_graph::generators::{barabasi_albert, erdos_renyi};
    use dht_graph::{NodeId, NodeSet};

    fn sets(p: &[u32], q: &[u32]) -> (NodeSet, NodeSet) {
        (
            NodeSet::new("P", p.iter().copied().map(NodeId)),
            NodeSet::new("Q", q.iter().copied().map(NodeId)),
        )
    }

    #[test]
    fn agrees_with_forward_basic_join() {
        let g = erdos_renyi(30, 90, 21);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3, 4, 5], &[20, 21, 22, 23]);
        let forward = fbj::top_k(&g, &cfg, &p, &q, 8);
        let backward = top_k(&g, &cfg, &p, &q, 8);
        assert_eq!(forward.pairs.len(), backward.pairs.len());
        for (f, b) in forward.pairs.iter().zip(backward.pairs.iter()) {
            assert!((f.score - b.score).abs() < 1e-10, "{f:?} vs {b:?}");
            assert_eq!((f.left, f.right), (b.left, b.right));
        }
    }

    #[test]
    fn agrees_with_forward_on_weighted_scale_free_graph() {
        let g = barabasi_albert(80, 3, 5);
        let cfg = TwoWayConfig::new(dht_walks::DhtParams::dht_e(), 6);
        let (p, q) = sets(&[0, 5, 10, 15], &[40, 41, 42]);
        let forward = fbj::top_k(&g, &cfg, &p, &q, 12);
        let backward = top_k(&g, &cfg, &p, &q, 12);
        for (f, b) in forward.pairs.iter().zip(backward.pairs.iter()) {
            assert!((f.score - b.score).abs() < 1e-10);
        }
    }

    #[test]
    fn walk_count_is_one_per_target() {
        let g = erdos_renyi(25, 60, 9);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3, 4, 5, 6, 7], &[20, 21, 22]);
        let out = top_k(&g, &cfg, &p, &q, 5);
        assert_eq!(out.stats.walk_invocations, 3, "one backward walk per q");
        assert_eq!(out.stats.pairs_scored, 24);
    }

    #[test]
    fn overlapping_sets_skip_identical_pairs() {
        let g = erdos_renyi(10, 30, 3);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2], &[2, 3]);
        let out = top_k(&g, &cfg, &p, &q, 10);
        assert_eq!(out.pairs.len(), 5);
        assert!(out.pairs.iter().all(|pr| pr.left != pr.right));
    }
}

//! The mutable bound structure `F` of PJ-i (Section VI-D).
//!
//! While the modified B-IDJ of PJ-i evaluates a top-`m` 2-way join, it
//! records, for every candidate pair `(p, q)`, the tightest lower and upper
//! bounds of `h_d(p, q)` seen so far together with the walk depth `l` that
//! produced them.  A later `getNextNodePair` call then works entirely from
//! this structure:
//!
//! 1. take the non-emitted pair with the largest upper bound;
//! 2. if its bounds were computed at full depth `d`, its score is exact and
//!    no other pair can beat it (its upper bound is maximal) — emit it;
//! 3. otherwise *refine* it: re-run a backward walk from its target with
//!    twice the depth (or directly depth `d` when it already dominates every
//!    other pair's upper bound), update all entries of that target, and
//!    repeat.
//!
//! Because refinement always increases the recorded depth and depth is
//! capped at `d`, the loop terminates; because entries exist for every pair
//! (including the unreachable ones, whose score is `β`), the structure can
//! serve the entire `|P|·|Q|` ranking without ever falling back to a fresh
//! top-`m'` join — this is what makes PJ-i cheap when the rank join keeps
//! asking for "just one more pair".

use std::collections::{HashMap, HashSet};

use dht_graph::{Graph, NodeId};
use dht_walks::bounds::{x_upper_bound, YBoundTable};
use dht_walks::{DhtParams, QueryCtx, WalkEngine};

use crate::answer::PairScore;

/// Bound information of one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FEntry {
    /// Lower bound of `h_d(p, q)` (a truncated score `h_l`).
    pub lower: f64,
    /// Upper bound of `h_d(p, q)` (`h_l + U_l⁺`).
    pub upper: f64,
    /// Walk depth `l` at which the bounds were computed; `l = d` means the
    /// score is exact.
    pub level: usize,
}

/// The mutable priority structure `F` plus the bookkeeping needed to emit
/// pairs in descending score order.
#[derive(Debug, Clone)]
pub struct IncrementalState {
    params: DhtParams,
    d: usize,
    /// Walk engine of the refinement walks (installed by the originating
    /// B-IDJ run so refinements match the join's propagation engine).
    engine: WalkEngine,
    entries: HashMap<(u32, u32), FEntry>,
    emitted: HashSet<(u32, u32)>,
    y_table: Option<YBoundTable>,
    /// Number of backward walks run by refinement (exposed for stats).
    refinement_walks: u64,
    /// Total refinement walk steps.
    refinement_steps: u64,
}

impl IncrementalState {
    /// Creates an empty structure for the given parameters and walk depth.
    pub fn new(params: DhtParams, d: usize) -> Self {
        IncrementalState {
            params,
            d: d.max(1),
            engine: WalkEngine::default(),
            entries: HashMap::new(),
            emitted: HashSet::new(),
            y_table: None,
            refinement_walks: 0,
            refinement_steps: 0,
        }
    }

    /// Installs the `Y_l⁺` table of the originating B-IDJ-Y run so that
    /// refinements can use the tighter bound; without it the `X_l⁺` bound is
    /// used.
    pub fn set_y_table(&mut self, table: YBoundTable) {
        self.y_table = Some(table);
    }

    /// Sets the walk engine used by refinement walks (the originating join's
    /// engine; defaults to [`WalkEngine::default`]).
    pub fn set_engine(&mut self, engine: WalkEngine) {
        self.engine = engine;
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pairs already emitted (the top-`m` list plus any
    /// `next_pair` results).
    pub fn emitted_count(&self) -> usize {
        self.emitted.len()
    }

    /// Backward walks performed by refinement so far.
    pub fn refinement_walks(&self) -> u64 {
        self.refinement_walks
    }

    /// Walk steps performed by refinement so far.
    pub fn refinement_steps(&self) -> u64 {
        self.refinement_steps
    }

    /// Looks up the entry of a pair (mainly for tests).
    pub fn entry(&self, p: NodeId, q: NodeId) -> Option<FEntry> {
        self.entries.get(&(p.0, q.0)).copied()
    }

    /// Records bounds computed at depth `level`; entries are only replaced
    /// by deeper (tighter) information, mirroring the "supersede if
    /// `e.l < s.l`" rule of the paper.
    pub fn record(&mut self, p: NodeId, q: NodeId, lower: f64, upper: f64, level: usize) {
        let key = (p.0, q.0);
        match self.entries.get_mut(&key) {
            Some(existing) if existing.level >= level => {}
            Some(existing) => {
                *existing = FEntry {
                    lower,
                    upper,
                    level,
                }
            }
            None => {
                self.entries.insert(
                    key,
                    FEntry {
                        lower,
                        upper,
                        level,
                    },
                );
            }
        }
    }

    /// Records an exact score (depth `d`).
    pub fn record_exact(&mut self, p: NodeId, q: NodeId, score: f64) {
        self.record(p, q, score, score, self.d);
    }

    /// Marks a pair as already returned to the caller.
    pub fn mark_emitted(&mut self, p: NodeId, q: NodeId) {
        self.emitted.insert((p.0, q.0));
    }

    /// Finds the non-emitted entry with the largest upper bound and the
    /// largest upper bound among the rest.
    ///
    /// Ties on the upper bound are broken by the smallest `(p, q)` key, so
    /// the selection — and therefore the whole PJ-i emission order — is a
    /// pure function of the recorded bounds, independent of `HashMap`
    /// iteration order (which is randomized per process).
    fn best_candidate(&self) -> Option<((u32, u32), FEntry, f64)> {
        let mut best: Option<((u32, u32), FEntry)> = None;
        let mut second = f64::NEG_INFINITY;
        for (&key, &entry) in &self.entries {
            if self.emitted.contains(&key) {
                continue;
            }
            match best {
                None => best = Some((key, entry)),
                Some((best_key, current)) => {
                    if entry.upper > current.upper
                        || (entry.upper == current.upper && key < best_key)
                    {
                        second = current.upper;
                        best = Some((key, entry));
                    } else if entry.upper > second {
                        second = entry.upper;
                    }
                }
            }
        }
        best.map(|(key, entry)| (key, entry, second))
    }

    /// Re-runs a backward walk from `target` at depth `level` and tightens
    /// every entry whose target matches.  The walk is served from the
    /// context's column cache when warm.
    fn refine_target(&mut self, graph: &Graph, target: NodeId, level: usize, ctx: &mut QueryCtx) {
        let level = level.clamp(1, self.d);
        let scores = ctx.backward_column(graph, &self.params, target, level, self.engine);
        self.refinement_walks += 1;
        self.refinement_steps += level as u64;
        let u_bound = if level >= self.d {
            0.0
        } else {
            match &self.y_table {
                Some(table) => table.bound(level, target),
                None => x_upper_bound(&self.params, level),
            }
        };
        for (key, entry) in self.entries.iter_mut() {
            if key.1 != target.0 || entry.level >= level {
                continue;
            }
            let lower = scores[key.0 as usize];
            *entry = FEntry {
                lower,
                upper: lower + u_bound,
                level,
            };
        }
    }

    /// `getNextNodePair`: returns the non-emitted pair with the highest exact
    /// score, refining bounds lazily as needed.  Returns `None` once every
    /// recorded pair has been emitted.
    pub fn next_pair(&mut self, graph: &Graph) -> Option<PairScore> {
        self.next_pair_with_ctx(graph, &mut QueryCtx::one_shot())
    }

    /// [`IncrementalState::next_pair`] through a session context: refinement
    /// walks are served from (and fill) the context's column cache.
    pub fn next_pair_with_ctx(&mut self, graph: &Graph, ctx: &mut QueryCtx) -> Option<PairScore> {
        loop {
            let (key, entry, second_upper) = self.best_candidate()?;
            if entry.level >= self.d {
                // Exact and maximal among the remaining upper bounds: emit.
                self.emitted.insert(key);
                return Some(PairScore::new(NodeId(key.0), NodeId(key.1), entry.lower));
            }
            let target = NodeId(key.1);
            let confident = entry.lower >= second_upper;
            let new_level = if confident {
                self.d
            } else {
                (entry.level * 2).clamp(1, self.d)
            };
            self.refine_target(graph, target, new_level.max(entry.level + 1), ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twoway::{bbj, bidj, BoundKind, TwoWayConfig};
    use dht_graph::generators::{erdos_renyi, planted_partition, PlantedPartitionConfig};
    use dht_graph::NodeSet;

    #[test]
    fn record_keeps_the_deepest_information() {
        let mut state = IncrementalState::new(DhtParams::paper_default(), 8);
        let (p, q) = (NodeId(1), NodeId(2));
        state.record(p, q, 0.1, 0.5, 1);
        state.record(p, q, 0.2, 0.3, 2);
        assert_eq!(state.entry(p, q).unwrap().level, 2);
        // shallower information never overwrites deeper information
        state.record(p, q, 0.0, 1.0, 1);
        assert_eq!(state.entry(p, q).unwrap().lower, 0.2);
        state.record_exact(p, q, 0.25);
        let e = state.entry(p, q).unwrap();
        assert_eq!(e.level, 8);
        assert_eq!(e.lower, e.upper);
    }

    #[test]
    fn next_pair_streams_the_exact_ranking() {
        // The pairs emitted by top-m + repeated next_pair calls must equal
        // the full ranking computed by B-BJ.
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 3,
            community_size: 20,
            avg_internal_degree: 6.0,
            avg_external_degree: 1.5,
            weighted: false,
            seed: 5,
        });
        let cfg = TwoWayConfig::paper_default();
        let p = cg.community(0).clone();
        let q = cg.community(1).clone();
        let m = 10;
        let mut state = IncrementalState::new(cfg.params, cfg.d);
        let top_m = bidj::top_k(&cg.graph, &cfg, &p, &q, m, BoundKind::Y, Some(&mut state));

        let total = 40usize;
        let mut streamed: Vec<f64> = top_m.pairs.iter().map(|pr| pr.score).collect();
        while streamed.len() < total {
            let pair = state.next_pair(&cg.graph).expect("entries remain");
            streamed.push(pair.score);
        }
        let reference = bbj::top_k(&cg.graph, &cfg, &p, &q, total);
        assert_eq!(reference.pairs.len(), total);
        for (i, (got, want)) in streamed.iter().zip(reference.pairs.iter()).enumerate() {
            assert!(
                (got - want.score).abs() < 1e-9,
                "rank {i}: streamed {got} but reference {}",
                want.score
            );
        }
        // scores are non-increasing
        for w in streamed.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn next_pair_exhausts_and_returns_none() {
        let g = erdos_renyi(10, 30, 9);
        let cfg = TwoWayConfig::paper_default();
        let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
        let q = NodeSet::new("Q", [NodeId(5), NodeId(6)]);
        let mut state = IncrementalState::new(cfg.params, cfg.d);
        let out = bidj::top_k(&g, &cfg, &p, &q, 2, BoundKind::Y, Some(&mut state));
        assert_eq!(out.pairs.len(), 2);
        let mut remaining = 0;
        while state.next_pair(&g).is_some() {
            remaining += 1;
        }
        assert_eq!(remaining, 2, "4 pairs total, 2 already emitted");
        assert!(state.next_pair(&g).is_none());
    }

    #[test]
    fn refinement_work_is_recorded() {
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 2,
            community_size: 25,
            avg_internal_degree: 6.0,
            avg_external_degree: 1.0,
            weighted: false,
            seed: 8,
        });
        let cfg = TwoWayConfig::paper_default();
        let p = cg.community(0).clone();
        let q = cg.community(1).clone();
        let mut state = IncrementalState::new(cfg.params, cfg.d);
        bidj::top_k(&cg.graph, &cfg, &p, &q, 3, BoundKind::Y, Some(&mut state));
        for _ in 0..5 {
            state.next_pair(&cg.graph);
        }
        // pulling beyond the top-3 list requires at least some refinement
        assert!(state.refinement_walks() > 0);
        assert!(state.refinement_steps() >= state.refinement_walks());
    }

    #[test]
    fn empty_state_yields_nothing() {
        let g = erdos_renyi(5, 8, 1);
        let mut state = IncrementalState::new(DhtParams::paper_default(), 4);
        assert!(state.is_empty());
        assert!(state.next_pair(&g).is_none());
    }
}

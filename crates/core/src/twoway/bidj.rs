//! B-IDJ: the Backward Iterative Deepening Join (Algorithm 2), with the two
//! upper-bound strategies of Section VI-C:
//!
//! * **B-IDJ-X** uses the parameter-only geometric tail `X_l⁺` (Lemma 2);
//! * **B-IDJ-Y** uses the reachability-aware bound `Y_l⁺(P, q)` (Theorem 1),
//!   which is never looser than `X_l⁺` (Lemma 5) and prunes far more
//!   aggressively in practice, especially at large `λ`.
//!
//! `⌊log d⌋` iterations are performed.  In iteration `j` every still-alive
//! target `q` runs an `l = 2^{j-1}`-step backward walk; the truncated scores
//! `h_l(p, q)` are lower bounds, `max_p h_l(p,q) + U_l⁺` is an upper bound
//! for everything involving `q`, and targets whose upper bound falls below
//! the `k`-th best lower bound are pruned.  A final `d`-step walk over the
//! survivors produces the exact answer.
//!
//! When an [`IncrementalState`] is supplied (the PJ-i path), every
//! `(p, q)` bound computed along the way is recorded in the mutable priority
//! structure `F`, so that later `getNextNodePair` calls can be answered
//! without restarting the join from scratch (Section VI-D).

use dht_graph::{Graph, NodeId, NodeSet};
use dht_rankjoin::TopKBuffer;
use dht_walks::bounds::x_upper_bound;
use dht_walks::QueryCtx;

use crate::stats::TwoWayStats;

use super::incremental::IncrementalState;
use super::{finalize_pairs, for_each_backward_column, TwoWayConfig, TwoWayOutput};

/// Which upper-bound function `U_l⁺` drives the pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// The geometric tail `X_l⁺` of Lemma 2 (B-IDJ-X).
    X,
    /// The reachability-aware `Y_l⁺(P, q)` of Theorem 1 (B-IDJ-Y).
    Y,
}

/// Runs B-IDJ as a one-shot call with the chosen bound and returns the
/// top-`k` pairs.
///
/// If `incremental` is provided, the per-pair bound information computed
/// during the run is recorded there (the `F` structure of PJ-i) and the
/// emitted top-`k` pairs are marked as already returned.
pub fn top_k(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
    bound: BoundKind,
    incremental: Option<&mut IncrementalState>,
) -> TwoWayOutput {
    top_k_with_ctx(
        graph,
        config,
        p,
        q,
        k,
        bound,
        incremental,
        &mut QueryCtx::one_shot(),
    )
}

/// Runs B-IDJ through a session context: the backward columns of every
/// deepening level and the `Y_l⁺` table are served from (and fill) the
/// context's caches.
#[allow(clippy::too_many_arguments)]
pub fn top_k_with_ctx(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
    bound: BoundKind,
    mut incremental: Option<&mut IncrementalState>,
    ctx: &mut QueryCtx,
) -> TwoWayOutput {
    let params = &config.params;
    let d = config.d;
    let mut stats = TwoWayStats::default();

    // The Y bound needs one d-step forward sweep seeded with all of P; a
    // warm context serves it from the per-(params, d, engine, P) table
    // cache.  The walk counters track the algorithm's logical work, so they
    // are independent of cache temperature.
    let y_table = match bound {
        BoundKind::Y => {
            stats.walk_invocations += 1;
            stats.walk_steps += d as u64;
            Some(ctx.y_bound_table(graph, params, p, d, config.engine, config.threads))
        }
        BoundKind::X => None,
    };
    if let (Some(state), Some(table)) = (incremental.as_deref_mut(), y_table.as_deref()) {
        state.set_y_table(table.clone());
        state.set_engine(config.engine);
    }

    let p_members: Vec<NodeId> = p.iter().collect();
    let mut alive: Vec<NodeId> = q.iter().collect();
    stats.q_remaining_per_iteration.push(alive.len());

    let bound_at = |l: usize, qn: NodeId| -> f64 {
        match bound {
            BoundKind::X => x_upper_bound(params, l),
            BoundKind::Y => y_table.as_ref().expect("Y table built above").bound(l, qn),
        }
    };

    let mut l = 1usize;
    while l < d && alive.len() > 1 {
        let mut buffer: TopKBuffer<(u32, u32)> = TopKBuffer::new(k);
        let mut uppers: Vec<(NodeId, f64)> = Vec::with_capacity(alive.len());
        // The l-step backward walks of the surviving targets run (possibly
        // in parallel) on the shared column streamer; bound bookkeeping
        // consumes them in target order, identical to a serial run.
        for_each_backward_column(graph, config, l, &alive, ctx, |qn, scores| {
            stats.walk_invocations += 1;
            stats.walk_steps += l as u64;
            let u_bound = bound_at(l, qn);
            let mut p_max = params.min_score();
            for &pn in &p_members {
                if pn == qn {
                    continue;
                }
                let lower = scores[pn.index()];
                stats.pairs_scored += 1;
                if lower > params.min_score() {
                    buffer.insert(lower, (pn.0, qn.0));
                }
                if lower > p_max {
                    p_max = lower;
                }
                if let Some(state) = incremental.as_deref_mut() {
                    state.record(pn, qn, lower, lower + u_bound, l);
                }
            }
            uppers.push((qn, p_max + u_bound));
        });
        if let Some(tk) = buffer.kth_score() {
            alive = uppers
                .iter()
                .filter(|&&(_, upper)| upper >= tk)
                .map(|&(qn, _)| qn)
                .collect();
        }
        stats.q_remaining_per_iteration.push(alive.len());
        l *= 2;
    }

    // Final pass: exact d-step scores for the surviving targets.
    let mut buffer = TopKBuffer::new(k);
    for_each_backward_column(graph, config, d, &alive, ctx, |qn, scores| {
        stats.walk_invocations += 1;
        stats.walk_steps += d as u64;
        for &pn in &p_members {
            if pn == qn {
                continue;
            }
            stats.pairs_scored += 1;
            buffer.insert(scores[pn.index()], (pn.0, qn.0));
            if let Some(state) = incremental.as_deref_mut() {
                state.record_exact(pn, qn, scores[pn.index()]);
            }
        }
    });

    let pairs = finalize_pairs(buffer, ctx.trace());
    if let Some(state) = incremental {
        for pair in &pairs {
            state.mark_emitted(pair.left, pair.right);
        }
    }
    TwoWayOutput { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twoway::{bbj, fbj};
    use dht_graph::generators::{erdos_renyi, planted_partition, PlantedPartitionConfig};
    use dht_graph::NodeId;
    use dht_walks::DhtParams;

    fn sets(p: &[u32], q: &[u32]) -> (NodeSet, NodeSet) {
        (
            NodeSet::new("P", p.iter().copied().map(NodeId)),
            NodeSet::new("Q", q.iter().copied().map(NodeId)),
        )
    }

    fn community_fixture() -> dht_graph::generators::CommunityGraph {
        planted_partition(&PlantedPartitionConfig {
            communities: 4,
            community_size: 30,
            avg_internal_degree: 8.0,
            avg_external_degree: 1.0,
            weighted: false,
            seed: 77,
        })
    }

    #[test]
    fn x_variant_matches_the_basic_backward_join() {
        let g = erdos_renyi(40, 120, 51);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3, 4, 5], &[30, 31, 32, 33, 34, 35]);
        let reference = bbj::top_k(&g, &cfg, &p, &q, 7);
        let idj = top_k(&g, &cfg, &p, &q, 7, BoundKind::X, None);
        assert_eq!(reference.pairs.len(), idj.pairs.len());
        for (a, b) in reference.pairs.iter().zip(idj.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn y_variant_matches_the_forward_oracle() {
        let cg = community_fixture();
        let cfg = TwoWayConfig::paper_default();
        let p = cg.community(0).clone();
        let q = cg.community(1).clone();
        let reference = fbj::top_k(&cg.graph, &cfg, &p, &q, 10);
        let idj = top_k(&cg.graph, &cfg, &p, &q, 10, BoundKind::Y, None);
        assert_eq!(reference.pairs.len(), idj.pairs.len());
        for (a, b) in reference.pairs.iter().zip(idj.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn y_prunes_at_least_as_much_as_x() {
        let cg = community_fixture();
        let cfg = TwoWayConfig::new(DhtParams::dht_lambda(0.5), 10);
        let p = cg.community(0).clone();
        let q = cg.community(2).clone();
        let x = top_k(&cg.graph, &cfg, &p, &q, 5, BoundKind::X, None);
        let y = top_k(&cg.graph, &cfg, &p, &q, 5, BoundKind::Y, None);
        // same answers
        for (a, b) in x.pairs.iter().zip(y.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10);
        }
        // Y never keeps more targets alive than X at any iteration
        let xt = &x.stats.q_remaining_per_iteration;
        let yt = &y.stats.q_remaining_per_iteration;
        for (xa, ya) in xt.iter().zip(yt.iter()) {
            assert!(ya <= xa, "X trace {xt:?}, Y trace {yt:?}");
        }
        // and Y performs no more walk work
        assert!(y.stats.walk_steps <= x.stats.walk_steps + cfg.d as u64);
    }

    #[test]
    fn pruning_trace_starts_with_full_q() {
        let cg = community_fixture();
        let cfg = TwoWayConfig::paper_default();
        let p = cg.community(0).clone();
        let q = cg.community(1).clone();
        let out = top_k(&cg.graph, &cfg, &p, &q, 5, BoundKind::Y, None);
        assert_eq!(out.stats.q_remaining_per_iteration[0], q.len());
        // remaining counts never increase
        for w in out.stats.q_remaining_per_iteration.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn incremental_state_is_populated_and_marks_emitted_pairs() {
        let cg = community_fixture();
        let cfg = TwoWayConfig::paper_default();
        let p = cg.community(0).clone();
        let q = cg.community(1).clone();
        let mut state = IncrementalState::new(cfg.params, cfg.d);
        let out = top_k(&cg.graph, &cfg, &p, &q, 8, BoundKind::Y, Some(&mut state));
        assert_eq!(out.pairs.len(), 8);
        // every (p, q) pair has an entry recorded
        assert_eq!(state.len(), p.len() * q.len());
        assert_eq!(state.emitted_count(), 8);
    }

    #[test]
    fn overlapping_node_sets_never_pair_a_node_with_itself() {
        let g = erdos_renyi(20, 60, 13);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3], &[2, 3, 4, 5]);
        for kind in [BoundKind::X, BoundKind::Y] {
            let out = top_k(&g, &cfg, &p, &q, 20, kind, None);
            assert!(out.pairs.iter().all(|pr| pr.left != pr.right));
            assert_eq!(out.pairs.len(), 4 * 4 - 2);
        }
    }

    #[test]
    fn single_target_skips_the_deepening_loop() {
        let g = erdos_renyi(15, 45, 19);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3], &[10]);
        let out = top_k(&g, &cfg, &p, &q, 3, BoundKind::Y, None);
        let reference = bbj::top_k(&g, &cfg, &p, &q, 3);
        for (a, b) in reference.pairs.iter().zip(out.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10);
        }
    }
}

//! F-IDJ: the Forward Iterative Deepening Join (Section V-B).
//!
//! The adaptation of the IDJ framework of Sun et al. (VLDB 2011) to DHT.
//! `⌈log d⌉` rounds are performed; in round `j` every still-alive source
//! `p ∈ P` runs truncated absorbing walks of `l = 2^{j-1}` steps towards
//! every `q ∈ Q`.  The truncated score `h_l(p,q)` is a lower bound of
//! `h_d(p,q)` (the series has non-negative terms), and
//! `max_q h_l(p,q) + X_l⁺` is an upper bound of every score of `p`.  Sources
//! whose upper bound falls below the current `k`-th best lower bound can
//! never contribute a top-k pair and are pruned.  The final round evaluates
//! the exact `h_d` for the surviving sources only.
//!
//! Because each round restarts its walks from scratch, the total work is at
//! most twice that of a single `d`-step pass per pair, so the worst case
//! stays `O(|P|·|Q|·d·|E_G|)` as stated in the paper; the win comes from
//! pruning most of `P` at small `l`, where walks are cheap.

use dht_graph::{Graph, NodeId, NodeSet};
use dht_rankjoin::TopKBuffer;
use dht_walks::{bounds, forward, QueryCtx};

use crate::stats::TwoWayStats;

use super::{finalize_pairs, TwoWayConfig, TwoWayOutput};

/// Runs F-IDJ as a one-shot call and returns the top-`k` pairs.
pub fn top_k(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
) -> TwoWayOutput {
    top_k_with_ctx(graph, config, p, q, k, &mut QueryCtx::one_shot())
}

/// Runs F-IDJ through a session context (the context contributes its
/// scratch pool; forward walks produce per-pair scalars, so there is no
/// column to cache).
pub fn top_k_with_ctx(
    graph: &Graph,
    config: &TwoWayConfig,
    p: &NodeSet,
    q: &NodeSet,
    k: usize,
    ctx: &mut QueryCtx,
) -> TwoWayOutput {
    let mut stats = TwoWayStats::default();
    let d = config.d;
    let params = &config.params;
    // One pooled scratch serves every truncated walk of every round.
    let mut scratch = ctx.pool.acquire();

    let mut alive: Vec<NodeId> = p.iter().collect();
    stats.q_remaining_per_iteration.push(alive.len());

    let mut l = 1usize;
    while l < d && alive.len() > 1 {
        let mut buffer: TopKBuffer<(u32, u32)> = TopKBuffer::new(k);
        let mut uppers: Vec<(NodeId, f64)> = Vec::with_capacity(alive.len());
        for &pn in &alive {
            let mut best = params.min_score();
            for qn in q.iter() {
                if pn == qn {
                    continue;
                }
                stats.walk_invocations += 1;
                stats.walk_steps += l as u64;
                stats.pairs_scored += 1;
                // h_l(p, q): the truncated score is itself the lower bound.
                let lower = forward::forward_dht_with(
                    graph,
                    params,
                    pn,
                    qn,
                    l,
                    config.engine,
                    &mut scratch,
                );
                if lower > params.min_score() {
                    buffer.insert(lower, (pn.0, qn.0));
                }
                if lower > best {
                    best = lower;
                }
            }
            uppers.push((pn, best + bounds::x_upper_bound(params, l)));
        }
        if let Some(tk) = buffer.kth_score() {
            alive = uppers
                .iter()
                .filter(|&&(_, upper)| upper >= tk)
                .map(|&(pn, _)| pn)
                .collect();
        }
        stats.q_remaining_per_iteration.push(alive.len());
        l *= 2;
    }

    // Final round: exact scores for the surviving sources.
    let mut buffer = TopKBuffer::new(k);
    for &pn in &alive {
        for qn in q.iter() {
            if pn == qn {
                continue;
            }
            let score =
                forward::forward_dht_with(graph, params, pn, qn, d, config.engine, &mut scratch);
            stats.walk_invocations += 1;
            stats.walk_steps += d as u64;
            stats.pairs_scored += 1;
            buffer.insert(score, (pn.0, qn.0));
        }
    }
    TwoWayOutput {
        pairs: finalize_pairs(buffer, ctx.trace()),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twoway::fbj;
    use dht_graph::generators::{erdos_renyi, planted_partition, PlantedPartitionConfig};
    use dht_graph::NodeId;

    fn sets(p: &[u32], q: &[u32]) -> (NodeSet, NodeSet) {
        (
            NodeSet::new("P", p.iter().copied().map(NodeId)),
            NodeSet::new("Q", q.iter().copied().map(NodeId)),
        )
    }

    #[test]
    fn top_k_scores_match_fbj() {
        let g = erdos_renyi(40, 120, 31);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1, 2, 3, 4, 5, 6, 7], &[30, 31, 32, 33, 34]);
        let reference = fbj::top_k(&g, &cfg, &p, &q, 6);
        let idj = top_k(&g, &cfg, &p, &q, 6);
        assert_eq!(reference.pairs.len(), idj.pairs.len());
        for (a, b) in reference.pairs.iter().zip(idj.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pruning_reduces_the_alive_set_on_community_graphs() {
        // Sources in the same community as the targets dominate; far-away
        // sources should be pruned before the final round.
        let cg = planted_partition(&PlantedPartitionConfig {
            communities: 3,
            community_size: 30,
            avg_internal_degree: 8.0,
            avg_external_degree: 0.5,
            weighted: false,
            seed: 3,
        });
        let cfg = TwoWayConfig::paper_default();
        let p = NodeSet::new("P", cg.graph.nodes().take(60)); // communities 0 and 1
        let q = cg.community(0).clone();
        let out = top_k(&cg.graph, &cfg, &p, &q, 5);
        let trace = &out.stats.q_remaining_per_iteration;
        assert!(trace.len() >= 2);
        assert!(
            trace.last().unwrap() < trace.first().unwrap(),
            "no sources were pruned: {trace:?}"
        );
        // correctness against the oracle
        let reference = fbj::top_k(&cg.graph, &cfg, &p, &q, 5);
        for (a, b) in reference.pairs.iter().zip(out.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10);
        }
    }

    #[test]
    fn works_when_k_exceeds_the_number_of_pairs() {
        let g = erdos_renyi(12, 36, 8);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0, 1], &[6, 7]);
        let out = top_k(&g, &cfg, &p, &q, 50);
        assert_eq!(out.pairs.len(), 4);
    }

    #[test]
    fn single_source_short_circuits() {
        let g = erdos_renyi(10, 20, 5);
        let cfg = TwoWayConfig::paper_default();
        let (p, q) = sets(&[0], &[5, 6, 7]);
        let out = top_k(&g, &cfg, &p, &q, 2);
        let reference = fbj::top_k(&g, &cfg, &p, &q, 2);
        for (a, b) in reference.pairs.iter().zip(out.pairs.iter()) {
            assert!((a.score - b.score).abs() < 1e-10);
        }
    }
}

//! Top-k 2-way joins over DHT (Sections V and VI of the paper).
//!
//! All algorithms share the same contract: given a graph, the DHT parameters
//! and walk depth, two node sets `P` and `Q` and a result size `k`, return
//! the `k` pairs `(p, q) ∈ P × Q` (`p ≠ q`) with the highest truncated DHT
//! scores `h_d(p, q)`, sorted by descending score, together with
//! instrumentation counters.
//!
//! The forward algorithms ([`fbj`], [`fidj`]) walk from each source `p`
//! towards each target `q`; the backward algorithms ([`bbj`], [`bidj`]) walk
//! backwards from each target `q` and obtain the scores of *all* sources at
//! once, which is why they are roughly `|P|` times faster.

pub mod bbj;
pub mod bidj;
pub mod fbj;
pub mod fidj;
pub mod incremental;

use dht_graph::{Graph, NodeSet};
use dht_walks::DhtParams;

use crate::answer::PairScore;
use crate::stats::TwoWayStats;

pub use bidj::BoundKind;
pub use incremental::IncrementalState;

/// Shared configuration of a 2-way join run.
#[derive(Debug, Clone, Copy)]
pub struct TwoWayConfig {
    /// DHT parameters (α, β, λ).
    pub params: DhtParams,
    /// Truncation depth `d` (usually chosen with Lemma 1).
    pub d: usize,
}

impl TwoWayConfig {
    /// Creates a configuration.
    pub fn new(params: DhtParams, d: usize) -> Self {
        TwoWayConfig { params, d: d.max(1) }
    }

    /// The paper's default configuration: `DHT_λ` with `λ = 0.2` and
    /// `ε = 10⁻⁶`, i.e. `d = 8`.
    pub fn paper_default() -> Self {
        let params = DhtParams::paper_default();
        let d = params.depth_for_epsilon(1e-6).expect("1e-6 is a valid epsilon");
        TwoWayConfig { params, d }
    }
}

/// Result of a 2-way join: the top-k pairs (descending score) plus counters.
#[derive(Debug, Clone)]
pub struct TwoWayOutput {
    /// The `k` highest-scored pairs, sorted by descending score.
    pub pairs: Vec<PairScore>,
    /// Instrumentation counters.
    pub stats: TwoWayStats,
}

/// Selects one of the five 2-way join algorithms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwoWayAlgorithm {
    /// F-BJ: forward basic join.
    ForwardBasic,
    /// F-IDJ: forward iterative-deepening join.
    ForwardIdj,
    /// B-BJ: backward basic join.
    BackwardBasic,
    /// B-IDJ-X: backward iterative deepening with the `X_l⁺` bound.
    BackwardIdjX,
    /// B-IDJ-Y: backward iterative deepening with the `Y_l⁺` bound
    /// (Theorem 1) — the paper's best 2-way join.
    BackwardIdjY,
}

impl TwoWayAlgorithm {
    /// All five algorithms, in the order of Figure 9(a).
    pub const ALL: [TwoWayAlgorithm; 5] = [
        TwoWayAlgorithm::ForwardBasic,
        TwoWayAlgorithm::ForwardIdj,
        TwoWayAlgorithm::BackwardBasic,
        TwoWayAlgorithm::BackwardIdjX,
        TwoWayAlgorithm::BackwardIdjY,
    ];

    /// The paper's abbreviation for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            TwoWayAlgorithm::ForwardBasic => "F-BJ",
            TwoWayAlgorithm::ForwardIdj => "F-IDJ",
            TwoWayAlgorithm::BackwardBasic => "B-BJ",
            TwoWayAlgorithm::BackwardIdjX => "B-IDJ-X",
            TwoWayAlgorithm::BackwardIdjY => "B-IDJ-Y",
        }
    }

    /// Runs the selected algorithm.
    pub fn top_k(
        self,
        graph: &Graph,
        config: &TwoWayConfig,
        p: &NodeSet,
        q: &NodeSet,
        k: usize,
    ) -> TwoWayOutput {
        match self {
            TwoWayAlgorithm::ForwardBasic => fbj::top_k(graph, config, p, q, k),
            TwoWayAlgorithm::ForwardIdj => fidj::top_k(graph, config, p, q, k),
            TwoWayAlgorithm::BackwardBasic => bbj::top_k(graph, config, p, q, k),
            TwoWayAlgorithm::BackwardIdjX => {
                bidj::top_k(graph, config, p, q, k, BoundKind::X, None)
            }
            TwoWayAlgorithm::BackwardIdjY => {
                bidj::top_k(graph, config, p, q, k, BoundKind::Y, None)
            }
        }
    }
}

/// Builds the final sorted pair list from a top-k buffer, breaking score
/// ties deterministically.
pub(crate) fn finalize_pairs(buffer: dht_rankjoin::TopKBuffer<(u32, u32)>) -> Vec<PairScore> {
    let mut pairs: Vec<PairScore> = buffer
        .into_sorted_desc()
        .into_iter()
        .map(|(score, (l, r))| PairScore::new(dht_graph::NodeId(l), dht_graph::NodeId(r), score))
        .collect();
    crate::answer::sort_pairs(&mut pairs);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(TwoWayAlgorithm::ForwardBasic.name(), "F-BJ");
        assert_eq!(TwoWayAlgorithm::ForwardIdj.name(), "F-IDJ");
        assert_eq!(TwoWayAlgorithm::BackwardBasic.name(), "B-BJ");
        assert_eq!(TwoWayAlgorithm::BackwardIdjX.name(), "B-IDJ-X");
        assert_eq!(TwoWayAlgorithm::BackwardIdjY.name(), "B-IDJ-Y");
    }

    #[test]
    fn paper_default_config_has_depth_eight() {
        let cfg = TwoWayConfig::paper_default();
        assert_eq!(cfg.d, 8);
        assert!((cfg.params.lambda - 0.2).abs() < 1e-12);
    }

    #[test]
    fn depth_is_clamped_to_at_least_one() {
        let cfg = TwoWayConfig::new(DhtParams::paper_default(), 0);
        assert_eq!(cfg.d, 1);
    }
}

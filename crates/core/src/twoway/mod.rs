//! Top-k 2-way joins over DHT (Sections V and VI of the paper).
//!
//! All algorithms share the same contract: given a graph, the DHT parameters
//! and walk depth, two node sets `P` and `Q` and a result size `k`, return
//! the `k` pairs `(p, q) ∈ P × Q` (`p ≠ q`) with the highest truncated DHT
//! scores `h_d(p, q)`, sorted by descending score, together with
//! instrumentation counters.
//!
//! The forward algorithms ([`fbj`], [`fidj`]) walk from each source `p`
//! towards each target `q`; the backward algorithms ([`bbj`], [`bidj`]) walk
//! backwards from each target `q` and obtain the scores of *all* sources at
//! once, which is why they are roughly `|P|` times faster.

pub mod bbj;
pub mod bidj;
pub mod fbj;
pub mod fidj;
pub mod incremental;

use dht_graph::{Graph, NodeSet};
use dht_walks::{DhtParams, QueryCtx, WalkEngine};

use crate::answer::PairScore;
use crate::stats::TwoWayStats;

pub use bidj::BoundKind;
pub use incremental::IncrementalState;

/// Shared configuration of a 2-way join run.
#[derive(Debug, Clone, Copy)]
pub struct TwoWayConfig {
    /// DHT parameters (α, β, λ).
    pub params: DhtParams,
    /// Truncation depth `d` (usually chosen with Lemma 1).
    pub d: usize,
    /// Walk propagation engine (dense reference sweep vs sparse frontier).
    pub engine: WalkEngine,
    /// Worker threads for the embarrassingly parallel stages: `1` (the
    /// default) runs serially, `0` uses every available core.  Results are
    /// identical at every thread count — work is merged in a fixed order.
    pub threads: usize,
}

impl TwoWayConfig {
    /// Creates a configuration with the default engine, serial execution.
    pub fn new(params: DhtParams, d: usize) -> Self {
        TwoWayConfig {
            params,
            d: d.max(1),
            engine: WalkEngine::default(),
            threads: 1,
        }
    }

    /// The paper's default configuration: `DHT_λ` with `λ = 0.2` and
    /// `ε = 10⁻⁶`, i.e. `d = 8`.
    pub fn paper_default() -> Self {
        Self::new(DhtParams::paper_default(), 8).with_depth_for_epsilon(1e-6)
    }

    /// Returns a copy with the walk depth chosen by Lemma 1 for `epsilon`.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0`; use [`DhtParams::depth_for_epsilon`]
    /// directly for a fallible version.
    pub fn with_depth_for_epsilon(mut self, epsilon: f64) -> Self {
        self.d = self
            .params
            .depth_for_epsilon(epsilon)
            .expect("epsilon must be positive");
        self
    }

    /// Returns a copy with a different propagation engine.
    pub fn with_engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The resolved worker count (`0` → available parallelism).
    pub fn effective_threads(&self) -> usize {
        dht_par::effective_threads(self.threads)
    }
}

/// Result of a 2-way join: the top-k pairs (descending score) plus counters.
#[derive(Debug, Clone)]
pub struct TwoWayOutput {
    /// The `k` highest-scored pairs, sorted by descending score.
    pub pairs: Vec<PairScore>,
    /// Instrumentation counters.
    pub stats: TwoWayStats,
}

/// Selects one of the five 2-way join algorithms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwoWayAlgorithm {
    /// F-BJ: forward basic join.
    ForwardBasic,
    /// F-IDJ: forward iterative-deepening join.
    ForwardIdj,
    /// B-BJ: backward basic join.
    BackwardBasic,
    /// B-IDJ-X: backward iterative deepening with the `X_l⁺` bound.
    BackwardIdjX,
    /// B-IDJ-Y: backward iterative deepening with the `Y_l⁺` bound
    /// (Theorem 1) — the paper's best 2-way join.
    BackwardIdjY,
}

impl TwoWayAlgorithm {
    /// All five algorithms, in the order of Figure 9(a).
    pub const ALL: [TwoWayAlgorithm; 5] = [
        TwoWayAlgorithm::ForwardBasic,
        TwoWayAlgorithm::ForwardIdj,
        TwoWayAlgorithm::BackwardBasic,
        TwoWayAlgorithm::BackwardIdjX,
        TwoWayAlgorithm::BackwardIdjY,
    ];

    /// The paper's abbreviation for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            TwoWayAlgorithm::ForwardBasic => "F-BJ",
            TwoWayAlgorithm::ForwardIdj => "F-IDJ",
            TwoWayAlgorithm::BackwardBasic => "B-BJ",
            TwoWayAlgorithm::BackwardIdjX => "B-IDJ-X",
            TwoWayAlgorithm::BackwardIdjY => "B-IDJ-Y",
        }
    }

    /// Runs the selected algorithm as a one-shot call (a fresh, cache-free
    /// context per invocation).
    pub fn top_k(
        self,
        graph: &Graph,
        config: &TwoWayConfig,
        p: &NodeSet,
        q: &NodeSet,
        k: usize,
    ) -> TwoWayOutput {
        self.top_k_with_ctx(graph, config, p, q, k, &mut QueryCtx::one_shot())
    }

    /// Runs the selected algorithm through a session context: backward
    /// columns and Y-bound tables are served from (and fill) the context's
    /// caches, and walk scratches come from its pool.  Answers are
    /// bit-identical to [`TwoWayAlgorithm::top_k`] at every cache state.
    pub fn top_k_with_ctx(
        self,
        graph: &Graph,
        config: &TwoWayConfig,
        p: &NodeSet,
        q: &NodeSet,
        k: usize,
        ctx: &mut QueryCtx,
    ) -> TwoWayOutput {
        match self {
            TwoWayAlgorithm::ForwardBasic => fbj::top_k_with_ctx(graph, config, p, q, k, ctx),
            TwoWayAlgorithm::ForwardIdj => fidj::top_k_with_ctx(graph, config, p, q, k, ctx),
            TwoWayAlgorithm::BackwardBasic => bbj::top_k_with_ctx(graph, config, p, q, k, ctx),
            TwoWayAlgorithm::BackwardIdjX => {
                bidj::top_k_with_ctx(graph, config, p, q, k, BoundKind::X, None, ctx)
            }
            TwoWayAlgorithm::BackwardIdjY => {
                bidj::top_k_with_ctx(graph, config, p, q, k, BoundKind::Y, None, ctx)
            }
        }
    }
}

/// Streams the backward DHT score column of every target in `targets` (at
/// walk depth `depth`) to `consume`, **in target order** — the shared
/// backbone of B-BJ and both B-IDJ variants, routed through the session
/// context.
///
/// Cache misses are computed in parallel chunks over `config.threads`
/// workers (bounding peak memory to one chunk of `|V_G|`-sized columns)
/// with scratches drawn from the context's pool; cache hits skip the walk
/// entirely.  Consumption always runs in target order on the calling
/// thread, so callers observe exactly the serial sequence at every thread
/// count and cache temperature.
pub(crate) fn for_each_backward_column(
    graph: &Graph,
    config: &TwoWayConfig,
    depth: usize,
    targets: &[dht_graph::NodeId],
    ctx: &mut QueryCtx,
    consume: impl FnMut(dht_graph::NodeId, &[f64]),
) {
    ctx.for_each_backward_column(
        graph,
        &config.params,
        depth,
        config.engine,
        config.threads,
        targets,
        consume,
    );
}

/// Builds the final sorted pair list from a top-k buffer, breaking score
/// ties deterministically.
pub(crate) fn finalize_pairs(
    buffer: dht_rankjoin::TopKBuffer<(u32, u32)>,
    trace: &dht_walks::Trace,
) -> Vec<PairScore> {
    let span = trace.span(dht_walks::Phase::TopK);
    let mut pairs: Vec<PairScore> = buffer
        .into_sorted_desc()
        .into_iter()
        .map(|(score, (l, r))| PairScore::new(dht_graph::NodeId(l), dht_graph::NodeId(r), score))
        .collect();
    crate::answer::sort_pairs(&mut pairs);
    drop(span);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(TwoWayAlgorithm::ForwardBasic.name(), "F-BJ");
        assert_eq!(TwoWayAlgorithm::ForwardIdj.name(), "F-IDJ");
        assert_eq!(TwoWayAlgorithm::BackwardBasic.name(), "B-BJ");
        assert_eq!(TwoWayAlgorithm::BackwardIdjX.name(), "B-IDJ-X");
        assert_eq!(TwoWayAlgorithm::BackwardIdjY.name(), "B-IDJ-Y");
    }

    #[test]
    fn paper_default_config_has_depth_eight() {
        let cfg = TwoWayConfig::paper_default();
        assert_eq!(cfg.d, 8);
        assert!((cfg.params.lambda - 0.2).abs() < 1e-12);
    }

    #[test]
    fn depth_is_clamped_to_at_least_one() {
        let cfg = TwoWayConfig::new(DhtParams::paper_default(), 0);
        assert_eq!(cfg.d, 1);
    }
}

//! Declarative query specifications: *what* to answer, optionally leaving
//! *how* to a planner.
//!
//! The join entry points of this crate ([`TwoWayAlgorithm`],
//! [`NWayAlgorithm`]) force every caller to hand-pick an algorithm, even
//! though the right choice depends on set sizes, `k`, graph degree and —
//! for a warm engine session — which backward columns are already cached.
//! A [`QuerySpec`] instead describes only the query itself (node sets,
//! query shape, aggregate, `k`) together with an [`AlgorithmChoice`]:
//! either `Fixed(..)` (the caller insists) or `Auto` (a planner such as
//! `dht-engine`'s decides per execution, from a cost model over graph
//! statistics and live cache state).
//!
//! Specs validate **eagerly**: [`QuerySpec::validate`] rejects malformed
//! queries (empty node sets, mismatched query graphs, `k = 0`, …) with a
//! precise [`CoreError`] before any walk runs, instead
//! of failing deep inside an algorithm.  Every algorithm in the family is
//! exact, so the choice never affects *what* a query answers — only how
//! fast.
//!
//! ```
//! use dht_core::spec::{AlgorithmChoice, QuerySpec, TwoWaySpec};
//! use dht_core::twoway::TwoWayAlgorithm;
//! use dht_graph::{NodeId, NodeSet};
//!
//! let p = NodeSet::new("P", [NodeId(0), NodeId(1)]);
//! let q = NodeSet::new("Q", [NodeId(2), NodeId(3)]);
//!
//! // "The 5 best pairs of P ⋈ Q, however you like":
//! let auto = QuerySpec::two_way(p.clone(), q.clone(), 5);
//! assert!(auto.validate().is_ok());
//! assert!(auto.is_auto());
//!
//! // The same query pinned to a specific algorithm:
//! let fixed = QuerySpec::TwoWay(
//!     TwoWaySpec::new(p, q, 5).with_algorithm(AlgorithmChoice::Fixed(TwoWayAlgorithm::BackwardBasic)),
//! );
//! assert!(!fixed.is_auto());
//!
//! // Malformed queries fail at validation, not mid-run:
//! let bad = QuerySpec::two_way(NodeSet::empty("P"), NodeSet::new("Q", [NodeId(0)]), 5);
//! assert!(bad.validate().is_err());
//! ```

use dht_graph::NodeSet;

use crate::aggregate::Aggregate;
use crate::error::CoreError;
use crate::multiway::NWayAlgorithm;
use crate::query::QueryGraph;
use crate::twoway::TwoWayAlgorithm;
use crate::Result;

/// How a [`QuerySpec`] wants its algorithm chosen: pinned by the caller or
/// left to a planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmChoice<A> {
    /// Run exactly this algorithm.
    Fixed(A),
    /// Let the planner pick the cheapest algorithm for this query, given
    /// the graph's statistics and the current cache state.
    #[default]
    Auto,
}

impl<A> AlgorithmChoice<A> {
    /// `true` when the planner decides.
    pub fn is_auto(&self) -> bool {
        matches!(self, AlgorithmChoice::Auto)
    }

    /// The pinned algorithm, when there is one.
    pub fn fixed(&self) -> Option<&A> {
        match self {
            AlgorithmChoice::Fixed(a) => Some(a),
            AlgorithmChoice::Auto => None,
        }
    }
}

/// A declarative two-way join query: the `k` best pairs of `p ⋈ q`.
#[derive(Debug, Clone)]
pub struct TwoWaySpec {
    /// Left node set `P` (walk sources).
    pub p: NodeSet,
    /// Right node set `Q` (walk targets).
    pub q: NodeSet,
    /// Number of pairs to return (must be ≥ 1).
    pub k: usize,
    /// Algorithm choice; defaults to [`AlgorithmChoice::Auto`].
    pub algorithm: AlgorithmChoice<TwoWayAlgorithm>,
}

impl TwoWaySpec {
    /// A two-way spec with automatic algorithm selection.
    pub fn new(p: NodeSet, q: NodeSet, k: usize) -> Self {
        TwoWaySpec {
            p,
            q,
            k,
            algorithm: AlgorithmChoice::Auto,
        }
    }

    /// Returns a copy with a different algorithm choice.
    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice<TwoWayAlgorithm>) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns a copy pinned to `algorithm`.
    pub fn with_fixed(self, algorithm: TwoWayAlgorithm) -> Self {
        self.with_algorithm(AlgorithmChoice::Fixed(algorithm))
    }

    /// Checks the spec is answerable: non-empty node sets and `k ≥ 1`.
    ///
    /// # Errors
    /// [`CoreError::EmptyNodeSet`] / [`CoreError::ZeroResultSize`].
    pub fn validate(&self) -> Result<()> {
        validate_two_way_inputs(&self.p, &self.q, self.k)
    }
}

/// Validates two-way query inputs by reference (what
/// [`TwoWaySpec::validate`] checks), so batch APIs holding legacy query
/// structs can validate without cloning node sets into a spec.
///
/// # Errors
/// [`CoreError::EmptyNodeSet`] / [`CoreError::ZeroResultSize`].
pub fn validate_two_way_inputs(p: &NodeSet, q: &NodeSet, k: usize) -> Result<()> {
    if k == 0 {
        return Err(CoreError::ZeroResultSize);
    }
    for set in [p, q] {
        if set.is_empty() {
            return Err(CoreError::EmptyNodeSet(set.name().to_string()));
        }
    }
    Ok(())
}

/// A declarative n-way join query: the `k` best tuples over a query graph
/// of node sets under a monotone aggregate.
#[derive(Debug, Clone)]
pub struct NWaySpec {
    /// Query graph over the node sets (vertices reference `sets` by index).
    pub query: QueryGraph,
    /// One node set per query-graph vertex.
    pub sets: Vec<NodeSet>,
    /// Monotone aggregate over per-edge DHT scores.
    pub aggregate: Aggregate,
    /// Number of answers to return (must be ≥ 1).
    pub k: usize,
    /// Algorithm choice; defaults to [`AlgorithmChoice::Auto`].
    pub algorithm: AlgorithmChoice<NWayAlgorithm>,
}

impl NWaySpec {
    /// An n-way spec with the `MIN` aggregate and automatic algorithm
    /// selection.
    pub fn new(query: QueryGraph, sets: Vec<NodeSet>, k: usize) -> Self {
        NWaySpec {
            query,
            sets,
            aggregate: Aggregate::Min,
            k,
            algorithm: AlgorithmChoice::Auto,
        }
    }

    /// Returns a copy with a different aggregate.
    pub fn with_aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregate = aggregate;
        self
    }

    /// Returns a copy with a different algorithm choice.
    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice<NWayAlgorithm>) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns a copy pinned to `algorithm`.
    pub fn with_fixed(self, algorithm: NWayAlgorithm) -> Self {
        self.with_algorithm(AlgorithmChoice::Fixed(algorithm))
    }

    /// Checks the spec is answerable: the query graph and node sets are
    /// consistent ([`QueryGraph::validate_node_sets`]), `k ≥ 1`, and —
    /// unless the spec is pinned to NL, the one algorithm whose plain
    /// enumeration handles disconnected query graphs — the query graph is
    /// weakly connected (AP / PJ / PJ-i expand candidates along query
    /// edges and reject disconnected graphs at run time; `Auto` plans may
    /// pick any of them, so they require connectivity too).
    ///
    /// # Errors
    /// The [`CoreError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        validate_n_way_inputs(&self.query, &self.sets, self.k, &self.algorithm)
    }
}

/// Validates n-way query inputs by reference (what [`NWaySpec::validate`]
/// checks), so batch APIs holding legacy query structs can validate
/// without cloning the query graph and node sets into a spec.
/// Connectivity is required exactly when the chosen algorithm requires it
/// (everything but a pinned NL — see [`NWaySpec::validate`]).
///
/// # Errors
/// The [`CoreError`] naming the first violated constraint.
pub fn validate_n_way_inputs(
    query: &QueryGraph,
    sets: &[NodeSet],
    k: usize,
    algorithm: &AlgorithmChoice<NWayAlgorithm>,
) -> Result<()> {
    if k == 0 {
        return Err(CoreError::ZeroResultSize);
    }
    query.validate_node_sets(sets)?;
    let needs_connectivity =
        !matches!(algorithm, AlgorithmChoice::Fixed(NWayAlgorithm::NestedLoop));
    if needs_connectivity && !query.is_connected() {
        return Err(CoreError::DisconnectedQueryGraph);
    }
    Ok(())
}

/// One declarative query: two-way or n-way.
///
/// This is the type the `dht-engine` session APIs (`Session::run`,
/// `Session::explain`, `Engine::batch`, …) consume.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// A two-way join query.
    TwoWay(TwoWaySpec),
    /// An n-way join query.
    NWay(NWaySpec),
}

impl QuerySpec {
    /// A two-way query with automatic algorithm selection.
    pub fn two_way(p: NodeSet, q: NodeSet, k: usize) -> Self {
        QuerySpec::TwoWay(TwoWaySpec::new(p, q, k))
    }

    /// An n-way query with the `MIN` aggregate and automatic algorithm
    /// selection.
    pub fn n_way(query: QueryGraph, sets: Vec<NodeSet>, k: usize) -> Self {
        QuerySpec::NWay(NWaySpec::new(query, sets, k))
    }

    /// Number of answers the query asks for.
    pub fn k(&self) -> usize {
        match self {
            QuerySpec::TwoWay(s) => s.k,
            QuerySpec::NWay(s) => s.k,
        }
    }

    /// `true` when the algorithm is left to the planner.
    pub fn is_auto(&self) -> bool {
        match self {
            QuerySpec::TwoWay(s) => s.algorithm.is_auto(),
            QuerySpec::NWay(s) => s.algorithm.is_auto(),
        }
    }

    /// Validates the spec (see [`TwoWaySpec::validate`] and
    /// [`NWaySpec::validate`]).
    ///
    /// # Errors
    /// The [`CoreError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        match self {
            QuerySpec::TwoWay(s) => s.validate(),
            QuerySpec::NWay(s) => s.validate(),
        }
    }
}

impl From<TwoWaySpec> for QuerySpec {
    fn from(spec: TwoWaySpec) -> Self {
        QuerySpec::TwoWay(spec)
    }
}

impl From<NWaySpec> for QuerySpec {
    fn from(spec: NWaySpec) -> Self {
        QuerySpec::NWay(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::NodeId;

    fn sets() -> (NodeSet, NodeSet) {
        (
            NodeSet::new("P", [NodeId(0), NodeId(1)]),
            NodeSet::new("Q", [NodeId(2), NodeId(3)]),
        )
    }

    #[test]
    fn two_way_specs_default_to_auto_and_validate_inputs() {
        let (p, q) = sets();
        let spec = QuerySpec::two_way(p.clone(), q.clone(), 3);
        assert!(spec.is_auto());
        assert_eq!(spec.k(), 3);
        assert!(spec.validate().is_ok());

        let fixed =
            TwoWaySpec::new(p.clone(), q.clone(), 3).with_fixed(TwoWayAlgorithm::ForwardIdj);
        assert_eq!(fixed.algorithm.fixed(), Some(&TwoWayAlgorithm::ForwardIdj));
        assert!(!QuerySpec::from(fixed).is_auto());

        assert_eq!(
            QuerySpec::two_way(p.clone(), q.clone(), 0)
                .validate()
                .unwrap_err(),
            CoreError::ZeroResultSize
        );
        assert_eq!(
            QuerySpec::two_way(NodeSet::empty("P"), q, 3)
                .validate()
                .unwrap_err(),
            CoreError::EmptyNodeSet("P".into())
        );
        assert_eq!(
            QuerySpec::two_way(p, NodeSet::empty("Q"), 3)
                .validate()
                .unwrap_err(),
            CoreError::EmptyNodeSet("Q".into())
        );
    }

    #[test]
    fn n_way_specs_validate_shape_connectivity_and_k() {
        let (p, q) = sets();
        let r = NodeSet::new("R", [NodeId(4)]);
        let three = vec![p.clone(), q.clone(), r.clone()];

        let good = QuerySpec::n_way(QueryGraph::chain(3), three.clone(), 2);
        assert!(good.validate().is_ok());
        assert!(good.is_auto());

        // Wrong arity.
        assert!(matches!(
            QuerySpec::n_way(QueryGraph::chain(4), three.clone(), 2)
                .validate()
                .unwrap_err(),
            CoreError::NodeSetCountMismatch { .. }
        ));
        // Disconnected query graph: rejected for Auto (the planner may
        // pick a candidate-expansion algorithm)…
        let mut disconnected = QueryGraph::new(3);
        disconnected.add_edge(0, 1).unwrap();
        assert_eq!(
            QuerySpec::n_way(disconnected.clone(), three.clone(), 2)
                .validate()
                .unwrap_err(),
            CoreError::DisconnectedQueryGraph
        );
        // …and for pinned AP / PJ / PJ-i (they reject it at run time
        // anyway; failing eagerly is strictly earlier)…
        assert_eq!(
            NWaySpec::new(disconnected.clone(), three.clone(), 2)
                .with_fixed(NWayAlgorithm::AllPairs)
                .validate()
                .unwrap_err(),
            CoreError::DisconnectedQueryGraph
        );
        // …but a pinned NL enumerates tuples without expanding along query
        // edges, and keeps its legacy behaviour of answering them.
        assert!(NWaySpec::new(disconnected, three.clone(), 2)
            .with_fixed(NWayAlgorithm::NestedLoop)
            .validate()
            .is_ok());
        // k = 0.
        assert_eq!(
            QuerySpec::n_way(QueryGraph::chain(3), three.clone(), 0)
                .validate()
                .unwrap_err(),
            CoreError::ZeroResultSize
        );
        // Empty member set.
        let with_empty = vec![p, NodeSet::empty("Q"), r];
        assert!(matches!(
            QuerySpec::n_way(QueryGraph::chain(3), with_empty, 2)
                .validate()
                .unwrap_err(),
            CoreError::EmptyNodeSet(_)
        ));
    }

    #[test]
    fn n_way_builders_compose() {
        let (p, q) = sets();
        let spec = NWaySpec::new(QueryGraph::chain(2), vec![p, q], 4)
            .with_aggregate(Aggregate::Sum)
            .with_fixed(NWayAlgorithm::AllPairs);
        assert_eq!(spec.aggregate, Aggregate::Sum);
        assert_eq!(spec.algorithm.fixed(), Some(&NWayAlgorithm::AllPairs));
        assert!(spec.validate().is_ok());
    }
}

//! Query graphs (Definition 1).
//!
//! A query graph `Q` is an unweighted directed graph whose vertices are the
//! node sets `R_1 … R_n` of the join (referenced by index) and whose edges
//! select which ordered node pairs contribute a DHT score to the aggregate.
//! The paper draws an undirected line between two query vertices as a
//! shorthand for a pair of opposite directed edges; [`QueryGraph::add_undirected_edge`]
//! implements that shorthand.

use crate::error::CoreError;
use crate::Result;

/// A query graph over `n` node sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    node_sets: usize,
    edges: Vec<(usize, usize)>,
}

impl QueryGraph {
    /// Creates a query graph over `node_sets` node sets with no edges.
    pub fn new(node_sets: usize) -> Self {
        QueryGraph {
            node_sets,
            edges: Vec::new(),
        }
    }

    /// Number of node sets `n`.
    pub fn node_set_count(&self) -> usize {
        self.node_sets
    }

    /// The directed edges `(i, j)`, in insertion order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of edges `|E_Q|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `from -> to` (DHT will be evaluated from nodes
    /// of `R_from` towards nodes of `R_to`).
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<()> {
        if from >= self.node_sets {
            return Err(CoreError::InvalidQueryNode {
                index: from,
                node_sets: self.node_sets,
            });
        }
        if to >= self.node_sets {
            return Err(CoreError::InvalidQueryNode {
                index: to,
                node_sets: self.node_sets,
            });
        }
        if from == to {
            return Err(CoreError::SelfLoopQueryEdge(from));
        }
        if self.edges.contains(&(from, to)) {
            return Err(CoreError::DuplicateQueryEdge(from, to));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Adds both directed edges between `a` and `b` (the paper's "single
    /// line" shorthand).
    pub fn add_undirected_edge(&mut self, a: usize, b: usize) -> Result<()> {
        self.add_edge(a, b)?;
        self.add_edge(b, a)?;
        Ok(())
    }

    /// A chain query graph `R_0 -> R_1 -> … -> R_{n-1}` (Figure 2(b) shape),
    /// as used by the scalability experiments of Figures 7(a) and 8(a).
    pub fn chain(n: usize) -> Self {
        let mut q = QueryGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            q.add_edge(i, i + 1).expect("chain edges are always valid");
        }
        q
    }

    /// A directed cycle `R_0 -> R_1 -> … -> R_{n-1} -> R_0`.
    pub fn cycle(n: usize) -> Self {
        let mut q = QueryGraph::chain(n);
        if n >= 3 {
            q.add_edge(n - 1, 0).expect("cycle closing edge is valid");
        }
        q
    }

    /// A triangle query graph over three node sets with edges in both
    /// directions (Figure 2(a)).
    pub fn triangle() -> Self {
        let mut q = QueryGraph::new(3);
        q.add_undirected_edge(0, 1).expect("valid");
        q.add_undirected_edge(1, 2).expect("valid");
        q.add_undirected_edge(0, 2).expect("valid");
        q
    }

    /// A star query graph with node set 0 at the centre and directed edges
    /// from each leaf towards the centre (Figure 2(c): members of each sports
    /// group scored against the photography group `P`).
    pub fn star(n: usize) -> Self {
        let mut q = QueryGraph::new(n);
        for leaf in 1..n {
            q.add_edge(leaf, 0).expect("star edges are always valid");
        }
        q
    }

    /// Whether the query graph is weakly connected (required by AP / PJ /
    /// PJ-i, whose candidate expansion walks the query edges).
    pub fn is_connected(&self) -> bool {
        if self.node_sets == 0 {
            return true;
        }
        if self.edges.is_empty() {
            return self.node_sets == 1;
        }
        let mut adjacency = vec![Vec::new(); self.node_sets];
        for &(a, b) in &self.edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        let mut visited = vec![false; self.node_sets];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for &v in &adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.node_sets
    }

    /// Edges ordered breadth-first starting from `start_edge`, following
    /// adjacency through shared node sets.  Used by the candidate expansion
    /// of the rank join: processing edges in this order guarantees that each
    /// edge (after the first) shares at least one node set with an already
    /// processed edge, provided the query graph is connected.
    pub fn edges_in_expansion_order(&self, start_edge: usize) -> Vec<usize> {
        let m = self.edges.len();
        if m == 0 {
            return Vec::new();
        }
        let mut order = vec![start_edge];
        let mut placed = vec![false; m];
        placed[start_edge] = true;
        let mut covered_sets = vec![false; self.node_sets];
        let (a, b) = self.edges[start_edge];
        covered_sets[a] = true;
        covered_sets[b] = true;
        // Repeatedly add an unplaced edge that touches a covered node set.
        loop {
            let mut progressed = false;
            for (idx, &(a, b)) in self.edges.iter().enumerate() {
                if placed[idx] {
                    continue;
                }
                if covered_sets[a] || covered_sets[b] {
                    placed[idx] = true;
                    covered_sets[a] = true;
                    covered_sets[b] = true;
                    order.push(idx);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Any remaining edges belong to other components; append them so the
        // caller still sees every edge (their candidates simply never complete).
        for (idx, &was_placed) in placed.iter().enumerate() {
            if !was_placed {
                order.push(idx);
            }
        }
        order
    }

    /// Validates the query graph together with the node sets supplied for an
    /// n-way join.
    pub fn validate_node_sets(&self, node_sets: &[dht_graph::NodeSet]) -> Result<()> {
        if node_sets.len() != self.node_sets {
            return Err(CoreError::NodeSetCountMismatch {
                expected: self.node_sets,
                actual: node_sets.len(),
            });
        }
        if self.edges.is_empty() {
            return Err(CoreError::EmptyQueryGraph);
        }
        for set in node_sets {
            if set.is_empty() {
                return Err(CoreError::EmptyNodeSet(set.name().to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::{NodeId, NodeSet};

    #[test]
    fn chain_triangle_star_shapes() {
        let chain = QueryGraph::chain(4);
        assert_eq!(chain.edges(), &[(0, 1), (1, 2), (2, 3)]);
        let tri = QueryGraph::triangle();
        assert_eq!(tri.edge_count(), 6);
        let star = QueryGraph::star(5);
        assert_eq!(star.edge_count(), 4);
        assert!(star.edges().iter().all(|&(_, to)| to == 0));
        let cycle = QueryGraph::cycle(4);
        assert_eq!(cycle.edge_count(), 4);
    }

    #[test]
    fn add_edge_validation() {
        let mut q = QueryGraph::new(3);
        assert!(q.add_edge(0, 1).is_ok());
        assert_eq!(
            q.add_edge(0, 1).unwrap_err(),
            CoreError::DuplicateQueryEdge(0, 1)
        );
        assert_eq!(
            q.add_edge(1, 1).unwrap_err(),
            CoreError::SelfLoopQueryEdge(1)
        );
        assert!(matches!(
            q.add_edge(0, 5),
            Err(CoreError::InvalidQueryNode { index: 5, .. })
        ));
        // opposite direction is a distinct edge
        assert!(q.add_edge(1, 0).is_ok());
    }

    #[test]
    fn connectivity_detection() {
        assert!(QueryGraph::chain(5).is_connected());
        assert!(QueryGraph::triangle().is_connected());
        assert!(QueryGraph::star(6).is_connected());
        let mut disconnected = QueryGraph::new(4);
        disconnected.add_edge(0, 1).unwrap();
        disconnected.add_edge(2, 3).unwrap();
        assert!(!disconnected.is_connected());
        // an edgeless graph with more than one node set is not connected
        assert!(!QueryGraph::new(2).is_connected());
        assert!(QueryGraph::new(1).is_connected());
    }

    #[test]
    fn expansion_order_reaches_every_edge_from_any_start() {
        let q = QueryGraph::triangle();
        for start in 0..q.edge_count() {
            let order = q.edges_in_expansion_order(start);
            assert_eq!(order.len(), q.edge_count());
            assert_eq!(order[0], start);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..q.edge_count()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn expansion_order_respects_adjacency_on_chains() {
        let q = QueryGraph::chain(4);
        let order = q.edges_in_expansion_order(2);
        assert_eq!(order[0], 2);
        // every subsequent edge touches a node set covered by earlier edges
        let mut covered = [false; 4];
        let (a, b) = q.edges()[2];
        covered[a] = true;
        covered[b] = true;
        for &e in &order[1..] {
            let (a, b) = q.edges()[e];
            assert!(covered[a] || covered[b]);
            covered[a] = true;
            covered[b] = true;
        }
    }

    #[test]
    fn validate_node_sets_checks_shape() {
        let q = QueryGraph::chain(3);
        let sets = vec![
            NodeSet::new("A", [NodeId(0)]),
            NodeSet::new("B", [NodeId(1)]),
            NodeSet::new("C", [NodeId(2)]),
        ];
        assert!(q.validate_node_sets(&sets).is_ok());
        assert!(matches!(
            q.validate_node_sets(&sets[..2]),
            Err(CoreError::NodeSetCountMismatch { .. })
        ));
        let with_empty = vec![
            NodeSet::new("A", [NodeId(0)]),
            NodeSet::empty("B"),
            NodeSet::new("C", [NodeId(2)]),
        ];
        assert!(matches!(
            q.validate_node_sets(&with_empty),
            Err(CoreError::EmptyNodeSet(_))
        ));
        let edgeless = QueryGraph::new(3);
        assert_eq!(
            edgeless.validate_node_sets(&sets).unwrap_err(),
            CoreError::EmptyQueryGraph
        );
    }
}

//! The querystream line language: a tiny textual query format shared by
//! every front end that answers query streams — `dht querystream` (files),
//! `dht-server` (the TCP line protocol) and `dht loadgen` (replayed files).
//!
//! One query per line; `#` starts a comment, blank lines are skipped:
//!
//! ```text
//! [DEADLINE <ms>] [PRIO <class>] [@<graph>] [TRACE] LEFT RIGHT [k] [ALGO]    # two-way join
//! [DEADLINE <ms>] [PRIO <class>] [@<graph>] [TRACE] nway SHAPE S1 ... Sn [k] [ALGO] [AGG]
//! ```
//!
//! `LEFT`/`RIGHT`/`S1..Sn` name node sets; `SHAPE` is `chain`, `cycle`,
//! `triangle` or `star`; the two-way `ALGORITHM` is one of `f-bj`, `f-idj`,
//! `b-bj`, `b-idj-x`, `b-idj-y` or `auto`; the n-way `ALGO` is `nl`, `ap`,
//! `pj`, `pj-i` or `auto`; `AGG` is `min`, `max`, `sum` or `mean`.  The
//! optional trailing fields may appear in any order (each at most once).
//!
//! The optional **QoS prefixes** (any order, each at most once) carry
//! serving metadata: `DEADLINE <ms>` gives the request a millisecond
//! budget — a server answers it with a typed `ERR DEADLINE` instead of
//! executing it once the budget is spent in queue — `PRIO <class>`
//! assigns it to a scheduling class ([`Priority::Interactive`], the
//! default, or [`Priority::Batch`]) — and `@<graph>` names the graph a
//! multi-graph server should answer the line against (overriding the
//! session's `USE` selection for that one line).  A bare `TRACE` prefix
//! asks the answering front end to record per-phase span timings for
//! that one query and return them as a `# trace:` comment line ahead of
//! the answer rows.  `DEADLINE`, `PRIO` and `TRACE` are therefore
//! reserved words (a node set cannot be named any of them) and a set
//! name cannot start with `@`.  In-process front ends
//! (`dht querystream`) parse and validate the prefixes but answer every
//! query regardless — the prefixes only change *scheduling, routing and
//! reporting*, never answers.
//!
//! Living in `dht-core`, this module is the **single** parser for the
//! language: the CLI and the server cannot drift apart, because both call
//! [`parse_query_file`] / [`parse_query_line`].  Every parsed spec is
//! validated eagerly ([`QuerySpec::validate`]), so malformed queries fail
//! at parse time with their line number and offending token instead of
//! mid-stream.

use std::fmt;

use dht_graph::NodeSet;

use crate::multiway::NWayAlgorithm;
use crate::spec::{AlgorithmChoice, NWaySpec, QuerySpec, TwoWaySpec};
use crate::twoway::TwoWayAlgorithm;
use crate::{Aggregate, QueryGraph};

/// A parse failure, attributed to the 1-based line it occurred on.
///
/// The message always embeds the offending token (when one exists), so a
/// error in a thousand-line query file points at exactly what to fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// 1-based line number of the offending query.
    pub line_no: usize,
    /// What went wrong (already includes the offending token).
    pub message: String,
}

impl LineError {
    fn new(line_no: usize, message: impl Into<String>) -> Self {
        LineError {
            line_no,
            message: message.into(),
        }
    }

    /// Wraps a token-level error with the offending token's spelling.
    fn bad_token(line_no: usize, token: &str, message: impl fmt::Display) -> Self {
        LineError::new(line_no, format!("bad token '{token}': {message}"))
    }
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query line {}: {}", self.line_no, self.message)
    }
}

impl std::error::Error for LineError {}

/// Scheduling class a query line assigns itself with the `PRIO` prefix.
///
/// Priority is serving metadata: a two-level server queue admits and
/// schedules the classes separately (interactive ahead of batch), but the
/// *answer* of a query never depends on its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; scheduled ahead of batch (the default
    /// for lines without a `PRIO` prefix).
    #[default]
    Interactive,
    /// Throughput traffic; admitted into its own bounded queue and served
    /// only when no interactive request is waiting.
    Batch,
}

impl Priority {
    /// Parses `interactive` / `batch`, case-insensitively.
    pub fn parse(name: &str) -> Option<Priority> {
        match name.to_ascii_lowercase().as_str() {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// The class's canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Defaults applied to query lines that omit optional fields.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// `k` for queries that omit it.
    pub default_k: usize,
    /// Two-way algorithm for queries that omit it.
    pub default_two_way: AlgorithmChoice<TwoWayAlgorithm>,
    /// PJ / PJ-i initial 2-way join size `m`.
    pub m: usize,
}

impl Default for ParseOptions {
    /// `k = 10`, two-way default B-IDJ-Y, `m = 50` — the `dht querystream`
    /// defaults, which the server inherits so both ends agree.
    fn default() -> Self {
        ParseOptions {
            default_k: 10,
            default_two_way: AlgorithmChoice::Fixed(TwoWayAlgorithm::BackwardIdjY),
            m: 50,
        }
    }
}

/// One parsed (and validated) query with the line it came from.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The declarative query.
    pub spec: QuerySpec,
    /// 1-based line number in the source text.
    pub line_no: usize,
    /// Millisecond budget from a `DEADLINE <ms>` prefix (`None` when the
    /// line had none — the request never expires).
    pub deadline_ms: Option<u64>,
    /// Scheduling class from a `PRIO <class>` prefix
    /// ([`Priority::Interactive`] when the line had none).
    pub priority: Priority,
    /// Graph namespace from an `@<graph>` prefix (`None` when the line
    /// had none — a multi-graph server then uses the session's `USE`
    /// selection).  Routing metadata only: single-graph front ends parse
    /// and ignore it.
    pub graph: Option<String>,
    /// Whether the line carried a `TRACE` prefix asking for a per-phase
    /// span breakdown (`# trace:` comment line) ahead of the answer.
    /// Reporting metadata only: answers never depend on it.
    pub trace: bool,
}

/// The QoS / namespace metadata split off the front of one query line.
///
/// Returned by [`split_query_line`] so routing front ends (`dht-router`)
/// can understand scheduling metadata with exactly the server's grammar
/// while forwarding the query body untouched.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinePrefixes {
    /// Millisecond budget from a `DEADLINE <ms>` prefix.
    pub deadline_ms: Option<u64>,
    /// Scheduling class from a `PRIO <class>` prefix.
    pub priority: Priority,
    /// Graph namespace from an `@<graph>` prefix.
    pub graph: Option<String>,
    /// Whether the line carried a `TRACE` prefix.
    pub trace: bool,
}

impl LinePrefixes {
    /// Renders the prefixes back into their canonical leading tokens
    /// (`DEADLINE <ms> PRIO <class> @<graph> TRACE `), ending with a
    /// trailing space when non-empty, so
    /// `format!("{}{}", prefixes.render(), body)` round-trips a split
    /// line into one the parser reads identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!("DEADLINE {ms} "));
        }
        if self.priority != Priority::Interactive {
            out.push_str(&format!("PRIO {} ", self.priority.name()));
        }
        if let Some(graph) = &self.graph {
            out.push_str(&format!("@{graph} "));
        }
        if self.trace {
            out.push_str("TRACE ");
        }
        out
    }
}

/// Parses a two-way algorithm name (`f-bj`, `fidj`, `B-IDJ-Y`, …),
/// case-insensitively.
///
/// # Errors
/// Returns a message naming the token and the accepted spellings.
pub fn parse_two_way_algorithm(name: &str) -> Result<TwoWayAlgorithm, String> {
    match name.to_ascii_lowercase().as_str() {
        "f-bj" | "fbj" => Ok(TwoWayAlgorithm::ForwardBasic),
        "f-idj" | "fidj" => Ok(TwoWayAlgorithm::ForwardIdj),
        "b-bj" | "bbj" => Ok(TwoWayAlgorithm::BackwardBasic),
        "b-idj-x" | "bidjx" => Ok(TwoWayAlgorithm::BackwardIdjX),
        "b-idj-y" | "bidjy" => Ok(TwoWayAlgorithm::BackwardIdjY),
        _ => Err(format!(
            "unknown 2-way algorithm '{name}' (expected F-BJ, F-IDJ, B-BJ, B-IDJ-X or B-IDJ-Y)"
        )),
    }
}

/// Parses a two-way algorithm token into an [`AlgorithmChoice`]: `auto`
/// selects planner-driven selection, anything else must name one of the
/// five fixed algorithms.
///
/// # Errors
/// Returns a message naming the token and the accepted spellings.
pub fn parse_two_way_choice(name: &str) -> Result<AlgorithmChoice<TwoWayAlgorithm>, String> {
    if name.eq_ignore_ascii_case("auto") {
        return Ok(AlgorithmChoice::Auto);
    }
    parse_two_way_algorithm(name).map(AlgorithmChoice::Fixed)
}

/// Parses an n-way algorithm name (`nl`, `ap`, `pj`, `pj-i`),
/// case-insensitively; `m` seeds the partial-join variants.
///
/// # Errors
/// Returns a message naming the token and the accepted spellings.
pub fn parse_n_way_algorithm(name: &str, m: usize) -> Result<NWayAlgorithm, String> {
    match name.to_ascii_lowercase().as_str() {
        "nl" => Ok(NWayAlgorithm::NestedLoop),
        "ap" => Ok(NWayAlgorithm::AllPairs),
        "pj" => Ok(NWayAlgorithm::PartialJoin { m }),
        "pj-i" | "pji" => Ok(NWayAlgorithm::IncrementalPartialJoin { m }),
        _ => Err(format!(
            "unknown n-way algorithm '{name}' (expected NL, AP, PJ or PJ-i)"
        )),
    }
}

/// Parses an aggregate name (`min`, `max`, `sum`, `mean`/`avg`),
/// case-insensitively.
///
/// # Errors
/// Returns a message naming the token and the accepted spellings.
pub fn parse_aggregate(name: &str) -> Result<Aggregate, String> {
    match name.to_ascii_lowercase().as_str() {
        "min" => Ok(Aggregate::Min),
        "max" => Ok(Aggregate::Max),
        "sum" => Ok(Aggregate::Sum),
        "mean" | "avg" => Ok(Aggregate::Mean),
        _ => Err(format!(
            "unknown aggregate '{name}' (expected min, max, sum or mean)"
        )),
    }
}

/// Builds a query graph of `shape` (`chain`, `cycle`, `triangle`, `star`)
/// over `n` node sets.
///
/// # Errors
/// Returns a message naming the shape when it is unknown or its arity does
/// not fit `n`.
pub fn build_query_shape(shape: &str, n: usize) -> Result<QueryGraph, String> {
    match shape.to_ascii_lowercase().as_str() {
        "chain" => Ok(QueryGraph::chain(n)),
        "cycle" => Ok(QueryGraph::cycle(n)),
        "star" => Ok(QueryGraph::star(n)),
        "triangle" => {
            if n != 3 {
                return Err(format!(
                    "a triangle query graph needs exactly 3 node sets, got {n}"
                ));
            }
            Ok(QueryGraph::triangle())
        }
        other => Err(format!(
            "unknown query shape '{other}' (expected chain, cycle, triangle or star)"
        )),
    }
}

/// Looks a set name up in `sets`, with a line-numbered error naming the
/// offending token and the available names.
fn set_index(sets: &[NodeSet], name: &str, line_no: usize) -> Result<usize, LineError> {
    sets.iter().position(|s| s.name() == name).ok_or_else(|| {
        LineError::new(
            line_no,
            format!(
                "unknown node set '{name}' (available sets: {})",
                sets.iter()
                    .map(NodeSet::name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
    })
}

/// Parses one n-way query line (the fields after the leading `nway`):
/// `SHAPE S1 S2 ... Sn [k] [ALGO] [AGG]`, where `ALGO` may be `auto`.
fn parse_nway_fields(
    fields: &[&str],
    sets: &[NodeSet],
    options: &ParseOptions,
    line_no: usize,
) -> Result<QuerySpec, LineError> {
    let Some((&shape, rest)) = fields.split_first() else {
        return Err(LineError::new(
            line_no,
            "`nway` needs a query shape and node sets",
        ));
    };
    // Leading fields that name known sets are the query's node sets; the
    // remainder are the optional k / algorithm / aggregate, in any order.
    let n_sets = rest
        .iter()
        .take_while(|name| sets.iter().any(|s| s.name() == **name))
        .count();
    if n_sets < 2 {
        return Err(LineError::new(
            line_no,
            format!(
                "an n-way query needs at least two node sets, got '{}' \
                 (is a set name misspelled?)",
                fields.join(" ")
            ),
        ));
    }
    let chosen: Vec<NodeSet> = rest[..n_sets]
        .iter()
        .map(|name| set_index(sets, name, line_no).map(|i| sets[i].clone()))
        .collect::<Result<_, _>>()?;
    let query = build_query_shape(shape, chosen.len())
        .map_err(|message| LineError::bad_token(line_no, shape, message))?;
    let mut k = None;
    let mut algorithm: Option<AlgorithmChoice<NWayAlgorithm>> = None;
    let mut aggregate = None;
    let duplicate = |what: &str, field: &str| {
        LineError::new(line_no, format!("duplicate {what} field '{field}'"))
    };
    for &field in &rest[n_sets..] {
        if let Ok(parsed) = field.parse::<usize>() {
            if k.replace(parsed).is_some() {
                return Err(duplicate("k", field));
            }
        } else if field.eq_ignore_ascii_case("auto") {
            if algorithm.replace(AlgorithmChoice::Auto).is_some() {
                return Err(duplicate("algorithm", field));
            }
        } else if let Ok(parsed) = parse_aggregate(field) {
            if aggregate.replace(parsed).is_some() {
                return Err(duplicate("aggregate", field));
            }
        } else {
            let parsed = parse_n_way_algorithm(field, options.m)
                .map_err(|message| LineError::bad_token(line_no, field, message))?;
            if algorithm.replace(AlgorithmChoice::Fixed(parsed)).is_some() {
                return Err(duplicate("algorithm", field));
            }
        }
    }
    let spec = NWaySpec::new(query, chosen, k.unwrap_or(options.default_k))
        .with_aggregate(aggregate.unwrap_or(Aggregate::Min))
        .with_algorithm(algorithm.unwrap_or(AlgorithmChoice::Fixed(
            NWayAlgorithm::IncrementalPartialJoin { m: options.m },
        )));
    Ok(QuerySpec::NWay(spec))
}

/// Parses one two-way query line: `LEFT RIGHT [k] [ALGORITHM]`, where
/// `ALGORITHM` may be `auto`.
fn parse_two_way_fields(
    fields: &[&str],
    sets: &[NodeSet],
    options: &ParseOptions,
    line_no: usize,
) -> Result<QuerySpec, LineError> {
    if fields.len() < 2 || fields.len() > 4 {
        return Err(LineError::new(
            line_no,
            format!(
                "expected `LEFT RIGHT [k] [ALGORITHM]` or \
                 `nway SHAPE S1 S2 ... [k] [ALGO] [AGG]`, got '{}'",
                fields.join(" ")
            ),
        ));
    }
    let left = set_index(sets, fields[0], line_no)?;
    let right = set_index(sets, fields[1], line_no)?;
    let mut k = None;
    let mut algorithm = None;
    for &field in &fields[2..] {
        if let Ok(parsed) = field.parse::<usize>() {
            if k.replace(parsed).is_some() {
                return Err(LineError::new(
                    line_no,
                    format!("duplicate k field '{field}'"),
                ));
            }
        } else {
            let parsed = parse_two_way_choice(field)
                .map_err(|message| LineError::bad_token(line_no, field, message))?;
            if algorithm.replace(parsed).is_some() {
                return Err(LineError::new(
                    line_no,
                    format!("duplicate algorithm field '{field}'"),
                ));
            }
        }
    }
    let spec = TwoWaySpec::new(
        sets[left].clone(),
        sets[right].clone(),
        k.unwrap_or(options.default_k),
    )
    .with_algorithm(algorithm.unwrap_or(options.default_two_way));
    Ok(QuerySpec::TwoWay(spec))
}

/// Whether `name` is a legal graph name: non-empty, ASCII alphanumerics
/// plus `_`, `.` and `-` only.  Shared by the `@<graph>` prefix parser and
/// the server's `--graph NAME=PATH` registration so the two cannot drift.
pub fn is_valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Consumes the optional `DEADLINE <ms>` / `PRIO <class>` / `@<graph>` /
/// `TRACE` QoS prefixes (any order, each at most once) from the front of
/// `fields`, returning the parsed metadata and the remaining query
/// fields.
fn parse_qos_prefixes<'f>(
    mut fields: &'f [&'f str],
    line_no: usize,
) -> Result<(LinePrefixes, &'f [&'f str]), LineError> {
    let mut deadline_ms: Option<u64> = None;
    let mut priority: Option<Priority> = None;
    let mut graph: Option<String> = None;
    let mut trace = false;
    loop {
        match fields.first() {
            Some(head) if head.starts_with('@') => {
                if graph.is_some() {
                    return Err(LineError::new(line_no, "duplicate @<graph> prefix"));
                }
                let name = &head[1..];
                if !is_valid_graph_name(name) {
                    return Err(LineError::bad_token(
                        line_no,
                        head,
                        "graph namespace must be `@<name>` with a name of \
                         ASCII letters, digits, '_', '.' or '-'",
                    ));
                }
                graph = Some(name.to_string());
                fields = &fields[1..];
            }
            Some(head) if head.eq_ignore_ascii_case("deadline") => {
                if deadline_ms.is_some() {
                    return Err(LineError::new(line_no, "duplicate DEADLINE prefix"));
                }
                let Some(value) = fields.get(1) else {
                    return Err(LineError::new(
                        line_no,
                        "DEADLINE needs a millisecond budget (`DEADLINE <ms>`)",
                    ));
                };
                let ms = value
                    .parse::<u64>()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .ok_or_else(|| {
                        LineError::bad_token(
                            line_no,
                            value,
                            "DEADLINE budget must be a positive integer (milliseconds)",
                        )
                    })?;
                deadline_ms = Some(ms);
                fields = &fields[2..];
            }
            Some(head) if head.eq_ignore_ascii_case("prio") => {
                if priority.is_some() {
                    return Err(LineError::new(line_no, "duplicate PRIO prefix"));
                }
                let Some(value) = fields.get(1) else {
                    return Err(LineError::new(
                        line_no,
                        "PRIO needs a class (`PRIO interactive` or `PRIO batch`)",
                    ));
                };
                let class = Priority::parse(value).ok_or_else(|| {
                    LineError::bad_token(
                        line_no,
                        value,
                        "unknown priority class (expected interactive or batch)",
                    )
                })?;
                priority = Some(class);
                fields = &fields[2..];
            }
            Some(head) if head.eq_ignore_ascii_case("trace") => {
                if trace {
                    return Err(LineError::new(line_no, "duplicate TRACE prefix"));
                }
                trace = true;
                fields = &fields[1..];
            }
            _ => break,
        }
    }
    Ok((
        LinePrefixes {
            deadline_ms,
            priority: priority.unwrap_or_default(),
            graph,
            trace,
        },
        fields,
    ))
}

/// Splits one raw line into its QoS / namespace prefixes and the
/// remaining query fields **without** resolving set names against a
/// catalogue.  Routing front ends (`dht-router`) use this to read the
/// scheduling metadata with exactly the grammar the server applies while
/// leaving the query body untouched.  Returns `Ok(None)` for blank lines
/// and comments.
///
/// # Errors
/// Fails (with `line_no` and the offending token) only on malformed
/// *prefixes*; the body fields are not validated here.
pub fn split_query_line(
    raw: &str,
    line_no: usize,
) -> Result<Option<(LinePrefixes, Vec<String>)>, LineError> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    let (prefixes, rest) = parse_qos_prefixes(&fields, line_no)?;
    Ok(Some((
        prefixes,
        rest.iter().map(|field| field.to_string()).collect(),
    )))
}

/// Parses a single line of the query language, attributing failures to
/// `line_no`.  Returns `Ok(None)` for blank lines and comments.
///
/// The parsed spec is validated eagerly, so a line that parses is also a
/// query the engine will accept.
///
/// # Errors
/// Fails with the line number and the offending token on malformed input.
pub fn parse_query_line(
    raw: &str,
    sets: &[NodeSet],
    options: &ParseOptions,
    line_no: usize,
) -> Result<Option<ParsedQuery>, LineError> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    let (prefixes, fields) = parse_qos_prefixes(&fields, line_no)?;
    let spec = match fields.first() {
        None => {
            return Err(LineError::new(
                line_no,
                "a QoS prefix must be followed by a query line",
            ))
        }
        Some(head) if head.eq_ignore_ascii_case("nway") => {
            parse_nway_fields(&fields[1..], sets, options, line_no)?
        }
        Some(_) => parse_two_way_fields(fields, sets, options, line_no)?,
    };
    spec.validate()
        .map_err(|error| LineError::new(line_no, error.to_string()))?;
    Ok(Some(ParsedQuery {
        spec,
        line_no,
        deadline_ms: prefixes.deadline_ms,
        priority: prefixes.priority,
        graph: prefixes.graph,
        trace: prefixes.trace,
    }))
}

/// Parses a whole query file: one query per line, `#` comments and blank
/// lines ignored.  The returned vector may be empty (a file of comments);
/// callers decide whether that is an error.
///
/// # Errors
/// Fails on the first malformed line, with its line number and offending
/// token.
pub fn parse_query_file(
    text: &str,
    sets: &[NodeSet],
    options: &ParseOptions,
) -> Result<Vec<ParsedQuery>, LineError> {
    let mut queries = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        if let Some(parsed) = parse_query_line(raw, sets, options, index + 1)? {
            queries.push(parsed);
        }
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::NodeId;

    fn sets() -> Vec<NodeSet> {
        vec![
            NodeSet::new("P", (0..5).map(NodeId)),
            NodeSet::new("Q", (5..10).map(NodeId)),
            NodeSet::new("R", (2..8).map(NodeId)),
        ]
    }

    fn parse(text: &str) -> Result<Vec<ParsedQuery>, LineError> {
        parse_query_file(text, &sets(), &ParseOptions::default())
    }

    #[test]
    fn two_way_lines_apply_defaults_and_overrides() {
        let queries = parse("P Q\nQ P 3\nP R 2 b-bj\nR Q auto\n").unwrap();
        assert_eq!(queries.len(), 4);
        let QuerySpec::TwoWay(first) = &queries[0].spec else {
            panic!("two-way line");
        };
        assert_eq!(first.k, 10, "default k");
        assert_eq!(
            first.algorithm,
            AlgorithmChoice::Fixed(TwoWayAlgorithm::BackwardIdjY),
            "default algorithm"
        );
        let QuerySpec::TwoWay(third) = &queries[2].spec else {
            panic!("two-way line");
        };
        assert_eq!(third.k, 2);
        assert_eq!(
            third.algorithm,
            AlgorithmChoice::Fixed(TwoWayAlgorithm::BackwardBasic)
        );
        let QuerySpec::TwoWay(fourth) = &queries[3].spec else {
            panic!("two-way line");
        };
        assert_eq!(fourth.algorithm, AlgorithmChoice::Auto);
        assert_eq!(queries[3].line_no, 4);
    }

    #[test]
    fn nway_lines_accept_trailing_fields_in_any_order() {
        let queries = parse(
            "nway chain P Q 2 ap min\n\
             nway chain P Q R sum 3\n\
             nway triangle P Q R auto\n",
        )
        .unwrap();
        assert_eq!(queries.len(), 3);
        let QuerySpec::NWay(second) = &queries[1].spec else {
            panic!("n-way line");
        };
        assert_eq!(second.k, 3);
        assert_eq!(second.aggregate, Aggregate::Sum);
        assert_eq!(
            second.algorithm,
            AlgorithmChoice::Fixed(NWayAlgorithm::IncrementalPartialJoin { m: 50 }),
            "default n-way algorithm"
        );
        let QuerySpec::NWay(third) = &queries[2].spec else {
            panic!("n-way line");
        };
        assert_eq!(third.algorithm, AlgorithmChoice::Auto);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped_but_keep_line_numbers() {
        let queries = parse("# header\n\nP Q 3   # trailing comment\n\nQ P\n").unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].line_no, 3);
        assert_eq!(queries[1].line_no, 5);
        assert!(parse("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn errors_carry_line_numbers_and_offending_tokens() {
        // Unknown set, with the available names listed.
        let err = parse("P Q\nP Z\n").unwrap_err();
        assert_eq!(err.line_no, 2);
        assert!(err.to_string().contains("query line 2"), "{err}");
        assert!(err.to_string().contains("unknown node set 'Z'"), "{err}");
        assert!(err.to_string().contains("P, Q, R"), "{err}");

        // Malformed verb / arity.
        let err = parse("P\n").unwrap_err();
        assert!(err.to_string().contains("LEFT RIGHT"), "{err}");

        // Bad algorithm token is named with its spelling.
        let err = parse("P Q 3 b-idj-z\n").unwrap_err();
        assert!(err.to_string().contains("bad token 'b-idj-z'"), "{err}");

        // Duplicate optional fields are rejected, not silently overwritten.
        let err = parse("P Q 3 4\n").unwrap_err();
        assert!(err.to_string().contains("duplicate k"), "{err}");
        let err = parse("P Q b-bj b-bj\n").unwrap_err();
        assert!(err.to_string().contains("duplicate algorithm"), "{err}");
        let err = parse("nway chain P Q min max\n").unwrap_err();
        assert!(err.to_string().contains("duplicate aggregate"), "{err}");

        // n-way structure errors name the shape token.
        let err = parse("nway chain P 3\n").unwrap_err();
        assert!(err.to_string().contains("at least two node sets"), "{err}");
        let err = parse("nway blob P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token 'blob'"), "{err}");
        assert!(err.to_string().contains("unknown query shape"), "{err}");
        let err = parse("nway triangle P Q\n").unwrap_err();
        assert!(err.to_string().contains("exactly 3"), "{err}");
        let err = parse("nway\n").unwrap_err();
        assert!(err.to_string().contains("needs a query shape"), "{err}");

        // Validation runs at parse time: k = 0 fails with the line number.
        let err = parse("P Q 0\n").unwrap_err();
        assert_eq!(err.line_no, 1);
        assert!(err.to_string().contains("k = 0"), "{err}");
    }

    #[test]
    fn qos_prefixes_parse_in_any_order_and_default_off() {
        let queries = parse(
            "P Q 3\n\
             DEADLINE 250 P Q 3\n\
             PRIO batch Q P\n\
             DEADLINE 40 PRIO interactive nway chain P Q 2 ap min\n\
             prio batch deadline 99 P Q auto\n",
        )
        .unwrap();
        assert_eq!(queries.len(), 5);
        assert_eq!(queries[0].deadline_ms, None);
        assert_eq!(queries[0].priority, Priority::Interactive, "default class");
        assert_eq!(queries[1].deadline_ms, Some(250));
        assert_eq!(queries[1].priority, Priority::Interactive);
        assert_eq!(queries[2].deadline_ms, None);
        assert_eq!(queries[2].priority, Priority::Batch);
        assert_eq!(queries[3].deadline_ms, Some(40));
        assert_eq!(queries[3].priority, Priority::Interactive);
        assert!(matches!(queries[3].spec, QuerySpec::NWay(_)));
        // Prefixes compose in either order, case-insensitively, and leave
        // the query itself identical to its unprefixed spelling.
        assert_eq!(queries[4].deadline_ms, Some(99));
        assert_eq!(queries[4].priority, Priority::Batch);
        assert_eq!(
            format!("{:?}", queries[4].spec),
            format!("{:?}", parse("P Q auto\n").unwrap()[0].spec),
            "prefixes never change the parsed query"
        );
    }

    #[test]
    fn graph_prefix_parses_and_never_changes_the_query() {
        let queries = parse(
            "P Q 3\n\
             @yeast P Q 3\n\
             DEADLINE 250 @web-2014 PRIO batch P Q 3\n\
             @g.1 nway chain P Q 2 ap min\n",
        )
        .unwrap();
        assert_eq!(queries.len(), 4);
        assert_eq!(queries[0].graph, None, "default: no namespace");
        assert_eq!(queries[1].graph.as_deref(), Some("yeast"));
        assert_eq!(queries[2].graph.as_deref(), Some("web-2014"));
        assert_eq!(queries[2].deadline_ms, Some(250));
        assert_eq!(queries[2].priority, Priority::Batch);
        assert_eq!(queries[3].graph.as_deref(), Some("g.1"));
        assert!(matches!(queries[3].spec, QuerySpec::NWay(_)));
        assert_eq!(
            format!("{:?}", queries[1].spec),
            format!("{:?}", queries[0].spec),
            "@<graph> never changes the parsed query"
        );

        let err = parse("@ P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token '@'"), "{err}");
        let err = parse("@two graphs P Q\n").unwrap_err();
        assert!(err.to_string().contains("unknown node set"), "{err}");
        let err = parse("@a @b P Q\n").unwrap_err();
        assert!(err.to_string().contains("duplicate @<graph>"), "{err}");
        let err = parse("@bad!name P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token '@bad!name'"), "{err}");

        assert!(is_valid_graph_name("yeast_2.0-a"));
        assert!(!is_valid_graph_name(""));
        assert!(!is_valid_graph_name("a b"));
        assert!(!is_valid_graph_name("a=b"));
    }

    #[test]
    fn trace_prefix_parses_composes_and_never_changes_the_query() {
        let queries = parse(
            "P Q 3\n\
             TRACE P Q 3\n\
             trace DEADLINE 250 PRIO batch @g P Q 3\n\
             DEADLINE 40 TRACE nway chain P Q 2 ap min\n",
        )
        .unwrap();
        assert_eq!(queries.len(), 4);
        assert!(!queries[0].trace, "default: tracing off");
        assert!(queries[1].trace);
        assert!(queries[2].trace, "case-insensitive, any order");
        assert_eq!(queries[2].deadline_ms, Some(250));
        assert_eq!(queries[2].priority, Priority::Batch);
        assert_eq!(queries[2].graph.as_deref(), Some("g"));
        assert!(queries[3].trace);
        assert!(matches!(queries[3].spec, QuerySpec::NWay(_)));
        assert_eq!(
            format!("{:?}", queries[1].spec),
            format!("{:?}", queries[0].spec),
            "TRACE never changes the parsed query"
        );

        let err = parse("TRACE TRACE P Q\n").unwrap_err();
        assert!(err.to_string().contains("duplicate TRACE"), "{err}");
        let err = parse("TRACE\n").unwrap_err();
        assert!(
            err.to_string().contains("followed by a query line"),
            "{err}"
        );

        // split + render round-trip the prefix.
        let (prefixes, body) = split_query_line("TRACE DEADLINE 9 P Q", 1)
            .unwrap()
            .expect("non-empty line");
        assert!(prefixes.trace);
        assert_eq!(prefixes.deadline_ms, Some(9));
        assert_eq!(body, ["P", "Q"]);
        assert_eq!(prefixes.render(), "DEADLINE 9 TRACE ");
        let rebuilt = format!("{}{}", prefixes.render(), body.join(" "));
        let reparsed = parse_query_line(&rebuilt, &sets(), &ParseOptions::default(), 1)
            .unwrap()
            .expect("non-empty line");
        assert!(reparsed.trace);
        assert_eq!(reparsed.deadline_ms, Some(9));
    }

    #[test]
    fn split_query_line_matches_the_parser_and_round_trips() {
        // Splitting consumes exactly the prefixes the parser consumes and
        // leaves the body fields verbatim.
        let (prefixes, body) = split_query_line("  DEADLINE 99 @g PRIO batch P Q 3 auto # c", 1)
            .unwrap()
            .expect("non-empty line");
        assert_eq!(prefixes.deadline_ms, Some(99));
        assert_eq!(prefixes.priority, Priority::Batch);
        assert_eq!(prefixes.graph.as_deref(), Some("g"));
        assert_eq!(body, ["P", "Q", "3", "auto"]);
        // render() round-trips into a line the parser reads identically.
        let rebuilt = format!("{}{}", prefixes.render(), body.join(" "));
        let reparsed = parse_query_line(&rebuilt, &sets(), &ParseOptions::default(), 1)
            .unwrap()
            .expect("non-empty line");
        assert_eq!(reparsed.deadline_ms, Some(99));
        assert_eq!(reparsed.priority, Priority::Batch);
        assert_eq!(reparsed.graph.as_deref(), Some("g"));
        assert_eq!(
            format!("{:?}", reparsed.spec),
            format!("{:?}", parse("P Q 3 auto\n").unwrap()[0].spec)
        );
        // Blank lines and comments split to None; prefix errors surface.
        assert!(split_query_line("# only a comment", 7).unwrap().is_none());
        assert!(split_query_line("   ", 7).unwrap().is_none());
        let err = split_query_line("DEADLINE zero P Q", 7).unwrap_err();
        assert_eq!(err.line_no, 7);
        assert!(err.to_string().contains("bad token 'zero'"), "{err}");
        // The empty-prefix render is empty, so unprefixed lines pass through.
        assert_eq!(LinePrefixes::default().render(), "");
    }

    #[test]
    fn qos_prefix_errors_carry_lines_and_tokens() {
        let err = parse("DEADLINE P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token 'P'"), "{err}");
        let err = parse("DEADLINE\n").unwrap_err();
        assert!(err.to_string().contains("millisecond budget"), "{err}");
        let err = parse("DEADLINE 0 P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token '0'"), "{err}");
        assert!(err.to_string().contains("positive integer"), "{err}");
        let err = parse("DEADLINE -5 P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token '-5'"), "{err}");
        let err = parse("DEADLINE 5 DEADLINE 6 P Q\n").unwrap_err();
        assert!(err.to_string().contains("duplicate DEADLINE"), "{err}");
        let err = parse("PRIO urgent P Q\n").unwrap_err();
        assert!(err.to_string().contains("bad token 'urgent'"), "{err}");
        assert!(err.to_string().contains("interactive or batch"), "{err}");
        let err = parse("PRIO batch PRIO batch P Q\n").unwrap_err();
        assert!(err.to_string().contains("duplicate PRIO"), "{err}");
        let err = parse("PRIO\n").unwrap_err();
        assert!(err.to_string().contains("needs a class"), "{err}");
        let err = parse("DEADLINE 10 PRIO batch\n").unwrap_err();
        assert!(
            err.to_string().contains("followed by a query line"),
            "{err}"
        );
        assert_eq!(Priority::parse("BATCH"), Some(Priority::Batch));
        assert_eq!(Priority::parse("Interactive"), Some(Priority::Interactive));
        assert_eq!(Priority::parse("bulk"), None);
        assert_eq!(Priority::Batch.name(), "batch");
    }

    #[test]
    fn token_parsers_are_case_insensitive_and_strict() {
        assert_eq!(
            parse_two_way_algorithm("B-IDJ-Y").unwrap(),
            TwoWayAlgorithm::BackwardIdjY
        );
        assert_eq!(parse_two_way_choice("AUTO").unwrap(), AlgorithmChoice::Auto);
        assert!(parse_two_way_algorithm("quantum").is_err());
        assert_eq!(
            parse_n_way_algorithm("PJ-I", 7).unwrap(),
            NWayAlgorithm::IncrementalPartialJoin { m: 7 }
        );
        assert!(parse_n_way_algorithm("zz", 7).is_err());
        assert_eq!(parse_aggregate("AVG").unwrap(), Aggregate::Mean);
        assert!(parse_aggregate("median").is_err());
        assert_eq!(build_query_shape("chain", 4).unwrap().edge_count(), 3);
        assert!(build_query_shape("triangle", 4).is_err());
        assert!(build_query_shape("hypercube", 3).is_err());
    }

    #[test]
    fn single_line_parser_matches_the_file_parser() {
        let text = "P Q 3 auto\nnway star P Q R 2 max\n";
        let from_file = parse(text).unwrap();
        for (index, raw) in text.lines().enumerate() {
            let single = parse_query_line(raw, &sets(), &ParseOptions::default(), index + 1)
                .unwrap()
                .expect("non-empty line");
            assert_eq!(
                format!("{:?}", single.spec),
                format!("{:?}", from_file[index].spec),
                "line {}",
                index + 1
            );
        }
    }
}

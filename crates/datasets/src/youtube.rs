//! Synthetic analogue of the YouTube social graph.
//!
//! The paper's YouTube dataset is a large, undirected, unweighted friendship
//! graph (1.1M nodes, 3M edges) where users additionally create *interest
//! groups*; the groups are the node sets of the join queries (the link
//! prediction experiment uses the anonymous groups with ids 1 and 5, the
//! 3-clique experiment adds 88).
//!
//! The analogue uses an affiliation model: every user joins a small number
//! of groups with a heavy-tailed group-popularity distribution, users who
//! share a group are connected with a fixed probability, and a sprinkle of
//! random friendships keeps the graph connected.  Group membership is
//! exposed as (possibly overlapping) node sets named "G1", "G2", ….

use dht_graph::{GraphBuilder, NodeId, NodeSet};
use rand::Rng;

use crate::dataset::{Dataset, Scale};
use crate::gen;

/// Configuration of the YouTube analogue generator.
#[derive(Debug, Clone)]
pub struct YoutubeConfig {
    /// Number of users.
    pub users: usize,
    /// Number of interest groups.
    pub groups: usize,
    /// Average number of groups a user joins.
    pub avg_memberships: f64,
    /// Probability that two co-members of a group are friends.
    pub co_member_edge_prob: f64,
    /// Number of extra uniformly random friendships.
    pub random_edges: usize,
    /// Number of planted friendship triangles spanning the groups used by
    /// the 3-clique-prediction experiment (G1, G5, G8).
    pub cross_group_triangles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl YoutubeConfig {
    /// Preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => YoutubeConfig {
                users: 800,
                groups: 12,
                avg_memberships: 1.5,
                co_member_edge_prob: 0.06,
                random_edges: 600,
                cross_group_triangles: 15,
                seed: 36,
            },
            Scale::Bench => YoutubeConfig {
                users: 50_000,
                groups: 200,
                avg_memberships: 1.5,
                co_member_edge_prob: 0.02,
                random_edges: 40_000,
                cross_group_triangles: 120,
                seed: 36,
            },
            Scale::Full => YoutubeConfig {
                users: 1_100_000,
                groups: 2_000,
                avg_memberships: 1.5,
                co_member_edge_prob: 0.005,
                random_edges: 900_000,
                cross_group_triangles: 400,
                seed: 36,
            },
        }
    }
}

/// Generates the YouTube analogue.
pub fn generate(config: &YoutubeConfig) -> Dataset {
    let users = config.users.max(2);
    let groups = config.groups.max(1);
    let mut rng = gen::rng(config.seed);
    let mut builder = GraphBuilder::with_nodes(users);

    // Assign users to groups: group popularity is heavy-tailed (group g gets
    // weight ~ 1/(g+1)), each user joins ~avg_memberships groups.
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); groups];
    let weights: Vec<f64> = (0..groups).map(|g| 1.0 / (g as f64 + 1.0)).collect();
    let weight_sum: f64 = weights.iter().sum();
    for user in 0..users {
        let joins = 1 + (rng.gen::<f64>() * (config.avg_memberships * 2.0 - 1.0).max(0.0)) as usize;
        for _ in 0..joins {
            // weighted pick
            let mut target = rng.gen::<f64>() * weight_sum;
            let mut chosen = 0usize;
            for (g, &w) in weights.iter().enumerate() {
                if target <= w {
                    chosen = g;
                    break;
                }
                target -= w;
            }
            let list = &mut membership[chosen];
            if !list.contains(&(user as u32)) {
                list.push(user as u32);
            }
        }
    }

    // Friendships between co-members of each group.
    let mut edge_seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for members in &membership {
        let m = members.len();
        if m < 2 {
            continue;
        }
        // expected number of edges = p * C(m, 2), sampled directly
        let expected = (config.co_member_edge_prob * (m * (m - 1) / 2) as f64).ceil() as usize;
        for _ in 0..expected {
            let a = members[rng.gen_range(0..m)];
            let b = members[rng.gen_range(0..m)];
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            if edge_seen.insert(key) {
                builder
                    .add_undirected_edge(NodeId(key.0), NodeId(key.1), 1.0)
                    .expect("valid endpoints");
            }
        }
    }

    // Extra random friendships for global connectivity.
    for (u, v) in gen::sample_edges_within(&mut rng, 0..users as u32, config.random_edges) {
        if edge_seen.insert((u.min(v), u.max(v))) {
            builder
                .add_undirected_edge(NodeId(u), NodeId(v), 1.0)
                .expect("valid endpoints");
        }
    }

    // Planted friendship triangles spanning the groups the 3-clique
    // experiment uses (G1, G5, G8 — indices 0, 4 and 7).
    if config.cross_group_triangles > 0 && groups >= 8 {
        let clique_groups = [0usize, 4, 7];
        if clique_groups.iter().all(|&g| !membership[g].is_empty()) {
            for _ in 0..config.cross_group_triangles {
                let picks: Vec<u32> = clique_groups
                    .iter()
                    .map(|&g| membership[g][rng.gen_range(0..membership[g].len())])
                    .collect();
                if picks[0] == picks[1] || picks[1] == picks[2] || picks[0] == picks[2] {
                    continue;
                }
                for (i, j) in [(0usize, 1usize), (1, 2), (0, 2)] {
                    let (a, b) = (picks[i].min(picks[j]), picks[i].max(picks[j]));
                    if edge_seen.insert((a, b)) {
                        builder
                            .add_undirected_edge(NodeId(a), NodeId(b), 1.0)
                            .expect("valid endpoints");
                    }
                }
            }
        }
    }

    let graph = builder.build().expect("generated YouTube graph is valid");
    let node_sets = membership
        .into_iter()
        .enumerate()
        .map(|(g, members)| NodeSet::new(format!("G{}", g + 1), members.into_iter().map(NodeId)))
        .collect();
    Dataset {
        name: "youtube".into(),
        graph,
        node_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_shape() {
        let d = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        assert_eq!(d.graph.node_count(), 800);
        assert_eq!(d.node_sets.len(), 12);
        assert!(d.graph.edge_count() > 800);
        assert!(d.node_set("G1").is_some());
        assert!(d.node_set("G12").is_some());
    }

    #[test]
    fn group_popularity_is_heavy_tailed() {
        let d = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        let first = d.node_set("G1").unwrap().len();
        let last = d.node_set("G12").unwrap().len();
        assert!(first > last, "G1 should be much more popular than G12");
    }

    #[test]
    fn groups_may_overlap_but_contain_valid_users() {
        let d = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        for set in &d.node_sets {
            assert!(set.iter().all(|n| n.index() < d.graph.node_count()));
        }
    }

    #[test]
    fn unweighted_edges() {
        let d = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        assert!(d.graph.edges().all(|(_, _, w)| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        let b = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.node_sets[0].len(), b.node_sets[0].len());
    }

    #[test]
    fn planted_triangles_span_the_clique_experiment_groups() {
        let d = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        let cliques = dht_graph::analysis::cliques_across_sets(
            &d.graph,
            d.node_set("G1").unwrap(),
            d.node_set("G5").unwrap(),
            d.node_set("G8").unwrap(),
        );
        assert!(
            !cliques.is_empty(),
            "G1 / G5 / G8 must contain spanning 3-cliques"
        );
    }

    #[test]
    fn co_members_are_more_likely_to_be_friends_than_strangers() {
        let d = generate(&YoutubeConfig::for_scale(Scale::Tiny));
        let g1 = d.node_set("G1").unwrap();
        // density inside G1
        let members: Vec<_> = g1.members().to_vec();
        let mut inside = 0usize;
        let mut pairs = 0usize;
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                pairs += 1;
                if d.graph.has_edge_either(a, b) {
                    inside += 1;
                }
            }
        }
        let inside_density = inside as f64 / pairs.max(1) as f64;
        let global_density = d.graph.edge_count() as f64
            / (d.graph.node_count() * (d.graph.node_count() - 1)) as f64;
        assert!(
            inside_density > global_density,
            "{inside_density} vs {global_density}"
        );
    }
}

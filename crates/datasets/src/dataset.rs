//! The dataset container and scale presets.

use dht_graph::{Graph, NodeSet};

/// How large a synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few hundred nodes — used by unit tests.
    Tiny,
    /// Tens of thousands of nodes — used by the benchmark harness so that a
    /// full figure sweep completes in minutes on one core.
    Bench,
    /// Approximately the paper's sizes (DBLP 188k nodes / YouTube 1M+).
    /// Generation stays fast (edge-sampling generators), but running the
    /// forward baselines at this scale takes as long as it did for the
    /// authors.
    Full,
}

impl Scale {
    /// Short lowercase name used in report headers.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Bench => "bench",
            Scale::Full => "full",
        }
    }
}

/// A generated dataset: the graph plus its named node sets.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name ("dblp", "yeast", "youtube").
    pub name: String,
    /// The generated graph.
    pub graph: Graph,
    /// Named node sets (research areas / partitions / interest groups).
    pub node_sets: Vec<NodeSet>,
}

impl Dataset {
    /// Looks up a node set by name.
    pub fn node_set(&self, name: &str) -> Option<&NodeSet> {
        self.node_sets.iter().find(|s| s.name() == name)
    }

    /// The `n` largest node sets, by member count (descending).
    pub fn largest_sets(&self, n: usize) -> Vec<&NodeSet> {
        let mut sets: Vec<&NodeSet> = self.node_sets.iter().collect();
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.name().cmp(b.name())));
        sets.truncate(n);
        sets
    }

    /// One-line summary used by the experiment binaries.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} nodes, {} directed edges, {} node sets",
            self.name,
            self.graph.node_count(),
            self.graph.edge_count(),
            self.node_sets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::{GraphBuilder, NodeId};

    fn toy() -> Dataset {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_undirected_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        Dataset {
            name: "toy".into(),
            graph: b.build().unwrap(),
            node_sets: vec![
                NodeSet::new("A", [NodeId(0)]),
                NodeSet::new("B", [NodeId(1), NodeId(2)]),
                NodeSet::new("C", [NodeId(3), NodeId(0), NodeId(1)]),
            ],
        }
    }

    #[test]
    fn node_set_lookup_by_name() {
        let d = toy();
        assert_eq!(d.node_set("B").unwrap().len(), 2);
        assert!(d.node_set("missing").is_none());
    }

    #[test]
    fn largest_sets_are_ordered_by_size() {
        let d = toy();
        let top = d.largest_sets(2);
        assert_eq!(top[0].name(), "C");
        assert_eq!(top[1].name(), "B");
        assert_eq!(d.largest_sets(10).len(), 3);
    }

    #[test]
    fn summary_mentions_the_sizes() {
        let d = toy();
        let s = d.summary();
        assert!(s.contains("toy"));
        assert!(s.contains("4 nodes"));
        assert!(s.contains("3 node sets"));
    }

    #[test]
    fn scale_names() {
        assert_eq!(Scale::Tiny.name(), "tiny");
        assert_eq!(Scale::Bench.name(), "bench");
        assert_eq!(Scale::Full.name(), "full");
    }
}

//! # dht-datasets
//!
//! Synthetic analogues of the three real datasets used in the paper's
//! evaluation (Section VII-A), plus the train/test split procedures of the
//! effectiveness experiments (Section VII-B).
//!
//! | paper dataset | analogue | structure reproduced |
//! |---|---|---|
//! | DBLP 2012 (188k nodes, 1.14M edges, weighted, research areas) | [`dblp`] | community-structured weighted co-authorship graph; node sets are the top-`h` authors per area by weighted degree |
//! | Yeast PPI (2.4k nodes, 7.2k edges, 13 partitions) | [`yeast`] | small unweighted interaction graph with 13 non-overlapping partitions |
//! | YouTube (1.1M nodes, 3M edges, interest groups) | [`youtube`] | heavy-tailed social graph from an affiliation model; node sets are interest groups |
//!
//! The real datasets are not redistributable, so every generator is seeded
//! and parameterised by a [`Scale`]: `Tiny` for unit tests, `Bench` for the
//! benchmark harness (sized so that a full figure sweep finishes on a laptop
//! core), and `Full` approximating the paper's sizes.  The join algorithms
//! only depend on structural properties (density, degree skew, community
//! structure, weights), so relative algorithm behaviour is preserved; see
//! DESIGN.md for the substitution rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod dblp;
pub mod gen;
pub mod split;
pub mod yeast;
pub mod youtube;

pub use dataset::{Dataset, Scale};

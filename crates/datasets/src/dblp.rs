//! Synthetic analogue of the DBLP co-authorship graph.
//!
//! The paper's DBLP snapshot (2012) is an undirected, weighted graph with
//! 188k author nodes and 1.14M edges; the edge weight is the number of
//! co-authored papers, and "authors who published in the same research area
//! form a node set" — the experiments use the top-100 authors (by number of
//! publications) of DB, AI and SYS.
//!
//! The analogue plants one community per research area, samples
//! within-community and cross-community co-authorship edges with
//! heavy-tailed weights, and exposes each area's top-`h` nodes by weighted
//! degree as its node set.  Author labels are synthetic ("DB-0042"), since
//! real names cannot be reproduced, but the structural role of each node set
//! matches the paper's.

use dht_graph::{GraphBuilder, NodeId, NodeSet};
use rand::Rng;

use crate::dataset::{Dataset, Scale};
use crate::gen;

/// The research areas used to label the communities.  The first three (DB,
/// AI, SYS) are the ones the paper's Table III and 3-clique experiments use.
pub const AREAS: [&str; 8] = ["DB", "AI", "SYS", "DM", "IR", "ML", "NET", "SEC"];

/// Configuration of the DBLP analogue generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of research areas (≤ `AREAS.len()`).
    pub areas: usize,
    /// Authors per research area.
    pub authors_per_area: usize,
    /// Average number of within-area co-authors per author.
    pub avg_internal_degree: f64,
    /// Average number of cross-area co-authors per author.
    pub avg_external_degree: f64,
    /// Size of each exposed node set (top authors by weighted degree);
    /// the paper uses 100.
    pub top_authors_per_set: usize,
    /// Number of planted cross-disciplinary collaborations: triangles whose
    /// corners are prolific authors of the first three areas (DB, AI, SYS).
    /// Real bibliographic networks have them (senior authors co-publish
    /// across areas); they are what the 3-clique-prediction experiment of
    /// Table IV predicts.
    pub cross_area_triangles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DblpConfig {
    /// Preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => DblpConfig {
                areas: 4,
                authors_per_area: 60,
                avg_internal_degree: 6.0,
                avg_external_degree: 1.5,
                top_authors_per_set: 15,
                cross_area_triangles: 12,
                seed: 2014,
            },
            Scale::Bench => DblpConfig {
                areas: 8,
                authors_per_area: 2_500,
                avg_internal_degree: 10.0,
                avg_external_degree: 2.0,
                top_authors_per_set: 100,
                cross_area_triangles: 150,
                seed: 2014,
            },
            Scale::Full => DblpConfig {
                areas: 8,
                authors_per_area: 23_500,
                avg_internal_degree: 10.0,
                avg_external_degree: 2.0,
                top_authors_per_set: 100,
                cross_area_triangles: 400,
                seed: 2014,
            },
        }
    }
}

/// Generates the DBLP analogue.
pub fn generate(config: &DblpConfig) -> Dataset {
    let areas = config.areas.min(AREAS.len()).max(1);
    let per_area = config.authors_per_area.max(2);
    let n = areas * per_area;
    let mut rng = gen::rng(config.seed);
    let mut builder =
        GraphBuilder::with_capacity(n, (n as f64 * config.avg_internal_degree) as usize);

    for label in AREAS.iter().take(areas) {
        for i in 0..per_area {
            builder.add_labeled_node(format!("{label}-{i:04}"));
        }
    }

    // An adjacency mirror lets part of the cross-area co-authorships be
    // produced by triadic closure, which is the structural property the
    // link-prediction experiment relies on (held-out collaborations keep
    // their 2-hop support in the test graph).
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut weighted_edges: Vec<(u32, u32, f64)> = Vec::new();
    let push_edge = |adjacency: &mut Vec<Vec<u32>>,
                     edges: &mut Vec<(u32, u32, f64)>,
                     u: u32,
                     v: u32,
                     w: f64| {
        if adjacency[u as usize].contains(&v) {
            return;
        }
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        edges.push((u, v, w));
    };

    // Within-area co-authorships.
    for area in 0..areas {
        let start = (area * per_area) as u32;
        let end = start + per_area as u32;
        let edge_count = (per_area as f64 * config.avg_internal_degree / 2.0).round() as usize;
        for (u, v) in gen::sample_edges_within(&mut rng, start..end, edge_count) {
            let w = gen::heavy_tailed_weight(&mut rng, 60);
            push_edge(&mut adjacency, &mut weighted_edges, u, v, w);
        }
    }

    // Cross-area co-authorships: a uniformly spread random seed over all
    // area pairs, then triadic closure for the remainder.
    if areas > 1 {
        let external_total = (n as f64 * config.avg_external_degree / 2.0).round() as usize;
        let seed_total = external_total / 2;
        let pairs: Vec<(usize, usize)> = (0..areas)
            .flat_map(|a| ((a + 1)..areas).map(move |b| (a, b)))
            .collect();
        let per_pair = (seed_total / pairs.len().max(1)).max(1);
        for &(a, b) in &pairs {
            let a_start = (a * per_area) as u32;
            let b_start = (b * per_area) as u32;
            for (u, v) in gen::sample_edges_across(
                &mut rng,
                a_start..a_start + per_area as u32,
                b_start..b_start + per_area as u32,
                per_pair,
            ) {
                let w = gen::heavy_tailed_weight(&mut rng, 20);
                push_edge(&mut adjacency, &mut weighted_edges, u, v, w);
            }
        }
        let closure_target = external_total.saturating_sub(seed_total);
        let area_of = |node: u32| node as usize / per_area;
        let closed =
            gen::triadic_closure_edges(&mut rng, &mut adjacency, closure_target, |u, v| {
                area_of(u) != area_of(v)
            });
        for (u, v) in closed {
            let w = gen::heavy_tailed_weight(&mut rng, 20);
            weighted_edges.push((u, v, w));
        }
    }

    // Planted cross-disciplinary collaborations: triangles over prolific
    // authors of the first three areas, so that the DB/AI/SYS node sets
    // (top authors by weighted degree) contain spanning 3-cliques, as the
    // real DBLP graph does.
    if areas >= 3 && config.cross_area_triangles > 0 {
        let mut weighted_degree = vec![0.0f64; n];
        for &(u, v, w) in &weighted_edges {
            weighted_degree[u as usize] += w;
            weighted_degree[v as usize] += w;
        }
        let pool: Vec<Vec<u32>> = (0..3)
            .map(|area| {
                let start = (area * per_area) as u32;
                let mut ids: Vec<u32> = (start..start + per_area as u32).collect();
                ids.sort_by(|&a, &b| {
                    weighted_degree[b as usize].total_cmp(&weighted_degree[a as usize])
                });
                ids.truncate(config.top_authors_per_set.max(1));
                ids
            })
            .collect();
        for _ in 0..config.cross_area_triangles {
            let a = pool[0][rng.gen_range(0..pool[0].len())];
            let b = pool[1][rng.gen_range(0..pool[1].len())];
            let c = pool[2][rng.gen_range(0..pool[2].len())];
            for (u, v) in [(a, b), (b, c), (a, c)] {
                let w = gen::heavy_tailed_weight(&mut rng, 20) + 4.0;
                push_edge(&mut adjacency, &mut weighted_edges, u, v, w);
            }
        }
    }

    for &(u, v, w) in &weighted_edges {
        builder
            .add_undirected_edge(NodeId(u), NodeId(v), w)
            .expect("sampled endpoints are valid");
    }

    let graph = builder.build().expect("generated DBLP graph is valid");

    // Node sets: top authors per area by weighted out-degree ("number of
    // publications").
    let mut node_sets = Vec::with_capacity(areas);
    for (area, &label) in AREAS.iter().enumerate().take(areas) {
        let start = area * per_area;
        let mut scored: Vec<(NodeId, f64)> = (start..start + per_area)
            .map(|i| {
                let node = NodeId(i as u32);
                let weight: f64 = graph.out_weights(node).iter().sum();
                (node, weight)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(config.top_authors_per_set.max(1));
        node_sets.push(NodeSet::new(label, scored.into_iter().map(|(n, _)| n)));
    }

    Dataset {
        name: "dblp".into(),
        graph,
        node_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_graph::analysis;

    #[test]
    fn tiny_scale_has_expected_shape() {
        let d = generate(&DblpConfig::for_scale(Scale::Tiny));
        assert_eq!(d.graph.node_count(), 4 * 60);
        assert_eq!(d.node_sets.len(), 4);
        assert!(d.node_sets.iter().all(|s| s.len() == 15));
        assert_eq!(d.node_set("DB").unwrap().name(), "DB");
        assert!(
            d.graph.edge_count() > 4 * 60,
            "graph should not be trivially sparse"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&DblpConfig::for_scale(Scale::Tiny));
        let b = generate(&DblpConfig::for_scale(Scale::Tiny));
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.node_sets[0].members(), b.node_sets[0].members());
    }

    #[test]
    fn node_sets_contain_only_nodes_of_their_area() {
        let cfg = DblpConfig::for_scale(Scale::Tiny);
        let d = generate(&cfg);
        for (area, set) in d.node_sets.iter().enumerate() {
            let start = area * cfg.authors_per_area;
            let end = start + cfg.authors_per_area;
            assert!(set.iter().all(|n| (start..end).contains(&n.index())));
        }
    }

    #[test]
    fn top_authors_have_high_weighted_degree() {
        let cfg = DblpConfig::for_scale(Scale::Tiny);
        let d = generate(&cfg);
        let set = d.node_set("DB").unwrap();
        let in_set_min = set
            .iter()
            .map(|n| d.graph.out_weights(n).iter().sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        // an average non-selected author should not beat the weakest selected one
        let mut out_of_set = Vec::new();
        for i in 0..cfg.authors_per_area {
            let n = NodeId(i as u32);
            if !set.contains(n) {
                out_of_set.push(d.graph.out_weights(n).iter().sum::<f64>());
            }
        }
        let max_outside = out_of_set.into_iter().fold(0.0f64, f64::max);
        assert!(in_set_min >= max_outside - 1e-9);
    }

    #[test]
    fn weights_are_heavy_tailed() {
        let d = generate(&DblpConfig::for_scale(Scale::Tiny));
        let max_w = d.graph.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
        assert!(max_w > 1.0);
    }

    #[test]
    fn labels_follow_the_area_naming_scheme() {
        let d = generate(&DblpConfig::for_scale(Scale::Tiny));
        assert_eq!(d.graph.label(NodeId(0)), Some("DB-0000"));
        let set = d.node_set("AI").unwrap();
        assert!(set
            .iter()
            .all(|n| d.graph.label(n).unwrap().starts_with("AI-")));
    }

    #[test]
    fn planted_collaborations_create_spanning_cliques_in_the_top_sets() {
        let d = generate(&DblpConfig::for_scale(Scale::Tiny));
        let cliques = dht_graph::analysis::cliques_across_sets(
            &d.graph,
            d.node_set("DB").unwrap(),
            d.node_set("AI").unwrap(),
            d.node_set("SYS").unwrap(),
        );
        assert!(
            !cliques.is_empty(),
            "the DB/AI/SYS node sets must contain cross-area 3-cliques"
        );
    }

    #[test]
    fn graph_is_mostly_connected() {
        let d = generate(&DblpConfig::for_scale(Scale::Tiny));
        let largest = analysis::largest_component_size(&d.graph);
        assert!(
            largest * 10 >= d.graph.node_count() * 8,
            "largest component covers >= 80%"
        );
    }
}
